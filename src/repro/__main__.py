"""``python -m repro`` entry point.

Delegates to :func:`repro.cli.main`; see ``docs/CLI.md`` for the command
reference (``compress``, ``stream``, ``decompress``, ``tune``, ``info``,
``datasets``).
"""

import sys

from repro.cli import main

__all__ = ["main"]

sys.exit(main())
