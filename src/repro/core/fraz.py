"""The FRaZ public API.

    from repro import FRaZ

    fraz = FRaZ(compressor="sz", target_ratio=10.0, tolerance=0.1)
    result = fraz.tune(field)             # -> TrainingResult with the bound
    payload, result = fraz.compress(field)  # tune + compress in one call

For multi-time-step data use :meth:`FRaZ.tune_series`; for whole datasets
(many fields) :meth:`FRaZ.tune_dataset`.  Error-control-based fixed-ratio
compression (problem formulation Eq. 2) is expressed by ``max_error_bound``
— the search never probes beyond it, so the returned configuration always
respects the user's distortion constraint ``U``.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from repro.cache.evalcache import EvalCache
from repro.core.fields import tune_fields, tune_time_series
from repro.core.results import FieldResult, TimeSeriesResult, TrainingResult
from repro.core.training import DEFAULT_OVERLAP, DEFAULT_REGIONS, train
from repro.parallel.executor import BaseExecutor, make_executor
from repro.pressio.compressor import CompressedField, Compressor
from repro.pressio.registry import make_compressor

__all__ = ["FRaZ"]


@dataclass
class FRaZ:
    """Fixed-ratio lossy compression tuner.

    Parameters
    ----------
    compressor:
        A :class:`~repro.pressio.compressor.Compressor` instance or a
        registry name (``"sz"``, ``"zfp"``, ``"mgard"``, ``"zfp-rate"``).
    target_ratio:
        ``rho_t`` — the requested compression ratio.
    tolerance:
        ``eps`` — acceptance band half-width as a fraction of the target.
    max_error_bound:
        ``U`` — optional cap on the error bound the search may recommend
        (Eq. 2's distortion constraint).  ``None`` uses the compressor's
        full admissible range.
    regions, overlap:
        Error-bound region count (paper default 12) and overlap fraction.
    max_calls_per_region:
        Iteration cap per worker task.
    executor:
        ``"serial"``, ``"thread"`` or ``"process"`` (or an executor
        instance) for the region/field fan-out.
    workers:
        Pool size for thread/process executors.
    seed:
        Determinism seed threaded through the optimizer.
    cache:
        Evaluation-cache policy: ``True`` (default) builds a private
        in-memory :class:`~repro.cache.EvalCache` shared by every search
        this instance runs (regions, time-steps, fields); ``False``
        disables caching; an :class:`~repro.cache.EvalCache` instance is
        used as-is — share one across tuners/baselines for cross-search
        reuse.
    cache_dir:
        Optional persistent-tier directory for the auto-built cache
        (ignored when an explicit instance is injected).
    """

    compressor: Compressor | str = "sz"
    target_ratio: float = 10.0
    tolerance: float = 0.1
    max_error_bound: float | None = None
    regions: int = DEFAULT_REGIONS
    overlap: float = DEFAULT_OVERLAP
    max_calls_per_region: int = 16
    executor: BaseExecutor | str = "serial"
    workers: int = 4
    seed: int = 0
    reuse_prediction: bool = True
    cache: EvalCache | bool = True
    cache_dir: str | None = None
    _compressor: Compressor = dataclass_field(init=False, repr=False)
    _executor: BaseExecutor = dataclass_field(init=False, repr=False)
    _cache: EvalCache | None = dataclass_field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.target_ratio <= 0:
            raise ValueError(f"target_ratio must be positive, got {self.target_ratio}")
        if not 0 < self.tolerance < 1:
            raise ValueError(f"tolerance must be in (0, 1), got {self.tolerance}")
        self._compressor = (
            make_compressor(self.compressor)
            if isinstance(self.compressor, str)
            else self.compressor
        )
        self._executor = (
            make_executor(self.executor, self.workers)
            if isinstance(self.executor, str)
            else self.executor
        )
        if isinstance(self.cache, EvalCache):
            self._cache = self.cache
        elif self.cache:
            self._cache = EvalCache(cache_dir=self.cache_dir)
        else:
            self._cache = None

    @property
    def evaluation_cache(self) -> EvalCache | None:
        """The shared :class:`~repro.cache.EvalCache` (``None`` if disabled)."""
        return self._cache

    # ------------------------------------------------------------------
    @classmethod
    def from_request(
        cls,
        request,
        *,
        executor: BaseExecutor | str | None = None,
        workers: int | None = None,
        seed: int | None = None,
        cache: EvalCache | bool | None = None,
    ) -> "FRaZ":
        """Build a tuner from a :class:`~repro.api.request.CompressionRequest`.

        The request's compressor name + ``options`` become a configured
        :class:`~repro.pressio.compressor.Compressor`; its ``resources``
        block takes precedence over the ``executor``/``workers`` keyword
        fallbacks.  ``cache=None`` derives the cache policy from
        ``resources.cache``/``cache_dir``; an explicit value overrides it
        (the unified :func:`repro.api.execute` path passes the cache it
        already resolved).
        """
        if request.target_ratio is None:
            raise ValueError("FRaZ.from_request needs a request with a target_ratio")
        res = request.resources
        kwargs: dict = {}
        eff_executor = res.executor if res.executor is not None else executor
        if eff_executor is not None:
            kwargs["executor"] = eff_executor
        eff_workers = res.workers if res.workers is not None else workers
        if eff_workers is not None:
            kwargs["workers"] = eff_workers
        if seed is not None:
            kwargs["seed"] = seed
        if cache is None:
            kwargs["cache"] = res.cache
            kwargs["cache_dir"] = res.cache_dir
        else:
            kwargs["cache"] = cache
        return cls(
            compressor=make_compressor(request.compressor, **request.options),
            target_ratio=request.target_ratio,
            tolerance=request.tolerance,
            max_error_bound=request.max_error_bound,
            **kwargs,
        )

    # ------------------------------------------------------------------
    def tune(self, data: np.ndarray, prediction: float | None = None) -> TrainingResult:
        """Search the error bound for a single field/time-step."""
        return train(
            self._compressor,
            data,
            self.target_ratio,
            tolerance=self.tolerance,
            upper=self.max_error_bound,
            regions=self.regions,
            overlap=self.overlap,
            max_calls_per_region=self.max_calls_per_region,
            prediction=prediction,
            executor=self._executor,
            seed=self.seed,
            cache=self._cache,
        )

    def tune_series(
        self, series: list[np.ndarray], field_name: str = "field"
    ) -> TimeSeriesResult:
        """Tune a multi-time-step field with error-bound reuse."""
        return tune_time_series(
            self._compressor,
            series,
            self.target_ratio,
            tolerance=self.tolerance,
            field_name=field_name,
            upper=self.max_error_bound,
            regions=self.regions,
            overlap=self.overlap,
            max_calls_per_region=self.max_calls_per_region,
            executor=self._executor,
            seed=self.seed,
            reuse_prediction=self.reuse_prediction,
            cache=self._cache,
        )

    def tune_dataset(self, fields: dict[str, list[np.ndarray]]) -> FieldResult:
        """Tune every field of a dataset (parallel by field)."""
        return tune_fields(
            self._compressor,
            fields,
            self.target_ratio,
            tolerance=self.tolerance,
            upper=self.max_error_bound,
            regions=self.regions,
            overlap=self.overlap,
            max_calls_per_region=self.max_calls_per_region,
            executor=self._executor,
            seed=self.seed,
            reuse_prediction=self.reuse_prediction,
            cache=self._cache,
        )

    # ------------------------------------------------------------------
    def compress(
        self, data: np.ndarray, prediction: float | None = None
    ) -> tuple[CompressedField, TrainingResult]:
        """Tune, then compress with the recommended bound."""
        result = self.tune(data, prediction=prediction)
        configured = self._compressor.with_error_bound(result.error_bound)
        return configured.compress(data), result

    def decompress(self, payload: CompressedField | bytes) -> np.ndarray:
        """Decompress a payload produced by :meth:`compress`."""
        return self._compressor.decompress(payload)
