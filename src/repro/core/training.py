"""Algorithm 2: training over overlapping regions with early cancellation.

The error-bound interval is split into ``k`` overlapping regions
(:func:`repro.core.regions.split_regions`), one worker task per region,
dispatched through a cancel-aware executor.  As workers complete, the first
result inside the acceptance band cancels everything not yet started
(lines 7-14); if none succeeds, the result whose ratio is *closest* to the
target is reported and the request is deemed infeasible (lines 17-25).

The paper found 12 regions the sweet spot ("there seems to be a floor for
how many iterations are required to converge"); that is the default.

Because regions *overlap* (Fig. 5), adjacent workers routinely probe the
same bounds.  Passing a shared :class:`~repro.cache.EvalCache` deduplicates
those probes: serial/thread executors share the instance directly, while
process-pool workers receive a pickled copy and ship their new entries back
in the worker payload for a deterministic merge (results are folded in
region order, and entries are pure functions of their key, so completion
order cannot change the merged state).
"""

from __future__ import annotations

import time

import numpy as np

from repro.cache.evalcache import CacheEntry, EvalCache
from repro.core.regions import split_regions
from repro.core.results import TrainingResult, WorkerResult
from repro.core.worker import worker_task
from repro.parallel.executor import BaseExecutor, SerialExecutor
from repro.pressio.compressor import Compressor

__all__ = ["train"]

DEFAULT_REGIONS = 12
DEFAULT_OVERLAP = 0.1


def _run_worker(payload: tuple) -> tuple[WorkerResult, dict[str, CacheEntry] | None]:
    """Module-level trampoline so process pools can pickle the task.

    Returns the worker's result plus its cache delta — the entries this
    worker stored — so the parent process can fold them into the shared
    cache.  ``ship_delta`` is False for shared-memory executors, where
    workers write straight into the parent's instance and a delta would
    be a wasted copy.
    """
    (compressor, data, target, tolerance, region, prediction, max_calls, seed,
     cache, ship_delta) = payload
    result = worker_task(
        compressor,
        data,
        target,
        tolerance,
        region,
        prediction=prediction,
        max_calls=max_calls,
        seed=seed,
        cache=cache,
    )
    return result, (cache.new_entries() if cache is not None and ship_delta else None)


def train(
    compressor: Compressor,
    data: np.ndarray,
    target_ratio: float,
    tolerance: float = 0.1,
    lower: float | None = None,
    upper: float | None = None,
    regions: int = DEFAULT_REGIONS,
    overlap: float = DEFAULT_OVERLAP,
    max_calls_per_region: int = 16,
    prediction: float | None = None,
    executor: BaseExecutor | None = None,
    seed: int = 0,
    cache: EvalCache | None = None,
) -> TrainingResult:
    """Find an error bound whose ratio hits ``target_ratio`` within ``tolerance``.

    ``lower``/``upper`` default to the compressor's full admissible range;
    pass ``upper`` explicitly to impose the user's maximum allowed
    compression error ``U`` (Sec. V-B3 — if the search then fails, rerun
    with the default upper bound or relax the constraint).

    ``cache`` is an optional shared :class:`~repro.cache.EvalCache`; all
    region workers consult it, and entries probed by pool workers are
    merged back so later searches (other regions, time-steps, baselines)
    reuse them.
    """
    data = np.asarray(data)
    t0 = time.perf_counter()
    default_lo, default_hi = compressor.default_bound_range(data)
    lo = default_lo if lower is None else float(lower)
    hi = default_hi if upper is None else float(upper)
    if not hi > lo:
        raise ValueError(f"invalid error-bound range [{lo}, {hi}]")

    # Fast path (Algorithm 1 lines 1-6 at the orchestration level): when a
    # prediction exists, one worker checks it before any region fan-out.
    # A probe that does *not* short-circuit still did real work — it is
    # folded into the fan-out totals below so evaluation/cache accounting
    # stays honest.
    probe = None
    if prediction is not None and prediction > 0:
        probe = worker_task(
            compressor,
            data,
            target_ratio,
            tolerance,
            (lo, hi),
            prediction=prediction,
            max_calls=1,
            seed=seed,
            cache=cache,
        )
        if probe.used_prediction and probe.feasible:
            return TrainingResult(
                error_bound=probe.error_bound,
                ratio=probe.ratio,
                target_ratio=target_ratio,
                tolerance=tolerance,
                feasible=True,
                evaluations=probe.evaluations,
                compress_seconds=probe.compress_seconds,
                wall_seconds=time.perf_counter() - t0,
                used_prediction=True,
                workers=(probe,),
                cache_hits=probe.cache_hits,
                cache_misses=probe.cache_misses,
            )

    executor = executor or SerialExecutor()
    ship_delta = cache is not None and not getattr(executor, "shares_memory", True)
    region_list = split_regions(lo, hi, regions, overlap)
    payloads = [
        (compressor, data, target_ratio, tolerance, region, None, max_calls_per_region,
         seed + i, cache, ship_delta)
        for i, region in enumerate(region_list)
    ]
    completed = executor.run_cancellable(
        _run_worker, payloads, stop_when=lambda res: res[0].feasible
    )
    workers = tuple(res for _, (res, _entries) in completed)
    if probe is not None:
        # The failed probe joins the worker list first: its evaluations,
        # compress seconds and cache traffic are part of this search's
        # cost, and (rarely) its observation may even be the best one.
        workers = (probe,) + workers
    if ship_delta:
        # run_cancellable returns results sorted by region index, so the
        # merge order — hence the final LRU state — is deterministic even
        # under process pools.
        for _, (_res, entries) in completed:
            cache.merge_entries(entries)

    # Lines 17-25: prefer a feasible result; otherwise the closest observed.
    feasible = [w for w in workers if w.feasible]
    if feasible:
        best = feasible[0]
    else:
        best = min(workers, key=lambda w: (w.ratio - target_ratio) ** 2)

    return TrainingResult(
        error_bound=best.error_bound,
        ratio=best.ratio,
        target_ratio=target_ratio,
        tolerance=tolerance,
        feasible=bool(feasible),
        evaluations=sum(w.evaluations for w in workers),
        compress_seconds=sum(w.compress_seconds for w in workers),
        wall_seconds=time.perf_counter() - t0,
        used_prediction=False,
        workers=workers,
        cache_hits=sum(w.cache_hits for w in workers),
        cache_misses=sum(w.cache_misses for w in workers),
    )
