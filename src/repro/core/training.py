"""Algorithm 2: training over overlapping regions with early cancellation.

The error-bound interval is split into ``k`` overlapping regions
(:func:`repro.core.regions.split_regions`), one worker task per region,
dispatched through a cancel-aware executor.  As workers complete, the first
result inside the acceptance band cancels everything not yet started
(lines 7-14); if none succeeds, the result whose ratio is *closest* to the
target is reported and the request is deemed infeasible (lines 17-25).

The paper found 12 regions the sweet spot ("there seems to be a floor for
how many iterations are required to converge"); that is the default.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.regions import split_regions
from repro.core.results import TrainingResult, WorkerResult
from repro.core.worker import worker_task
from repro.parallel.executor import BaseExecutor, SerialExecutor
from repro.pressio.compressor import Compressor

__all__ = ["train"]

DEFAULT_REGIONS = 12
DEFAULT_OVERLAP = 0.1


def _run_worker(payload: tuple) -> WorkerResult:
    """Module-level trampoline so process pools can pickle the task."""
    compressor, data, target, tolerance, region, prediction, max_calls, seed = payload
    return worker_task(
        compressor,
        data,
        target,
        tolerance,
        region,
        prediction=prediction,
        max_calls=max_calls,
        seed=seed,
    )


def train(
    compressor: Compressor,
    data: np.ndarray,
    target_ratio: float,
    tolerance: float = 0.1,
    lower: float | None = None,
    upper: float | None = None,
    regions: int = DEFAULT_REGIONS,
    overlap: float = DEFAULT_OVERLAP,
    max_calls_per_region: int = 16,
    prediction: float | None = None,
    executor: BaseExecutor | None = None,
    seed: int = 0,
) -> TrainingResult:
    """Find an error bound whose ratio hits ``target_ratio`` within ``tolerance``.

    ``lower``/``upper`` default to the compressor's full admissible range;
    pass ``upper`` explicitly to impose the user's maximum allowed
    compression error ``U`` (Sec. V-B3 — if the search then fails, rerun
    with the default upper bound or relax the constraint).
    """
    data = np.asarray(data)
    t0 = time.perf_counter()
    default_lo, default_hi = compressor.default_bound_range(data)
    lo = default_lo if lower is None else float(lower)
    hi = default_hi if upper is None else float(upper)
    if not hi > lo:
        raise ValueError(f"invalid error-bound range [{lo}, {hi}]")

    # Fast path (Algorithm 1 lines 1-6 at the orchestration level): when a
    # prediction exists, one worker checks it before any region fan-out.
    if prediction is not None and prediction > 0:
        probe = worker_task(
            compressor,
            data,
            target_ratio,
            tolerance,
            (lo, hi),
            prediction=prediction,
            max_calls=1,
            seed=seed,
        )
        if probe.used_prediction and probe.feasible:
            return TrainingResult(
                error_bound=probe.error_bound,
                ratio=probe.ratio,
                target_ratio=target_ratio,
                tolerance=tolerance,
                feasible=True,
                evaluations=probe.evaluations,
                compress_seconds=probe.compress_seconds,
                wall_seconds=time.perf_counter() - t0,
                used_prediction=True,
                workers=(probe,),
            )

    executor = executor or SerialExecutor()
    region_list = split_regions(lo, hi, regions, overlap)
    payloads = [
        (compressor, data, target_ratio, tolerance, region, None, max_calls_per_region, seed + i)
        for i, region in enumerate(region_list)
    ]
    completed = executor.run_cancellable(
        _run_worker, payloads, stop_when=lambda res: res.feasible
    )
    workers = tuple(res for _, res in completed)

    # Lines 17-25: prefer a feasible result; otherwise the closest observed.
    feasible = [w for w in workers if w.feasible]
    if feasible:
        best = feasible[0]
    else:
        best = min(workers, key=lambda w: (w.ratio - target_ratio) ** 2)

    return TrainingResult(
        error_bound=best.error_bound,
        ratio=best.ratio,
        target_ratio=target_ratio,
        tolerance=tolerance,
        feasible=bool(feasible),
        evaluations=sum(w.evaluations for w in workers),
        compress_seconds=sum(w.compress_seconds for w in workers),
        wall_seconds=time.perf_counter() - t0,
        used_prediction=False,
        workers=workers,
    )
