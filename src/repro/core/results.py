"""Result records for FRaZ searches.

Notation follows the paper's Table I: ``rho_t`` target ratio, ``rho_r``
achieved ratio, ``e`` the recommended error bound, ``eps`` the acceptable
ratio tolerance, ``U`` the user's maximum allowed compression error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["WorkerResult", "TrainingResult", "TimeSeriesResult", "FieldResult"]


@dataclass(frozen=True)
class WorkerResult:
    """Outcome of one region's worker task (Algorithm 1)."""

    error_bound: float
    ratio: float
    feasible: bool
    evaluations: int
    region: tuple[float, float]
    used_prediction: bool
    compress_seconds: float
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass(frozen=True)
class TrainingResult:
    """Outcome of a full search over all regions (Algorithm 2)."""

    error_bound: float
    ratio: float
    target_ratio: float
    tolerance: float
    feasible: bool
    evaluations: int
    compress_seconds: float
    wall_seconds: float
    used_prediction: bool
    workers: tuple[WorkerResult, ...] = ()
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def within_tolerance(self) -> bool:
        lo = self.target_ratio * (1.0 - self.tolerance)
        hi = self.target_ratio * (1.0 + self.tolerance)
        return lo <= self.ratio <= hi

    @property
    def compressor_calls(self) -> int:
        """Actual compressor invocations this search paid for.

        ``evaluations`` counts probes; with a shared cache attached some
        probes are answered without compressing, so
        ``compressor_calls == evaluations - cache_hits``.
        """
        return self.evaluations - self.cache_hits


@dataclass
class TimeSeriesResult:
    """Per-time-step results for one field (Sec. V-C time-step reuse)."""

    field_name: str
    steps: list[TrainingResult] = field(default_factory=list)
    retrain_steps: list[int] = field(default_factory=list)

    @property
    def converged_fraction(self) -> float:
        if not self.steps:
            return 0.0
        return sum(s.within_tolerance for s in self.steps) / len(self.steps)

    @property
    def total_evaluations(self) -> int:
        return sum(s.evaluations for s in self.steps)

    @property
    def total_cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.steps)

    @property
    def total_compressor_calls(self) -> int:
        return sum(s.compressor_calls for s in self.steps)

    @property
    def total_wall_seconds(self) -> float:
        return sum(s.wall_seconds for s in self.steps)


@dataclass
class FieldResult:
    """Results across all fields of a dataset (Algorithm 3)."""

    fields: dict[str, TimeSeriesResult] = field(default_factory=dict)

    @property
    def total_wall_seconds(self) -> float:
        return sum(f.total_wall_seconds for f in self.fields.values())

    @property
    def total_evaluations(self) -> int:
        return sum(f.total_evaluations for f in self.fields.values())

    @property
    def total_cache_hits(self) -> int:
        return sum(f.total_cache_hits for f in self.fields.values())

    @property
    def total_compressor_calls(self) -> int:
        return sum(f.total_compressor_calls for f in self.fields.values())

    @property
    def longest_field_seconds(self) -> float:
        if not self.fields:
            return 0.0
        return max(f.total_wall_seconds for f in self.fields.values())
