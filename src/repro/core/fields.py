"""Algorithm 3 and the time-step reuse optimisation (Sec. V-C).

``tune_time_series`` processes one field across its time-steps: the first
step trains from scratch; afterwards the previous step's error bound is
*assumed correct* and only verified (one compression) — retraining happens
only when the verification misses the acceptance band.  On the paper's
Hurricane CLOUD field this retrains just 4 times in 48 steps (steps 0, 8,
15, 29); the benchmark reproduces that behaviour on the synthetic analog.

``tune_fields`` fans the per-field loops out over an executor — the
"embarrassingly parallel" field dimension.

Both accept a shared :class:`~repro.cache.EvalCache`, which composes with
the prediction-reuse optimisation rather than replacing it: prediction
reuse avoids *searches*, the cache avoids *re-compressions* when a search
(or a verification probe) revisits a bound any previous step, region or
baseline already evaluated.  Under a process-pool executor each field task
works on a pickled copy and ships its new entries back for a deterministic
field-order merge.
"""

from __future__ import annotations

import numpy as np

from repro.cache.evalcache import CacheEntry, EvalCache
from repro.core.results import FieldResult, TimeSeriesResult, TrainingResult
from repro.core.training import DEFAULT_OVERLAP, DEFAULT_REGIONS, train
from repro.parallel.executor import BaseExecutor, SerialExecutor
from repro.pressio.compressor import Compressor

__all__ = ["tune_time_series", "tune_fields"]


def tune_time_series(
    compressor: Compressor,
    series: list[np.ndarray],
    target_ratio: float,
    tolerance: float = 0.1,
    field_name: str = "field",
    lower: float | None = None,
    upper: float | None = None,
    regions: int = DEFAULT_REGIONS,
    overlap: float = DEFAULT_OVERLAP,
    max_calls_per_region: int = 16,
    executor: BaseExecutor | None = None,
    seed: int = 0,
    reuse_prediction: bool = True,
    cache: EvalCache | None = None,
) -> TimeSeriesResult:
    """Tune every time-step of one field, reusing bounds across steps."""
    result = TimeSeriesResult(field_name=field_name)
    prediction: float | None = None
    for t, data in enumerate(series):
        step = train(
            compressor,
            data,
            target_ratio,
            tolerance=tolerance,
            lower=lower,
            upper=upper,
            regions=regions,
            overlap=overlap,
            max_calls_per_region=max_calls_per_region,
            prediction=prediction if reuse_prediction else None,
            executor=executor,
            seed=seed + 1000 * t,
            cache=cache,
        )
        result.steps.append(step)
        if not step.used_prediction:
            result.retrain_steps.append(t)
        if step.feasible:
            prediction = step.error_bound
    return result


def _run_field(payload: tuple) -> tuple[TimeSeriesResult, dict[str, CacheEntry] | None]:
    """Module-level trampoline for process pools; returns the cache delta too.

    ``ship_delta`` is False for shared-memory executors, where the field
    tasks write straight into the parent's cache instance.
    """
    (
        compressor, series, target, tolerance, name, lower, upper,
        regions, overlap, max_calls, seed, reuse, cache, ship_delta,
    ) = payload
    result = tune_time_series(
        compressor,
        series,
        target,
        tolerance=tolerance,
        field_name=name,
        lower=lower,
        upper=upper,
        regions=regions,
        overlap=overlap,
        max_calls_per_region=max_calls,
        executor=None,  # regions run serially inside each field task
        seed=seed,
        reuse_prediction=reuse,
        cache=cache,
    )
    return result, (cache.new_entries() if cache is not None and ship_delta else None)


def tune_fields(
    compressor: Compressor,
    fields: dict[str, list[np.ndarray]],
    target_ratio: float,
    tolerance: float = 0.1,
    lower: float | None = None,
    upper: float | None = None,
    regions: int = DEFAULT_REGIONS,
    overlap: float = DEFAULT_OVERLAP,
    max_calls_per_region: int = 16,
    executor: BaseExecutor | None = None,
    seed: int = 0,
    reuse_prediction: bool = True,
    cache: EvalCache | None = None,
) -> FieldResult:
    """Tune all fields of a dataset in parallel (Algorithm 3)."""
    executor = executor or SerialExecutor()
    ship_delta = cache is not None and not getattr(executor, "shares_memory", True)
    names = list(fields)
    payloads = [
        (
            compressor, fields[name], target_ratio, tolerance, name, lower, upper,
            regions, overlap, max_calls_per_region, seed + 10_000 * i, reuse_prediction,
            cache, ship_delta,
        )
        for i, name in enumerate(names)
    ]
    pairs = executor.map_all(_run_field, payloads)
    if ship_delta:
        for _series_result, entries in pairs:
            cache.merge_entries(entries)
    return FieldResult(fields=dict(zip(names, (res for res, _ in pairs))))
