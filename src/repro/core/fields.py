"""Algorithm 3 and the time-step reuse optimisation (Sec. V-C).

``tune_time_series`` processes one field across its time-steps: the first
step trains from scratch; afterwards the previous step's error bound is
*assumed correct* and only verified (one compression) — retraining happens
only when the verification misses the acceptance band.  On the paper's
Hurricane CLOUD field this retrains just 4 times in 48 steps (steps 0, 8,
15, 29); the benchmark reproduces that behaviour on the synthetic analog.

``tune_fields`` fans the per-field loops out over an executor — the
"embarrassingly parallel" field dimension.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import FieldResult, TimeSeriesResult, TrainingResult
from repro.core.training import DEFAULT_OVERLAP, DEFAULT_REGIONS, train
from repro.parallel.executor import BaseExecutor, SerialExecutor
from repro.pressio.compressor import Compressor

__all__ = ["tune_time_series", "tune_fields"]


def tune_time_series(
    compressor: Compressor,
    series: list[np.ndarray],
    target_ratio: float,
    tolerance: float = 0.1,
    field_name: str = "field",
    lower: float | None = None,
    upper: float | None = None,
    regions: int = DEFAULT_REGIONS,
    overlap: float = DEFAULT_OVERLAP,
    max_calls_per_region: int = 16,
    executor: BaseExecutor | None = None,
    seed: int = 0,
    reuse_prediction: bool = True,
) -> TimeSeriesResult:
    """Tune every time-step of one field, reusing bounds across steps."""
    result = TimeSeriesResult(field_name=field_name)
    prediction: float | None = None
    for t, data in enumerate(series):
        step = train(
            compressor,
            data,
            target_ratio,
            tolerance=tolerance,
            lower=lower,
            upper=upper,
            regions=regions,
            overlap=overlap,
            max_calls_per_region=max_calls_per_region,
            prediction=prediction if reuse_prediction else None,
            executor=executor,
            seed=seed + 1000 * t,
        )
        result.steps.append(step)
        if not step.used_prediction:
            result.retrain_steps.append(t)
        if step.feasible:
            prediction = step.error_bound
    return result


def _run_field(payload: tuple) -> TimeSeriesResult:
    """Module-level trampoline for process pools."""
    (
        compressor, series, target, tolerance, name, lower, upper,
        regions, overlap, max_calls, seed, reuse,
    ) = payload
    return tune_time_series(
        compressor,
        series,
        target,
        tolerance=tolerance,
        field_name=name,
        lower=lower,
        upper=upper,
        regions=regions,
        overlap=overlap,
        max_calls_per_region=max_calls,
        executor=None,  # regions run serially inside each field task
        seed=seed,
        reuse_prediction=reuse,
    )


def tune_fields(
    compressor: Compressor,
    fields: dict[str, list[np.ndarray]],
    target_ratio: float,
    tolerance: float = 0.1,
    lower: float | None = None,
    upper: float | None = None,
    regions: int = DEFAULT_REGIONS,
    overlap: float = DEFAULT_OVERLAP,
    max_calls_per_region: int = 16,
    executor: BaseExecutor | None = None,
    seed: int = 0,
    reuse_prediction: bool = True,
) -> FieldResult:
    """Tune all fields of a dataset in parallel (Algorithm 3)."""
    executor = executor or SerialExecutor()
    names = list(fields)
    payloads = [
        (
            compressor, fields[name], target_ratio, tolerance, name, lower, upper,
            regions, overlap, max_calls_per_region, seed + 10_000 * i, reuse_prediction,
        )
        for i, name in enumerate(names)
    ]
    series_results = executor.map_all(_run_field, payloads)
    return FieldResult(fields=dict(zip(names, series_results)))
