"""Online (in-situ) fixed-ratio compression — the paper's future work #2.

Sec. VII: "we would like to develop an online version of this algorithm to
provide in situ fixed-ratio compression for simulation and instrument
data."  :class:`OnlineFRaZ` is that version: a stateful tuner for frames
arriving one at a time.

Steady-state cost is **one compression per frame**: the verification
compression at the carried-over bound *is* the output payload when it
lands in the band.  Retraining happens only when the stream drifts out of
the acceptance band, and it seeds the search with the stale bound, so
recovery is cheap.  An optional drift monitor tracks how close recent
ratios have come to the band edges and can retrain pre-emptively.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.training import DEFAULT_OVERLAP, DEFAULT_REGIONS, train
from repro.parallel.executor import BaseExecutor
from repro.pressio.compressor import CompressedField, Compressor
from repro.pressio.registry import make_compressor

__all__ = ["DriftMonitor", "OnlineFRaZ", "OnlineStepResult"]


@dataclass
class DriftMonitor:
    """Rolling-ratio drift detector over an acceptance band.

    Tracks the last ``window`` observed ratios; :meth:`drifting` fires when
    their mean creeps within ``margin`` (a fraction of the band half-width)
    of either band edge — the signal that the carried-over error bound is
    about to start missing, so retraining *now* is cheaper than waiting for
    the miss.  Shared by :class:`OnlineFRaZ` (frames arriving in time) and
    :class:`repro.stream.ChunkTuner` (chunks arriving in space).

    ``margin = 0`` disables the monitor; the window must fill before it can
    fire, so isolated outliers right after a retrain don't trigger.
    """

    band: tuple[float, float]
    margin: float = 0.0
    window: int = 4
    _recent: deque = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.margin < 1:
            raise ValueError(f"margin must be in [0, 1), got {self.margin}")
        self._recent = deque(maxlen=max(self.window, 1))

    def observe(self, ratio: float) -> None:
        """Record one achieved ratio."""
        self._recent.append(float(ratio))

    def reset(self) -> None:
        """Forget history (call after a retrain)."""
        self._recent.clear()

    def drifting(self) -> bool:
        """Whether the rolling mean has crept into the margin zone."""
        if self.margin <= 0 or len(self._recent) < self._recent.maxlen:
            return False
        lo, hi = self.band
        pad = self.margin * (hi - lo) / 2.0
        mean = float(np.mean(self._recent))
        return mean < lo + pad or mean > hi - pad


@dataclass(frozen=True)
class OnlineStepResult:
    """Outcome of one pushed frame."""

    payload: CompressedField
    ratio: float
    error_bound: float
    in_band: bool
    retrained: bool
    evaluations: int
    seconds: float


@dataclass
class OnlineFRaZ:
    """Streaming fixed-ratio tuner.

    Parameters mirror :class:`repro.core.fraz.FRaZ`; the extra knob is
    ``drift_margin``: when the rolling mean of recent ratios drifts within
    that fraction of a band edge, the next frame retrains pre-emptively
    instead of waiting for a miss (set to 0 to disable).
    """

    compressor: Compressor | str = "sz"
    target_ratio: float = 10.0
    tolerance: float = 0.1
    max_error_bound: float | None = None
    regions: int = DEFAULT_REGIONS
    overlap: float = DEFAULT_OVERLAP
    max_calls_per_region: int = 16
    executor: BaseExecutor | None = None
    seed: int = 0
    drift_margin: float = 0.0
    drift_window: int = 4

    current_bound: float | None = None
    frames_seen: int = 0
    retrain_count: int = 0
    _drift: DriftMonitor = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.target_ratio <= 0:
            raise ValueError(f"target_ratio must be positive, got {self.target_ratio}")
        if not 0 < self.tolerance < 1:
            raise ValueError(f"tolerance must be in (0, 1), got {self.tolerance}")
        if isinstance(self.compressor, str):
            self.compressor = make_compressor(self.compressor)
        self._drift = DriftMonitor(
            band=self.band, margin=self.drift_margin, window=self.drift_window
        )

    # ------------------------------------------------------------------
    @property
    def band(self) -> tuple[float, float]:
        return (
            self.target_ratio * (1.0 - self.tolerance),
            self.target_ratio * (1.0 + self.tolerance),
        )

    def _drift_predicted(self) -> bool:
        """Pre-emptive retrain signal from the rolling ratio trend."""
        return self._drift.drifting()

    def push(self, frame: np.ndarray) -> OnlineStepResult:
        """Compress one arriving frame at the target ratio."""
        frame = np.asarray(frame)
        t0 = time.perf_counter()
        lo, hi = self.band
        self.frames_seen += 1

        payload: CompressedField | None = None
        evaluations = 0
        if self.current_bound is not None and not self._drift_predicted():
            configured = self.compressor.with_error_bound(self.current_bound)
            payload = configured.compress(frame)
            evaluations = 1
            if lo <= payload.ratio <= hi:
                self._drift.observe(payload.ratio)
                return OnlineStepResult(
                    payload=payload,
                    ratio=payload.ratio,
                    error_bound=self.current_bound,
                    in_band=True,
                    retrained=False,
                    evaluations=1,
                    seconds=time.perf_counter() - t0,
                )

        # Miss (or cold start / predicted drift): retrain, seeding with the
        # stale bound when there is one.
        result = train(
            self.compressor,
            frame,
            self.target_ratio,
            tolerance=self.tolerance,
            upper=self.max_error_bound,
            regions=self.regions,
            overlap=self.overlap,
            max_calls_per_region=self.max_calls_per_region,
            prediction=self.current_bound,
            executor=self.executor,
            seed=self.seed + self.frames_seen,
        )
        self.retrain_count += 1
        evaluations += result.evaluations
        self.current_bound = result.error_bound
        payload = self.compressor.with_error_bound(result.error_bound).compress(frame)
        evaluations += 1
        self._drift.reset()
        self._drift.observe(payload.ratio)
        return OnlineStepResult(
            payload=payload,
            ratio=payload.ratio,
            error_bound=result.error_bound,
            in_band=lo <= payload.ratio <= hi,
            retrained=True,
            evaluations=evaluations,
            seconds=time.perf_counter() - t0,
        )

    def decompress(self, payload: CompressedField | bytes) -> np.ndarray:
        """Reconstruct any payload this tuner produced."""
        return self.compressor.decompress(payload)
