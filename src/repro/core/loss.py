"""Loss construction (Sec. V-B2).

The ratio closure ``rho_r(D, e)`` is turned into a minimisable loss by
taking the squared distance to the target and clamping:

    l(e) = min( (rho_r(D, e) - rho_t)**2 , gamma )

with ``gamma`` equal to 80% of the largest representable double — the
paper's choice, which (a) gives the function a bounded range so the global
optimizer has a well-defined floor, and (b) avoided a segfault in Dlib's
implementation (our reimplementation doesn't segfault, but we keep the
clamp for fidelity and because it also absorbs ``inf`` ratios from empty
payloads).

The paper also evaluated ``min(|x|, gamma)`` and found the quadratic
converged faster; both are provided so the ablation benchmark can compare
them.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["DEFAULT_GAMMA", "clamped_square_loss", "clamped_absolute_loss", "cutoff_for"]

DEFAULT_GAMMA = 0.8 * float(np.finfo(np.float64).max)


def clamped_square_loss(
    ratio_fn: Callable[[float], float],
    target_ratio: float,
    gamma: float = DEFAULT_GAMMA,
) -> Callable[[float], float]:
    """``e -> min((rho_r(e) - rho_t)**2, gamma)`` (the paper's loss)."""
    if target_ratio <= 0:
        raise ValueError(f"target ratio must be positive, got {target_ratio}")

    def loss(error_bound: float) -> float:
        ratio = ratio_fn(error_bound)
        if not np.isfinite(ratio):
            return gamma
        diff = abs(ratio - target_ratio)
        # Squaring a huge float raises OverflowError; the clamp would win
        # anyway, so short-circuit past sqrt(gamma).
        if diff >= np.sqrt(gamma):
            return gamma
        return min(diff * diff, gamma)

    return loss


def clamped_absolute_loss(
    ratio_fn: Callable[[float], float],
    target_ratio: float,
    gamma: float = DEFAULT_GAMMA,
) -> Callable[[float], float]:
    """``e -> min(|rho_r(e) - rho_t|, gamma)`` (the rejected alternative)."""
    if target_ratio <= 0:
        raise ValueError(f"target ratio must be positive, got {target_ratio}")

    def loss(error_bound: float) -> float:
        ratio = ratio_fn(error_bound)
        if not np.isfinite(ratio):
            return gamma
        return min(abs(ratio - target_ratio), gamma)

    return loss


def cutoff_for(target_ratio: float, tolerance: float, squared: bool = True) -> float:
    """Early-termination threshold: loss values in ``[0, (eps * rho_t)**2]``
    are acceptable (Sec. V-B3)."""
    base = tolerance * target_ratio
    return base**2 if squared else base
