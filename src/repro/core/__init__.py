"""FRaZ core: the paper's contribution (Sec. V).

Public entry point is :class:`repro.core.FRaZ` — configure a compressor, a
target compression ratio ``rho_t`` and a tolerance ``eps``; it returns the
error bound whose achieved ratio lands in
``[rho_t * (1 - eps), rho_t * (1 + eps)]`` (or the closest observed point
when the target is infeasible).

Internals map one-to-one onto the paper:

* :mod:`repro.core.loss` — the clamped-square loss (Sec. V-B2);
* :mod:`repro.core.worker` — Algorithm 1 (worker task with prediction
  reuse and the cutoff-equipped optimizer);
* :mod:`repro.core.regions` — overlapping error-bound regions (Fig. 5);
* :mod:`repro.core.training` — Algorithm 2 (parallel regions,
  first-success cancellation, closest-observation fallback);
* :mod:`repro.core.fields` — Algorithm 3 (parallel by field) plus the
  time-step error-bound reuse optimisation;
* :mod:`repro.core.baselines` — binary/grid search comparators.
"""

from repro.core.baselines import binary_search_ratio, grid_search_ratio
from repro.core.fields import tune_fields, tune_time_series
from repro.core.fraz import FRaZ
from repro.core.loss import DEFAULT_GAMMA, clamped_absolute_loss, clamped_square_loss, cutoff_for
from repro.core.online import OnlineFRaZ, OnlineStepResult
from repro.core.quality import QualityResult, max_ratio_at_quality, tune_quality
from repro.core.regions import split_regions
from repro.core.results import FieldResult, TimeSeriesResult, TrainingResult, WorkerResult
from repro.core.training import train
from repro.core.worker import worker_task

__all__ = [
    "DEFAULT_GAMMA",
    "FRaZ",
    "FieldResult",
    "OnlineFRaZ",
    "OnlineStepResult",
    "QualityResult",
    "TimeSeriesResult",
    "TrainingResult",
    "WorkerResult",
    "binary_search_ratio",
    "clamped_absolute_loss",
    "clamped_square_loss",
    "cutoff_for",
    "grid_search_ratio",
    "max_ratio_at_quality",
    "split_regions",
    "train",
    "tune_fields",
    "tune_quality",
    "tune_time_series",
    "worker_task",
]
