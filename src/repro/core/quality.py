"""Quality-targeted tuning — the paper's future work #1.

Sec. VII: "we would like to consider arbitrary user error bounds ... error
bounds that correspond with the quality of a scientist's analysis result",
citing Baker et al.'s finding that a particular SSIM level certifies valid
climate analysis on lossy data.

:func:`tune_quality` inverts a *quality* metric instead of the ratio: it
finds the error bound whose reconstruction quality lands in a band around
the target (e.g. SSIM = 0.95 +- 0.005), using the same cutoff-equipped
global optimizer.  Because quality is monotone-decreasing in the bound
(up to compressor noise), the search doubles as "largest bound — hence
best ratio — that still meets the quality floor":
:func:`max_ratio_at_quality`.

Each probe costs a compression *and* a decompression (quality needs the
reconstruction), so these searches are inherently pricier than ratio
tuning; the memoised closure keeps re-probes free.

Closure keys are normalised through :func:`repro.cache.normalize_bound` —
raw ``float`` keys were a stale-cache hazard (two bounds differing past the
12th significant digit hashed to different keys yet are the same probe).
A shared :class:`~repro.cache.EvalCache` can be injected: quality values
piggyback on ratio entries as aux metrics (``"quality:ssim"``), so a
quality search warms the ratio cache and vice versa.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.cache.evalcache import CacheEntry, EvalCache
from repro.cache.keys import normalize_bound
from repro.core.loss import DEFAULT_GAMMA
from repro.metrics import psnr, ssim
from repro.optimize import find_global_min
from repro.pressio.compressor import Compressor

__all__ = ["QualityResult", "tune_quality", "max_ratio_at_quality"]

QUALITY_METRICS: dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "ssim": ssim,
    "psnr": psnr,
}


@dataclass(frozen=True)
class QualityResult:
    """Outcome of a quality-targeted search."""

    error_bound: float
    quality: float
    ratio: float
    metric: str
    target: float
    feasible: bool
    evaluations: int
    wall_seconds: float
    cache_hits: int = 0
    cache_misses: int = 0


class _QualityClosure:
    """Memoised ``e -> (quality, ratio)`` over one (compressor, data) pair.

    Keys are normalised bounds (repr-stable rounding), matching
    :class:`~repro.cache.EvalCache` — raw-float keys let near-identical
    bounds slip past the memo and re-probe.
    """

    def __init__(
        self,
        compressor: Compressor,
        data: np.ndarray,
        metric: str,
        shared: EvalCache | None = None,
    ) -> None:
        if metric not in QUALITY_METRICS:
            raise KeyError(
                f"unknown quality metric {metric!r}; available: {sorted(QUALITY_METRICS)}"
            )
        self.compressor = compressor
        self.data = np.asarray(data)
        self.metric = metric
        self.metric_fn = QUALITY_METRICS[metric]
        self.shared = shared
        self.cache: dict[float, tuple[float, float]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def __call__(self, error_bound: float) -> tuple[float, float]:
        e = normalize_bound(error_bound)
        if e in self.cache:
            return self.cache[e]
        aux_name = f"quality:{self.metric}"
        key = None
        if self.shared is not None:
            key = self.shared.key_for(self.compressor, self.data, e)
            entry = self.shared.get_aux(key, aux_name, data_nbytes=self.data.nbytes)
            if entry is not None:
                self.cache_hits += 1
                self.cache[e] = (float(entry.aux_get(aux_name)), entry.ratio)
                return self.cache[e]
        configured = self.compressor.with_error_bound(e)
        start = time.perf_counter()
        payload = configured.compress(self.data)
        elapsed = time.perf_counter() - start
        recon = configured.decompress(payload)
        quality = float(self.metric_fn(self.data, recon))
        self.cache_misses += 1
        if self.shared is not None and key is not None:
            self.shared.put(
                key,
                CacheEntry(payload.ratio, payload.nbytes, elapsed).with_aux(aux_name, quality),
            )
        self.cache[e] = (quality, payload.ratio)
        return self.cache[e]

    @property
    def evaluations(self) -> int:
        return len(self.cache)


def tune_quality(
    compressor: Compressor,
    data: np.ndarray,
    target: float,
    metric: str = "ssim",
    tolerance: float = 0.005,
    lower: float | None = None,
    upper: float | None = None,
    max_calls: int = 24,
    seed: int = 0,
    cache: EvalCache | None = None,
) -> QualityResult:
    """Find an error bound whose reconstruction quality hits ``target``.

    Parameters
    ----------
    compressor:
        Any ``abs``-mode compressor.
    data:
        The field to tune on.
    target:
        Quality target (SSIM in [0, 1], or PSNR in dB).
    metric:
        ``"ssim"`` or ``"psnr"`` (extensible via :data:`QUALITY_METRICS`).
    tolerance:
        Half-width of the acceptance band, in the metric's own units
        (absolute, not relative — SSIM targets are near 1).
    lower, upper:
        Error-bound search interval; defaults to the compressor's range.
    max_calls:
        Probe budget (each probe = compress + decompress).
    cache:
        Optional shared :class:`~repro.cache.EvalCache`; quality values
        ride on ratio entries as aux metrics.
    """
    t0 = time.perf_counter()
    data = np.asarray(data)
    default_lo, default_hi = compressor.default_bound_range(data)
    lo = default_lo if lower is None else float(lower)
    hi = default_hi if upper is None else float(upper)

    closure = _QualityClosure(compressor, data, metric, shared=cache)

    def loss(e: float) -> float:
        quality, _ = closure(e)
        if not np.isfinite(quality):
            return DEFAULT_GAMMA
        return min((quality - target) ** 2, DEFAULT_GAMMA)

    find_global_min(
        loss, lo, hi, max_calls=max_calls, cutoff=tolerance**2, seed=seed
    )

    best_e = min(closure.cache, key=lambda e: (closure.cache[e][0] - target) ** 2)
    quality, ratio = closure.cache[best_e]
    return QualityResult(
        error_bound=best_e,
        quality=quality,
        ratio=ratio,
        metric=metric,
        target=target,
        feasible=abs(quality - target) <= tolerance,
        evaluations=closure.evaluations,
        wall_seconds=time.perf_counter() - t0,
        cache_hits=closure.cache_hits,
        cache_misses=closure.cache_misses,
    )


def max_ratio_at_quality(
    compressor: Compressor,
    data: np.ndarray,
    min_quality: float,
    metric: str = "ssim",
    lower: float | None = None,
    upper: float | None = None,
    max_calls: int = 24,
    seed: int = 0,
    cache: EvalCache | None = None,
) -> QualityResult:
    """Best compression ratio whose quality stays at or above a floor.

    Runs :func:`tune_quality` at the floor, then returns the *highest-ratio*
    probe among all evaluated bounds that satisfy the floor — the search's
    whole history is reused, so this costs nothing extra.
    """
    t0 = time.perf_counter()
    data = np.asarray(data)
    default_lo, default_hi = compressor.default_bound_range(data)
    lo = default_lo if lower is None else float(lower)
    hi = default_hi if upper is None else float(upper)

    closure = _QualityClosure(compressor, data, metric, shared=cache)

    def loss(e: float) -> float:
        quality, _ = closure(e)
        if not np.isfinite(quality):
            return DEFAULT_GAMMA
        return min((quality - min_quality) ** 2, DEFAULT_GAMMA)

    find_global_min(loss, lo, hi, max_calls=max_calls, seed=seed)

    satisfying = {
        e: (q, r) for e, (q, r) in closure.cache.items() if q >= min_quality
    }
    if satisfying:
        best_e = max(satisfying, key=lambda e: satisfying[e][1])
        quality, ratio = satisfying[best_e]
        feasible = True
    else:
        best_e = max(closure.cache, key=lambda e: closure.cache[e][0])
        quality, ratio = closure.cache[best_e]
        feasible = False
    return QualityResult(
        error_bound=best_e,
        quality=quality,
        ratio=ratio,
        metric=metric,
        target=min_quality,
        feasible=feasible,
        evaluations=closure.evaluations,
        wall_seconds=time.perf_counter() - t0,
        cache_hits=closure.cache_hits,
        cache_misses=closure.cache_misses,
    )
