"""Quality-targeted tuning — the paper's future work #1.

Sec. VII: "we would like to consider arbitrary user error bounds ... error
bounds that correspond with the quality of a scientist's analysis result",
citing Baker et al.'s finding that a particular SSIM level certifies valid
climate analysis on lossy data.

:func:`tune_quality` inverts a *quality* metric instead of the ratio: it
finds the error bound whose reconstruction quality lands in a band around
the target (e.g. SSIM = 0.95 +- 0.005), using the same cutoff-equipped
global optimizer.  Because quality is monotone-decreasing in the bound
(up to compressor noise), the search doubles as "largest bound — hence
best ratio — that still meets the quality floor":
:func:`max_ratio_at_quality`.

Each probe costs a compression *and* a decompression (quality needs the
reconstruction), so these searches are inherently pricier than ratio
tuning; the memoised closure keeps re-probes free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.loss import DEFAULT_GAMMA
from repro.metrics import psnr, ssim
from repro.optimize import find_global_min
from repro.pressio.compressor import Compressor

__all__ = ["QualityResult", "tune_quality", "max_ratio_at_quality", "QUALITY_METRICS"]

QUALITY_METRICS: dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "ssim": ssim,
    "psnr": psnr,
}


@dataclass(frozen=True)
class QualityResult:
    """Outcome of a quality-targeted search."""

    error_bound: float
    quality: float
    ratio: float
    metric: str
    target: float
    feasible: bool
    evaluations: int
    wall_seconds: float


class _QualityClosure:
    """Memoised ``e -> (quality, ratio)`` over one (compressor, data) pair."""

    def __init__(self, compressor: Compressor, data: np.ndarray, metric: str) -> None:
        if metric not in QUALITY_METRICS:
            raise KeyError(
                f"unknown quality metric {metric!r}; available: {sorted(QUALITY_METRICS)}"
            )
        self.compressor = compressor
        self.data = np.asarray(data)
        self.metric_fn = QUALITY_METRICS[metric]
        self.cache: dict[float, tuple[float, float]] = {}

    def __call__(self, error_bound: float) -> tuple[float, float]:
        e = float(error_bound)
        if e in self.cache:
            return self.cache[e]
        configured = self.compressor.with_error_bound(e)
        payload = configured.compress(self.data)
        recon = configured.decompress(payload)
        quality = float(self.metric_fn(self.data, recon))
        self.cache[e] = (quality, payload.ratio)
        return self.cache[e]

    @property
    def evaluations(self) -> int:
        return len(self.cache)


def tune_quality(
    compressor: Compressor,
    data: np.ndarray,
    target: float,
    metric: str = "ssim",
    tolerance: float = 0.005,
    lower: float | None = None,
    upper: float | None = None,
    max_calls: int = 24,
    seed: int = 0,
) -> QualityResult:
    """Find an error bound whose reconstruction quality hits ``target``.

    Parameters
    ----------
    compressor:
        Any ``abs``-mode compressor.
    data:
        The field to tune on.
    target:
        Quality target (SSIM in [0, 1], or PSNR in dB).
    metric:
        ``"ssim"`` or ``"psnr"`` (extensible via :data:`QUALITY_METRICS`).
    tolerance:
        Half-width of the acceptance band, in the metric's own units
        (absolute, not relative — SSIM targets are near 1).
    lower, upper:
        Error-bound search interval; defaults to the compressor's range.
    max_calls:
        Probe budget (each probe = compress + decompress).
    """
    t0 = time.perf_counter()
    data = np.asarray(data)
    default_lo, default_hi = compressor.default_bound_range(data)
    lo = default_lo if lower is None else float(lower)
    hi = default_hi if upper is None else float(upper)

    closure = _QualityClosure(compressor, data, metric)

    def loss(e: float) -> float:
        quality, _ = closure(e)
        if not np.isfinite(quality):
            return DEFAULT_GAMMA
        return min((quality - target) ** 2, DEFAULT_GAMMA)

    find_global_min(
        loss, lo, hi, max_calls=max_calls, cutoff=tolerance**2, seed=seed
    )

    best_e = min(closure.cache, key=lambda e: (closure.cache[e][0] - target) ** 2)
    quality, ratio = closure.cache[best_e]
    return QualityResult(
        error_bound=best_e,
        quality=quality,
        ratio=ratio,
        metric=metric,
        target=target,
        feasible=abs(quality - target) <= tolerance,
        evaluations=closure.evaluations,
        wall_seconds=time.perf_counter() - t0,
    )


def max_ratio_at_quality(
    compressor: Compressor,
    data: np.ndarray,
    min_quality: float,
    metric: str = "ssim",
    lower: float | None = None,
    upper: float | None = None,
    max_calls: int = 24,
    seed: int = 0,
) -> QualityResult:
    """Best compression ratio whose quality stays at or above a floor.

    Runs :func:`tune_quality` at the floor, then returns the *highest-ratio*
    probe among all evaluated bounds that satisfy the floor — the search's
    whole history is reused, so this costs nothing extra.
    """
    t0 = time.perf_counter()
    data = np.asarray(data)
    default_lo, default_hi = compressor.default_bound_range(data)
    lo = default_lo if lower is None else float(lower)
    hi = default_hi if upper is None else float(upper)

    closure = _QualityClosure(compressor, data, metric)

    def loss(e: float) -> float:
        quality, _ = closure(e)
        if not np.isfinite(quality):
            return DEFAULT_GAMMA
        return min((quality - min_quality) ** 2, DEFAULT_GAMMA)

    find_global_min(loss, lo, hi, max_calls=max_calls, seed=seed)

    satisfying = {
        e: (q, r) for e, (q, r) in closure.cache.items() if q >= min_quality
    }
    if satisfying:
        best_e = max(satisfying, key=lambda e: satisfying[e][1])
        quality, ratio = satisfying[best_e]
        feasible = True
    else:
        best_e = max(closure.cache, key=lambda e: closure.cache[e][0])
        quality, ratio = closure.cache[best_e]
        feasible = False
    return QualityResult(
        error_bound=best_e,
        quality=quality,
        ratio=ratio,
        metric=metric,
        target=min_quality,
        feasible=feasible,
        evaluations=closure.evaluations,
        wall_seconds=time.perf_counter() - t0,
    )
