"""Search baselines FRaZ is compared against.

* :func:`binary_search_ratio` — the "straightforward binary search" of
  Sec. V-B1: bisect the error bound assuming the ratio grows monotonically
  with it.  On the Hurricane CLOUD example the paper reports 39 iterations
  vs FRaZ's 6 — and on non-monotonic data it can converge to the wrong
  plateau entirely; both effects are benchmarked.
* :func:`grid_search_ratio` — exhaustive sweep, the trial-and-error
  strategy users resort to today (Sec. II-B).
"""

from __future__ import annotations

import numpy as np

from repro.cache.evalcache import EvalCache
from repro.core.results import TrainingResult
from repro.pressio.closures import RatioFunction
from repro.pressio.compressor import Compressor

__all__ = ["binary_search_ratio", "grid_search_ratio"]


def binary_search_ratio(
    compressor: Compressor,
    data: np.ndarray,
    target_ratio: float,
    tolerance: float = 0.1,
    lower: float | None = None,
    upper: float | None = None,
    max_calls: int = 64,
    cache: EvalCache | None = None,
) -> TrainingResult:
    """Bisect the error bound toward ``target_ratio``.

    Assumes ratio is nondecreasing in the bound (true on average, false in
    detail — Fig. 3); stops when the band is hit, the bracket collapses, or
    the call budget is exhausted.
    """
    import time

    t0 = time.perf_counter()
    data = np.asarray(data)
    default_lo, default_hi = compressor.default_bound_range(data)
    lo = default_lo if lower is None else float(lower)
    hi = default_hi if upper is None else float(upper)
    ratio_fn = RatioFunction(compressor, data, cache=cache)
    lo_band = target_ratio * (1.0 - tolerance)
    hi_band = target_ratio * (1.0 + tolerance)

    feasible = False
    while ratio_fn.evaluations < max_calls and hi - lo > 1e-15 * (default_hi - default_lo):
        mid = 0.5 * (lo + hi)
        ratio = ratio_fn(mid)
        if lo_band <= ratio <= hi_band:
            feasible = True
            break
        if ratio < target_ratio:
            lo = mid  # need a looser bound for a higher ratio
        else:
            hi = mid
    best = ratio_fn.best_observation(target_ratio)
    assert best is not None
    return TrainingResult(
        error_bound=best.error_bound,
        ratio=best.ratio,
        target_ratio=target_ratio,
        tolerance=tolerance,
        feasible=feasible or lo_band <= best.ratio <= hi_band,
        evaluations=ratio_fn.evaluations,
        compress_seconds=ratio_fn.compress_seconds,
        wall_seconds=time.perf_counter() - t0,
        used_prediction=False,
        cache_hits=ratio_fn.cache_hits,
        cache_misses=ratio_fn.cache_misses,
    )


def grid_search_ratio(
    compressor: Compressor,
    data: np.ndarray,
    target_ratio: float,
    tolerance: float = 0.1,
    lower: float | None = None,
    upper: float | None = None,
    points: int = 64,
    log_spaced: bool = True,
    cache: EvalCache | None = None,
) -> TrainingResult:
    """Exhaustive sweep over ``points`` candidate bounds (trial-and-error)."""
    import time

    t0 = time.perf_counter()
    data = np.asarray(data)
    default_lo, default_hi = compressor.default_bound_range(data)
    lo = default_lo if lower is None else float(lower)
    hi = default_hi if upper is None else float(upper)
    if log_spaced and lo > 0:
        grid = np.geomspace(lo, hi, points)
    else:
        grid = np.linspace(lo, hi, points)

    ratio_fn = RatioFunction(compressor, data, cache=cache)
    lo_band = target_ratio * (1.0 - tolerance)
    hi_band = target_ratio * (1.0 + tolerance)
    feasible = False
    for e in grid:
        ratio = ratio_fn(float(e))
        if lo_band <= ratio <= hi_band:
            feasible = True
            break
    best = ratio_fn.best_observation(target_ratio)
    assert best is not None
    return TrainingResult(
        error_bound=best.error_bound,
        ratio=best.ratio,
        target_ratio=target_ratio,
        tolerance=tolerance,
        feasible=feasible,
        evaluations=ratio_fn.evaluations,
        compress_seconds=ratio_fn.compress_seconds,
        wall_seconds=time.perf_counter() - t0,
        used_prediction=False,
        cache_hits=ratio_fn.cache_hits,
        cache_misses=ratio_fn.cache_misses,
    )
