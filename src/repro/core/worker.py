"""Algorithm 1: the worker task.

One worker owns one error-bound region.  It first tries the *prediction*
(the previous time-step's bound) — if that already lands inside the
acceptance band, the whole search is skipped (lines 1-6).  Otherwise it
runs the cutoff-equipped global optimizer over its region (line 7,
``train_with_cutoff``) and reports the best ratio it observed.
"""

from __future__ import annotations

import numpy as np

from repro.cache.evalcache import EvalCache
from repro.core.loss import clamped_square_loss, cutoff_for
from repro.core.results import WorkerResult
from repro.optimize import find_global_min
from repro.pressio.closures import RatioFunction
from repro.pressio.compressor import Compressor

__all__ = ["worker_task"]


def worker_task(
    compressor: Compressor,
    data: np.ndarray,
    target_ratio: float,
    tolerance: float,
    region: tuple[float, float],
    prediction: float | None = None,
    max_calls: int = 16,
    seed: int = 0,
    cache: EvalCache | None = None,
) -> WorkerResult:
    """Search one region for an error bound achieving ``target_ratio``.

    Parameters
    ----------
    compressor:
        Error-bounded compressor configuration (any bound it carries is
        overridden by the probes).
    data:
        The field/time-step dataset ``D_{f,t}``.
    target_ratio:
        ``rho_t``.
    tolerance:
        ``eps``; acceptance band is ``rho_t * (1 +- eps)``.
    region:
        ``(lower, upper)`` error-bound subinterval owned by this worker.
    prediction:
        Previous time-step's bound; tried before any training.
    max_calls:
        Objective-evaluation budget for this region (the paper constrains
        iterations rather than time, Sec. V-C).
    seed:
        Optimizer determinism seed.
    cache:
        Optional shared :class:`~repro.cache.EvalCache`; probes another
        worker or time-step already paid for are answered without
        compressing.
    """
    if target_ratio <= 0:
        raise ValueError(f"target ratio must be positive, got {target_ratio}")
    if not 0 < tolerance < 1:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    lower, upper = region
    ratio_fn = RatioFunction(compressor, data, cache=cache)
    lo_band = target_ratio * (1.0 - tolerance)
    hi_band = target_ratio * (1.0 + tolerance)

    # Lines 1-6: try the prediction first and return immediately on success.
    if prediction is not None and prediction > 0:
        ratio = ratio_fn(prediction)
        if lo_band <= ratio <= hi_band:
            return WorkerResult(
                error_bound=float(prediction),
                ratio=ratio,
                feasible=True,
                evaluations=ratio_fn.evaluations,
                region=region,
                used_prediction=True,
                compress_seconds=ratio_fn.compress_seconds,
                cache_hits=ratio_fn.cache_hits,
                cache_misses=ratio_fn.cache_misses,
            )

    # Line 7: train with cutoff.
    loss = clamped_square_loss(ratio_fn, target_ratio)
    cutoff = cutoff_for(target_ratio, tolerance)
    initial = [prediction] if prediction is not None and lower <= prediction <= upper else []
    find_global_min(
        loss,
        lower,
        upper,
        max_calls=max_calls,
        cutoff=cutoff,
        seed=seed,
        initial_points=initial,
    )

    best = ratio_fn.best_observation(target_ratio)
    assert best is not None  # the optimizer always evaluates at least once
    feasible = lo_band <= best.ratio <= hi_band
    return WorkerResult(
        error_bound=best.error_bound,
        ratio=best.ratio,
        feasible=feasible,
        evaluations=ratio_fn.evaluations,
        region=region,
        used_prediction=False,
        compress_seconds=ratio_fn.compress_seconds,
        cache_hits=ratio_fn.cache_hits,
        cache_misses=ratio_fn.cache_misses,
    )
