"""Overlapping error-bound search regions (Fig. 5).

The full ``[lower, upper]`` interval is divided into ``k`` regions that
overlap by a fixed fraction ``alpha`` of the region width (10% by default).
The overlap matters: the search terminates on first success, so runtime is
set by the region containing the target; without overlap, a target bound
sitting on a border leaves its MPI rank with no stationary points for the
quadratic refinement and a long worst-case search.  The end regions are
clipped, so E1 and Ek are "slightly smaller", exactly as the figure notes.
"""

from __future__ import annotations

__all__ = ["split_regions"]


def split_regions(
    lower: float,
    upper: float,
    k: int,
    overlap: float = 0.1,
) -> list[tuple[float, float]]:
    """Split ``[lower, upper]`` into ``k`` overlapping regions.

    Parameters
    ----------
    lower, upper:
        Search interval, ``upper > lower``.
    k:
        Number of regions (the paper's default task count is 12).
    overlap:
        Fraction of the region width each side extends into its neighbours
        (``alpha`` in Table I).

    Returns
    -------
    list of (lo, hi)
        Regions in ascending order; their union is exactly
        ``[lower, upper]``; interior boundaries overlap by
        ``2 * overlap * width``.
    """
    if not upper > lower:
        raise ValueError(f"need upper > lower, got [{lower}, {upper}]")
    if k < 1:
        raise ValueError(f"need at least one region, got {k}")
    if not 0.0 <= overlap < 0.5:
        raise ValueError(f"overlap must be in [0, 0.5), got {overlap}")

    width = (upper - lower) / k
    margin = overlap * width
    regions = []
    for i in range(k):
        # Pin the outer edges exactly: `lower + k * (span / k)` need not
        # round back to `upper` in floating point.
        lo = lower if i == 0 else max(lower, lower + i * width - margin)
        hi = upper if i == k - 1 else min(upper, lower + (i + 1) * width + margin)
        regions.append((lo, hi))
    return regions
