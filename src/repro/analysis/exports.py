"""Export-drift checker: ``__all__`` must match reality.

``DEAD001`` (project scope)
    A name listed in a module's ``__all__`` that either

    * is not defined in (or imported into) that module at all — a typo
      or leftover from a refactor; ``from m import missing`` raises at
      runtime and ``import *`` silently exports less than promised —
      (modules with a PEP 562 module-level ``__getattr__`` are exempt
      from this half: their definition set is dynamic) — or
    * is defined but referenced *nowhere else*: no project module and no
      file under ``tests/`` imports it (``from m import name``) or
      touches it as an attribute (``anything.name``) — an export nothing
      consumes.  The tests tree is parsed from disk for the usage pass
      (the checked path set usually covers only ``src``), because a
      library export exercised only by its test suite is still alive.

    Package ``__init__`` modules are exempt from the *unused* half: a
    facade ``__init__`` exists to re-export names for consumers outside
    the repository, so "nothing in-tree uses it" is expected there (the
    *undefined* half still applies — a facade must not promise names it
    cannot deliver).  Elsewhere, names kept exported for external
    consumers get a same-line ``# repro: ignore[DEAD001]`` on their
    ``__all__`` entry.
"""

from __future__ import annotations

import ast
import os

from repro.analysis.engine import Finding, Project, checker, discover_files

RULES = {
    "DEAD001": "__all__ exports a name nothing defines or imports",
}


def _all_entries(tree: ast.Module) -> list[tuple[str, ast.AST]]:
    """(name, node) for each string in module-level ``__all__`` lists."""
    out: list[tuple[str, ast.AST]] = []
    for stmt in tree.body:
        target = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
        elif isinstance(stmt, ast.AugAssign):
            target = stmt.target
        if not (isinstance(target, ast.Name) and target.id == "__all__"):
            continue
        value = stmt.value
        if isinstance(value, (ast.List, ast.Tuple)):
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    out.append((elt.value, elt))
    return out


def _defined_names(tree: ast.Module) -> set[str]:
    """Names bound at module level (defs, classes, imports, assignments)."""
    names: set[str] = set()

    def bind_target(node: ast.AST) -> None:
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                bind_target(elt)

    def walk(body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    bind_target(target)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                bind_target(stmt.target)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, (ast.If, ast.Try)):
                walk(stmt.body)
                for handler in getattr(stmt, "handlers", []):
                    walk(handler.body)
                walk(stmt.orelse)
                walk(getattr(stmt, "finalbody", []))
    walk(tree.body)
    return names


def _is_test_path(path: str) -> bool:
    return path.startswith("tests/") or "/tests/" in path


def _has_module_getattr(tree: ast.Module) -> bool:
    """PEP 562: a module-level ``__getattr__`` makes definitions dynamic."""
    return any(isinstance(stmt, ast.FunctionDef) and stmt.name == "__getattr__"
               for stmt in tree.body)


def _collect_uses(tree: ast.Module, into: dict[str, set[str]],
                  path: str) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    into.setdefault(alias.name, set()).add(path)
        elif isinstance(node, ast.Attribute):
            into.setdefault(node.attr, set()).add(path)


def _tests_tree_uses(root: str, into: dict[str, set[str]]) -> None:
    """Fold the tests tree (parsed from disk) into the usage universe.

    The checked path set usually covers only ``src``, but an export
    consumed by the test suite is not dead — the suite is its consumer.
    """
    tests_dir = os.path.join(root, "tests")
    if not os.path.isdir(tests_dir):
        return
    for path in discover_files([tests_dir]):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                tree = ast.parse(fh.read())
        except (OSError, SyntaxError, ValueError):  # repro: ignore[EXC002]
            continue  # unreadable/unparseable test file: not a usage source
        _collect_uses(tree, into, path)


EXAMPLES = {
    "DEAD001": ('__all__ = ["Reader", "Writer"]  # Writer was renamed away\n\nclass Reader: ...',
                '__all__ = ["Reader"]\n\nclass Reader: ...'),
}


@checker("export-drift", scope="project", rules=RULES, examples=EXAMPLES)
def check_export_drift(project: Project) -> list[Finding]:
    # Pass 1: every name referenced anywhere — project modules plus the
    # tests tree parsed from disk — as an import target or attribute.
    referenced_by: dict[str, set[str]] = {}
    for pf in project.files:
        _collect_uses(pf.tree, referenced_by, pf.path)
    _tests_tree_uses(project.root, referenced_by)

    findings: list[Finding] = []
    for pf in project.files:
        if _is_test_path(pf.path):
            continue
        entries = _all_entries(pf.tree)
        if not entries:
            continue
        defined = _defined_names(pf.tree)
        dynamic = _has_module_getattr(pf.tree)
        facade = pf.path.endswith("__init__.py")
        for name, node in entries:
            if name not in defined and not dynamic:
                findings.append(pf.finding(
                    "DEAD001", node,
                    f"__all__ exports {name!r} but the module never defines "
                    f"or imports it"))
                continue
            if facade:
                continue
            if not referenced_by.get(name, set()) - {pf.path}:
                findings.append(pf.finding(
                    "DEAD001", node,
                    f"__all__ exports {name!r} but nothing else in the "
                    f"project or its tests imports or references it"))
    return findings
