"""Monotonic-clock lint: wall time must never measure durations.

The service tier's convention (PR 6/8): ``time.time()`` is only for
human-facing wall *stamps* (trace spans, log lines); every duration is
computed from ``time.monotonic()``/``time.perf_counter()``, and fields
holding monotonic readings carry the ``*_mono`` suffix.  NTP steps and
leap smearing make wall-clock differences lie — a negative "latency"
poisons a histogram forever.

``MONO001``
    ``time.time()`` appears in subtraction (duration arithmetic).
``MONO002``
    ``time.time()`` appears in a ``.observe(...)`` argument (recording
    a wall stamp into a latency histogram).

Plain assignments (``self._started_at = time.time()``) are fine — the
rules only fire where a wall reading is *used as a duration*.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, ParsedFile, checker

RULES = {
    "MONO001": "time.time() used in duration arithmetic; use time.monotonic()",
    "MONO002": "time.time() observed into a histogram; observe a monotonic delta",
}


def _is_wall_clock_call(node: ast.AST) -> bool:
    """``time.time()`` (the only wall-clock spelling in this codebase)."""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "time"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time")


def _contains_wall_clock(node: ast.AST) -> ast.Call | None:
    for child in ast.walk(node):
        if _is_wall_clock_call(child):
            return child
    return None


EXAMPLES = {
    "MONO001": ("start = time.time()\n...\nelapsed = time.time() - start",
                "start = time.monotonic()\n...\nelapsed = time.monotonic() - start"),
    "MONO002": ("histogram.observe(time.time())",
                "histogram.observe(time.monotonic() - started_mono)"),
}


@checker("monotonic-clock", scope="file", rules=RULES, examples=EXAMPLES)
def check_clocks(pf: ParsedFile) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(pf.tree):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
            for side in (node.left, node.right):
                hit = _contains_wall_clock(side)
                if hit is not None:
                    findings.append(pf.finding(
                        "MONO001", hit,
                        "wall-clock time.time() in duration arithmetic; "
                        "use time.monotonic() (keep the *_mono convention)"))
        elif (isinstance(node, ast.Call)
              and isinstance(node.func, ast.Attribute)
              and node.func.attr == "observe"):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                hit = _contains_wall_clock(arg)
                if hit is not None:
                    findings.append(pf.finding(
                        "MONO002", hit,
                        "wall-clock time.time() recorded into a histogram; "
                        "observe a monotonic delta instead"))
    return findings
