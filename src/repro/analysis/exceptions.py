"""Exception-flow checkers: typed raises on the public surface.

``EXC001`` (project scope)
    A *public* entry point in ``repro/serve``, ``repro/gateway`` or
    ``repro/api`` (module-level function or method of a public class,
    neither name starting with ``_``) may only ``raise`` exception types
    rooted in :class:`repro.errors.ReproError` — so callers catch one
    documented hierarchy instead of guessing which stdlib type a failure
    mode maps to.  The typed set is computed from the project itself:
    classes defined in ``src/repro/errors.py`` plus any class anywhere
    in ``src`` that (transitively, by name) inherits from one.  Allowed
    regardless: ``NotImplementedError``, bare ``raise``, and re-raising
    a caught variable (``raise exc`` / ``raise exc from ...``).

``EXC002`` (file scope)
    An ``except`` handler whose body does nothing at all — only
    ``pass``/``continue``/``...`` — swallows the error without logging,
    re-raising, or counting it.  Deliberate best-effort swallows carry a
    same-line ``# repro: ignore[EXC002]`` with a justification comment.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, ParsedFile, Project, checker

__all__ = ["typed_exception_names"]

RULES = {
    "EXC001": "public serve/gateway/api entry point raises an untyped exception",
    "EXC002": "except clause swallows the error without logging or re-raising",
}

#: Directory segments whose public surface must raise typed errors.
#: (Segment matching, like the wire checker's suffix matching, lets the
#: fixture packages under tests/analysis/fixtures exercise the rule.)
PUBLIC_SEGMENTS = ("serve", "gateway", "api")

#: The module (by suffix) that roots the hierarchy.
ERRORS_SUFFIX = "errors.py"

#: Raises always allowed on the public surface.
ALWAYS_ALLOWED = {"NotImplementedError", "AssertionError"}


def _class_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _handler_label(node: ast.expr | None) -> str:
    """Human-readable label for an ``except`` clause's type expression."""
    if node is None:
        return "all"
    if isinstance(node, ast.Tuple):
        parts = [_class_name(elt) or "?" for elt in node.elts]
        return f"({', '.join(parts)})"
    return _class_name(node) or "?"


def typed_exception_names(project: Project) -> set[str]:
    """Names of every class rooted (by name, transitively) in ReproError.

    Class-to-base edges are collected from all project files; the roots
    are the classes defined in ``src/repro/errors.py``.  Name-keyed, like
    the rest of the suite — fine for this codebase's flat namespace.
    """
    bases: dict[str, set[str]] = {}
    roots: set[str] = set()
    for pf in project.files:
        is_errors = pf.path.endswith(ERRORS_SUFFIX)
        for node in ast.walk(pf.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            names = {b for b in (_class_name(base) for base in node.bases) if b}
            bases.setdefault(node.name, set()).update(names)
            if is_errors:
                roots.add(node.name)
    typed = set(roots)
    changed = True
    while changed:
        changed = False
        for name, parents in bases.items():
            if name not in typed and parents & typed:
                typed.add(name)
                changed = True
    return typed


def _public_raises(tree: ast.Module):
    """Yield (entry_point_name, Raise) for each public-surface raise."""

    def walk_body(owner: str, body: list[ast.stmt]) -> None:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Raise):
                    found.append((owner, node))

    found: list[tuple[str, ast.Raise]] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not node.name.startswith("_"):
                walk_body(node.name, node.body)
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            for item in node.body:
                if (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and not item.name.startswith("_")):
                    walk_body(f"{node.name}.{item.name}", item.body)
    return found


EXAMPLES = {
    "EXC001": ('def from_dict(cls, payload):\n    raise ValueError("bad payload")',
               'from repro.errors import RequestError\n\ndef from_dict(cls, payload):\n    raise RequestError("bad payload")'),
    "EXC002": ("try:\n    listener(job)\nexcept Exception:\n    pass",
               "try:\n    listener(job)\nexcept Exception as exc:\n    logger.event(\"listener_failed\", error=str(exc))"),
}


@checker("exception-flow", scope="project", rules={"EXC001": RULES["EXC001"]},
         examples={"EXC001": EXAMPLES["EXC001"]})
def check_exception_flow(project: Project) -> list[Finding]:
    typed = typed_exception_names(project) | ALWAYS_ALLOWED
    findings: list[Finding] = []
    for pf in project.files:
        segments = pf.path.split("/")[:-1]
        if not any(seg in segments for seg in PUBLIC_SEGMENTS):
            continue
        for owner, node in _public_raises(pf.tree):
            if node.exc is None:
                continue  # bare re-raise
            exc = node.exc
            if isinstance(exc, ast.Name) and not isinstance(exc.ctx, ast.Store):
                # ``raise exc`` — re-raising a caught/constructed variable;
                # lowercase names are locals, CamelCase a class reference.
                if not exc.id[:1].isupper():
                    continue
                name = exc.id
            elif isinstance(exc, ast.Call):
                name = _class_name(exc.func)
                if name is not None and not name[:1].isupper():
                    continue  # factory/helper call returning an exception
            else:
                continue  # attribute re-raise etc.: out of scope
            if name is None or name in typed:
                continue
            findings.append(pf.finding(
                "EXC001", node,
                f"{owner}() raises {name}; public serve/gateway/api entry "
                f"points must raise ReproError subclasses (see repro/errors.py)"))
    return findings


def _swallows(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ``...``
        return False
    return True


@checker("exception-swallow", scope="file", rules={"EXC002": RULES["EXC002"]},
         examples={"EXC002": EXAMPLES["EXC002"]})
def check_exception_swallow(pf: ParsedFile) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(pf.tree):
        if isinstance(node, ast.ExceptHandler) and _swallows(node):
            caught = _handler_label(node.type)
            findings.append(pf.finding(
                "EXC002", node,
                f"except {caught}: swallows the error without logging, "
                f"re-raising, or counting it"))
    return findings
