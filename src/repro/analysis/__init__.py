"""Analysis helpers: ratio/quality sweeps and feasibility probing.

The paper's evaluation revolves around three curve families — ratio vs
bound (Figs. 3/4), rate distortion (Figs. 1/9) and achievable-ratio ranges
(the feasibility question behind Figs. 6/7).  This package provides them
as first-class library calls so downstream users don't rebuild sweep loops
around the compressors.
"""

from repro.analysis.export import (
    write_csv,
    write_rate_distortion_csv,
    write_ratio_curve_csv,
)
from repro.analysis.sweeps import (
    RateDistortionPoint,
    default_bound_sweep,
    feasible_ratio_range,
    rate_distortion_curve,
    ratio_curve,
)

__all__ = [
    "RateDistortionPoint",
    "default_bound_sweep",
    "feasible_ratio_range",
    "rate_distortion_curve",
    "ratio_curve",
    "write_csv",
    "write_rate_distortion_csv",
    "write_ratio_curve_csv",
]
