"""Analysis helpers: ratio/quality sweeps, feasibility probing, and lint.

The paper's evaluation revolves around three curve families — ratio vs
bound (Figs. 3/4), rate distortion (Figs. 1/9) and achievable-ratio ranges
(the feasibility question behind Figs. 6/7).  This package provides them
as first-class library calls so downstream users don't rebuild sweep loops
around the compressors.

It also hosts the ``repro check`` static-analysis suite
(:mod:`repro.analysis.engine` plus the checker modules ``locks``,
``clocks``, ``wire``, ``banned``) — dependency-free ``ast``-based lint
for the service tier's concurrency, clock, and wire-protocol
conventions.  See ``docs/STATIC_ANALYSIS.md``.
"""

from repro.analysis.engine import (
    CheckReport,
    Finding,
    checker,
    rule_catalogue,
    run_checks,
)
from repro.analysis.export import (
    write_csv,
    write_rate_distortion_csv,
    write_ratio_curve_csv,
)
from repro.analysis.sweeps import (
    RateDistortionPoint,
    default_bound_sweep,
    feasible_ratio_range,
    rate_distortion_curve,
    ratio_curve,
)

__all__ = [
    "RateDistortionPoint",
    "default_bound_sweep",
    "feasible_ratio_range",
    "rate_distortion_curve",
    "ratio_curve",
    "write_csv",
    "write_rate_distortion_csv",
    "write_ratio_curve_csv",
    "CheckReport",
    "Finding",
    "checker",
    "rule_catalogue",
    "run_checks",
]
