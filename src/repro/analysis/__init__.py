"""Analysis helpers: ratio/quality sweeps, feasibility probing, and lint.

The paper's evaluation revolves around three curve families — ratio vs
bound (Figs. 3/4), rate distortion (Figs. 1/9) and achievable-ratio ranges
(the feasibility question behind Figs. 6/7).  This package provides them
as first-class library calls so downstream users don't rebuild sweep loops
around the compressors.

It also hosts the ``repro check`` static-analysis suite
(:mod:`repro.analysis.engine` plus the checker modules ``locks``,
``clocks``, ``wire``, ``banned``) — dependency-free ``ast``-based lint
for the service tier's concurrency, clock, and wire-protocol
conventions.  See ``docs/STATIC_ANALYSIS.md``.
"""

# Lazy re-exports (PEP 562): the sweep/export helpers import the cache
# and optimizer stacks, whose guarded classes in turn may import the
# runtime sanitizer subpackage from *this* package when REPRO_SANITIZE
# is set.  Resolving attributes on demand keeps that import acyclic and
# keeps `import repro.analysis.sanitizer` cheap.
_EXPORTS = {
    "CheckReport": "repro.analysis.engine",
    "Finding": "repro.analysis.engine",
    "checker": "repro.analysis.engine",
    "rule_catalogue": "repro.analysis.engine",
    "run_checks": "repro.analysis.engine",
    "write_csv": "repro.analysis.export",
    "write_rate_distortion_csv": "repro.analysis.export",
    "write_ratio_curve_csv": "repro.analysis.export",
    "RateDistortionPoint": "repro.analysis.sweeps",
    "default_bound_sweep": "repro.analysis.sweeps",
    "feasible_ratio_range": "repro.analysis.sweeps",
    "rate_distortion_curve": "repro.analysis.sweeps",
    "ratio_curve": "repro.analysis.sweeps",
}


def __getattr__(name):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "RateDistortionPoint",
    "default_bound_sweep",
    "feasible_ratio_range",
    "rate_distortion_curve",
    "ratio_curve",
    "write_csv",
    "write_rate_distortion_csv",
    "write_ratio_curve_csv",
    "CheckReport",
    "Finding",
    "checker",
    "rule_catalogue",
    "run_checks",
]
