"""``repro check`` — dependency-free, ``ast``-based static analysis.

The service tier's correctness rests on three hand-maintained
conventions: lock discipline in the threaded modules, the monotonic
clock convention (``*_mono``), and three synchronized copies of the wire
protocol (node server, gateway, client).  This engine makes those
conventions machine-checked at lint time.

Architecture
------------
* **Checkers** register themselves via :func:`checker` with a *scope*:

  - ``"file"`` checkers see one :class:`ParsedFile` at a time and are
    cached per file, keyed by content hash;
  - ``"project"`` checkers see the whole :class:`Project` (cross-file
    facts: lock-acquisition graph, wire-protocol agreement) and always
    run.

* **Suppressions**: a ``# repro: ignore[RULE]`` comment on the flagged
  line silences that rule there (``# repro: ignore`` silences all).
* **Baseline**: a committed JSON file of accepted findings keyed by
  ``rule:path:message`` (line numbers excluded, so pure code motion does
  not churn it).  ``--strict`` fails on any *new* finding and on stale
  baseline entries that no longer fire.

Importing :mod:`repro.analysis.checkers` registers the built-in suite;
see ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and how to add a
checker.
"""

from __future__ import annotations

import argparse
import ast
import hashlib
import json
import os
import re
import sys
from dataclasses import dataclass
from typing import Callable, Iterable

__all__ = [
    "Finding",
    "ParsedFile",
    "Project",
    "CheckReport",
    "checker",
    "registered_checkers",
    "rule_catalogue",
    "run_checks",
    "main",
]

#: Bump to invalidate every per-file cache entry on engine changes.
ENGINE_VERSION = 1

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")

DEFAULT_BASELINE = os.path.join("tools", "check_baseline.json")
DEFAULT_CACHE = ".repro_check_cache.json"


# ---------------------------------------------------------------------------
# findings


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violated at a location."""

    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    col: int
    message: str

    @property
    def key(self) -> str:
        """Baseline identity — deliberately excludes line/col so moving
        code around does not invalidate a committed baseline."""
        return f"{self.rule}:{self.path}:{self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload["line"]),
            col=int(payload["col"]),
            message=str(payload["message"]),
        )


# ---------------------------------------------------------------------------
# parsed files / project


class ParsedFile:
    """One source file: text, AST, content hash, and suppression map."""

    def __init__(self, root: str, abspath: str) -> None:
        self.abspath = abspath
        rel = os.path.relpath(abspath, root)
        self.path = rel.replace(os.sep, "/")
        with open(abspath, "r", encoding="utf-8") as fh:
            self.source = fh.read()
        self.lines = self.source.splitlines()
        self.sha = hashlib.sha256(self.source.encode("utf-8")).hexdigest()
        self.syntax_error: SyntaxError | None = None
        try:
            self.tree: ast.Module = ast.parse(self.source, filename=self.path)
        except SyntaxError as exc:
            self.syntax_error = exc
            self.tree = ast.Module(body=[], type_ignores=[])
        #: line -> None (ignore all rules) or a set of rule ids.
        self.suppressions: dict[int, set[str] | None] = {}
        for lineno, text in enumerate(self.lines, start=1):
            if "#" not in text:
                continue
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                self.suppressions[lineno] = None
            else:
                ids = {r.strip() for r in rules.split(",") if r.strip()}
                self.suppressions[lineno] = ids

    def suppressed(self, finding: Finding) -> bool:
        if finding.line not in self.suppressions:
            return False
        rules = self.suppressions[finding.line]
        return rules is None or finding.rule in rules

    def finding(self, rule: str, node: ast.AST | None, message: str,
                line: int | None = None, col: int | None = None) -> Finding:
        """Build a finding anchored at ``node`` (or explicit line/col)."""
        if node is not None:
            line = getattr(node, "lineno", line or 1)
            col = getattr(node, "col_offset", col or 0)
        return Finding(rule=rule, path=self.path, line=line or 1,
                       col=col or 0, message=message)


class Project:
    """All files under check, with suffix lookup for role-based checkers."""

    def __init__(self, root: str, files: list[ParsedFile]) -> None:
        self.root = root
        self.files = files
        self._by_path = {pf.path: pf for pf in files}

    def find(self, suffix: str) -> ParsedFile | None:
        """The unique file whose repo-relative path ends with ``suffix``."""
        matches = [pf for pf in self.files if pf.path.endswith(suffix)]
        return matches[0] if len(matches) == 1 else None

    def get(self, path: str) -> ParsedFile | None:
        return self._by_path.get(path)


# ---------------------------------------------------------------------------
# checker registry


@dataclass(frozen=True)
class Checker:
    name: str
    scope: str  # "file" | "project"
    rules: dict  # rule id -> one-line description
    version: int
    fn: Callable
    examples: dict  # rule id -> (violating snippet, clean snippet)


_CHECKERS: dict[str, Checker] = {}


def checker(name: str, *, scope: str, rules: dict, version: int = 1,
            examples: dict | None = None):
    """Register a checker.

    ``scope="file"``: ``fn(pf: ParsedFile) -> list[Finding]`` — results
    are cached per file by content hash.
    ``scope="project"``: ``fn(project: Project) -> list[Finding]`` —
    always runs (cross-file facts cannot be cached per file).
    ``examples`` maps each rule id to a ``(violating, clean)`` snippet
    pair shown by ``repro check --explain RULE``; examples are docs, not
    behaviour, so they do not participate in the cache fingerprint.
    """
    if scope not in ("file", "project"):
        raise ValueError(f"scope must be 'file' or 'project', got {scope!r}")

    def register(fn):
        _CHECKERS[name] = Checker(name=name, scope=scope, rules=dict(rules),
                                  version=version, fn=fn,
                                  examples=dict(examples or {}))
        return fn

    return register


def registered_checkers() -> dict[str, Checker]:
    _load_builtin_checkers()
    return dict(_CHECKERS)


def rule_catalogue() -> dict[str, str]:
    """rule id -> description, across every registered checker."""
    out: dict[str, str] = {}
    for chk in registered_checkers().values():
        out.update(chk.rules)
    return dict(sorted(out.items()))


def rule_examples() -> dict[str, tuple[str, str]]:
    """rule id -> (violating, clean) snippet pair, where provided."""
    out: dict[str, tuple[str, str]] = {}
    for chk in registered_checkers().values():
        for rule, pair in chk.examples.items():
            out[rule] = (str(pair[0]), str(pair[1]))
    return dict(sorted(out.items()))


def _load_builtin_checkers() -> None:
    # Import for side effect: each module registers via @checker.
    from repro.analysis import (  # noqa: F401
        banned,
        clocks,
        exceptions,
        exports,
        locks,
        resources,
        wire,
    )
    from repro.analysis.sanitizer import check  # noqa: F401


# ---------------------------------------------------------------------------
# cache


def _checker_fingerprint(checkers: Iterable[Checker]) -> str:
    parts = sorted(f"{c.name}={c.version}" for c in checkers)
    blob = f"engine={ENGINE_VERSION};" + ";".join(parts)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _load_cache(path: str, fingerprint: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return {}
    if not isinstance(payload, dict) or payload.get("fingerprint") != fingerprint:
        return {}
    files = payload.get("files")
    return files if isinstance(files, dict) else {}


def _write_cache(path: str, fingerprint: str, files: dict) -> None:
    payload = {"fingerprint": fingerprint, "files": files}
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
    except OSError:  # read-only checkout: caching is best-effort  # repro: ignore[EXC002]
        pass


# ---------------------------------------------------------------------------
# baseline


def load_baseline(path: str) -> set[str]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError:
        return set()
    entries = payload.get("findings", []) if isinstance(payload, dict) else []
    return {str(e) for e in entries}


def write_baseline(path: str, findings: list[Finding]) -> None:
    payload = {
        "comment": "Accepted repro-check findings; keys are rule:path:message. "
                   "Regenerate with `repro check --write-baseline`.",
        "findings": sorted({f.key for f in findings}),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


# ---------------------------------------------------------------------------
# runner


@dataclass
class CheckReport:
    """Outcome of one ``run_checks`` invocation."""

    findings: list[Finding]
    new: list[Finding]
    baselined: list[Finding]
    stale_baseline: list[str]
    files_checked: int
    cache_hits: int

    @property
    def counts_by_rule(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))

    def to_dict(self) -> dict:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "new": [f.to_dict() for f in self.new],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": sorted(self.stale_baseline),
            "files_checked": self.files_checked,
            "cache_hits": self.cache_hits,
            "counts_by_rule": self.counts_by_rule,
        }


def default_root() -> str:
    """The repo root: ``src/repro/analysis/engine.py`` -> three levels up."""
    here = os.path.abspath(__file__)
    return os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(here))))


def discover_files(paths: list[str]) -> list[str]:
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                out.append(os.path.abspath(path))
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for name in sorted(filenames):
                if name.endswith(".py"):
                    out.append(os.path.abspath(os.path.join(dirpath, name)))
    return sorted(set(out))


def run_checks(
    paths: list[str] | None = None,
    *,
    root: str | None = None,
    baseline: set[str] | None = None,
    use_cache: bool = True,
    cache_path: str | None = None,
) -> CheckReport:
    """Run every registered checker over ``paths`` (default: src/repro)."""
    root = os.path.abspath(root or default_root())
    if paths is None:
        paths = [os.path.join(root, "src", "repro")]
    checkers = registered_checkers()
    file_checkers = [c for c in checkers.values() if c.scope == "file"]
    project_checkers = [c for c in checkers.values() if c.scope == "project"]

    files = [ParsedFile(root, p) for p in discover_files(paths)]
    project = Project(root, files)

    fingerprint = _checker_fingerprint(checkers.values())
    cache_path = cache_path or os.path.join(root, DEFAULT_CACHE)
    cached = _load_cache(cache_path, fingerprint) if use_cache else {}
    next_cache: dict[str, dict] = {}

    findings: list[Finding] = []
    cache_hits = 0
    for pf in files:
        if pf.syntax_error is not None:
            exc = pf.syntax_error
            findings.append(Finding(
                rule="PARSE001", path=pf.path, line=exc.lineno or 1,
                col=(exc.offset or 1) - 1, message=f"syntax error: {exc.msg}"))
            continue
        entry = cached.get(pf.path)
        if entry and entry.get("sha") == pf.sha:
            cache_hits += 1
            file_findings = [Finding.from_dict(d) for d in entry["findings"]]
        else:
            file_findings = []
            for chk in file_checkers:
                file_findings.extend(chk.fn(pf))
        next_cache[pf.path] = {
            "sha": pf.sha,
            "findings": [f.to_dict() for f in file_findings],
        }
        findings.extend(file_findings)

    for chk in project_checkers:
        findings.extend(chk.fn(project))

    # Suppressions apply after collection so cached entries stay raw.
    kept: list[Finding] = []
    for f in findings:
        pf = project.get(f.path)
        if pf is not None and pf.suppressed(f):
            continue
        kept.append(f)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    if use_cache:
        _write_cache(cache_path, fingerprint, next_cache)

    baseline = baseline or set()
    new = [f for f in kept if f.key not in baseline]
    baselined = [f for f in kept if f.key in baseline]
    seen_keys = {f.key for f in kept}
    stale = [k for k in sorted(baseline) if k not in seen_keys]
    return CheckReport(findings=kept, new=new, baselined=baselined,
                       stale_baseline=stale, files_checked=len(files),
                       cache_hits=cache_hits)


# ---------------------------------------------------------------------------
# output


def format_human(report: CheckReport, project_root: str,
                 *, strict: bool) -> str:
    out: list[str] = []
    for f in report.new:
        out.append(f"{f.path}:{f.line}:{f.col + 1}: {f.rule} {f.message}")
        src = _source_line(project_root, f)
        if src is not None:
            out.append(f"  {f.line:>5} | {src.rstrip()}")
            out.append(f"  {'':>5} | {' ' * f.col}^")
    if report.baselined:
        out.append(f"note: {len(report.baselined)} baselined finding(s) suppressed"
                   " (see tools/check_baseline.json)")
    for key in report.stale_baseline:
        prefix = "error" if strict else "note"
        out.append(f"{prefix}: stale baseline entry no longer fires: {key}")
    status = "clean" if not report.new else f"{len(report.new)} new finding(s)"
    out.append(
        f"repro check: {status} — {report.files_checked} file(s), "
        f"{len(report.findings)} total finding(s), "
        f"{report.cache_hits} cache hit(s)")
    return "\n".join(out)


def _source_line(root: str, f: Finding) -> str | None:
    try:
        with open(os.path.join(root, f.path), "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        return lines[f.line - 1]
    except (OSError, IndexError):
        return None


# ---------------------------------------------------------------------------
# CLI


def build_check_parser(parser: argparse.ArgumentParser | None = None,
                       ) -> argparse.ArgumentParser:
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro check",
            description="Static analysis: lock discipline, clock convention, "
                        "wire-protocol drift, banned patterns.")
    parser.add_argument("paths", nargs="*",
                        help="files/directories to check (default: src/repro)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: auto-detected)")
    parser.add_argument("--strict", action="store_true",
                        help="also fail on stale baseline entries")
    parser.add_argument("--format", choices=("human", "json"), default="human",
                        help="output format (default: human)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: {DEFAULT_BASELINE})")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept current findings into the baseline and exit 0")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline in place: keep only entries "
                             "that still fire (sorted, stable); new findings "
                             "are NOT accepted and still fail the run")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the per-file result cache")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--explain", metavar="RULE", default=None,
                        help="print one rule's catalogue entry plus a minimal "
                             "violating and clean example, then exit")
    return parser


def explain_rule(rule: str) -> tuple[str, int]:
    """The ``--explain RULE`` text and exit code."""
    catalogue = rule_catalogue()
    if rule not in catalogue:
        known = ", ".join(catalogue)
        return f"unknown rule {rule!r}; known rules: {known}", 1
    out = [f"{rule}  {catalogue[rule]}"]
    pair = rule_examples().get(rule)
    if pair is not None:
        bad, good = pair
        out.append("")
        out.append("violates:")
        out.extend(f"    {line}" for line in bad.strip("\n").splitlines())
        out.append("clean:")
        out.extend(f"    {line}" for line in good.strip("\n").splitlines())
    return "\n".join(out), 0


def run_from_args(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule, description in rule_catalogue().items():
            print(f"{rule}  {description}")
        return 0
    if args.explain is not None:
        text, code = explain_rule(args.explain)
        print(text)
        return code
    root = os.path.abspath(args.root or default_root())
    baseline_path = args.baseline or os.path.join(root, DEFAULT_BASELINE)
    paths = [os.path.abspath(p) for p in args.paths] or None
    baseline = load_baseline(baseline_path)
    report = run_checks(paths, root=root, baseline=baseline,
                        use_cache=not args.no_cache)
    if args.write_baseline:
        write_baseline(baseline_path, report.findings)
        print(f"wrote {len(report.findings)} finding(s) to {baseline_path}")
        return 0
    if args.update_baseline:
        stale = set(report.stale_baseline)
        kept = [f for f in report.findings if f.key in baseline]
        write_baseline(baseline_path, kept)
        print(f"baseline rewritten: {len({f.key for f in kept})} entr(ies) "
              f"kept, {len(stale)} stale pruned")
        # fall through: new findings still fail the run below
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_human(report, root, strict=args.strict))
    if report.new:
        return 1
    if args.strict and report.stale_baseline and not args.update_baseline:
        return 1  # --update-baseline just pruned the stale entries
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_check_parser().parse_args(argv if argv is not None else sys.argv[1:])
    return run_from_args(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
