"""Lock-discipline checkers: guarded attributes and lock ordering.

Reads the :func:`repro.util.concurrency.guarded_by` declarations off
class decorators (from the AST — nothing is imported) and enforces:

``LOCK001`` (file scope)
    Every read/write of a guarded attribute (``self.<field>``) happens
    while the declared lock is held — inside ``with self.<lock>:`` — or
    inside a ``*_locked`` method, whose name promises the caller holds
    the lock.  Calling a ``*_locked`` method of ``self`` *without*
    holding any class lock is flagged too.  ``__init__``, ``__del__``
    and ``__setstate__`` are exempt: the object is not shared yet (or
    no longer).  Nested functions and lambdas are analyzed as if no
    lock were held — they typically run later, on another thread
    (metrics callbacks); suppress deliberate torn reads with
    ``# repro: ignore[LOCK001]``.

``LOCK002`` (project scope)
    Builds the cross-class lock-acquisition graph and rejects ordering
    cycles (static deadlock detection).  An edge ``A.l1 -> B.l2`` is
    recorded when, with ``l1`` held, code may reach an acquisition of
    ``l2`` — directly (a second ``with self.<lock>:``), through a call
    on a typed attribute (``self.x.m()``), through a same-class helper
    (``self.m()``), through an *unguarded* intermediate class, or
    through a chained call whose return annotation names a guarded
    class (``self.family.labels(...).observe(...)``).  Method
    acquisition sets are closed transitively (fixpoint), so locks taken
    deep inside a call chain still produce the edge the runtime
    sanitizer would observe from the top of its held stack.

    Attribute types are inferred from constructor assignments
    (``self.x = ClassName(...)``, including inside conditional
    expressions), from ``AnnAssign`` annotations
    (``self._cache: EvalCache | None = ...``), from annotated
    ``__init__`` parameters assigned to ``self``, and from return
    annotations of (name-keyed) methods.  The observed runtime graph
    (``SAN001``, see the sanitizer docs) is checked to be a subset of
    this static graph, so the approximations cannot silently rot.

Known approximations (documented in ``docs/STATIC_ANALYSIS.md``):
acquisition is only seen through literal ``with self.<lock>:`` blocks;
classes and methods are keyed by name; locals are untyped.  These fit
this codebase's conventions — the point is catching regressions in
real discipline, not solving aliasing in general.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.engine import Finding, ParsedFile, Project, checker

__all__ = ["collect_lock_edges"]

RULES = {
    "LOCK001": "guarded attribute accessed without holding its declared lock",
    "LOCK002": "lock-acquisition ordering cycle (potential deadlock)",
}

#: Methods where the instance is not yet (or no longer) shared.
EXEMPT_METHODS = {"__init__", "__del__", "__setstate__"}


def _decorated_guards(cls: ast.ClassDef) -> tuple[dict[str, str], list[str]]:
    """``guarded_by`` declarations on a class: (field -> lock, lock order)."""
    guards: dict[str, str] = {}
    locks: list[str] = []
    for dec in cls.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        fn = dec.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None)
        if name != "guarded_by" or not dec.args:
            continue
        if not all(isinstance(a, ast.Constant) and isinstance(a.value, str)
                   for a in dec.args):
            continue
        lock = dec.args[0].value
        if lock not in locks:
            locks.append(lock)
        for arg in dec.args[1:]:
            guards[arg.value] = lock
    return guards, locks


def _self_attr(node: ast.AST) -> str | None:
    """``self.<attr>`` -> attr name, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _methods(cls: ast.ClassDef):
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


@dataclass
class _ClassInfo:
    """Everything the checkers need to know about one guarded class."""

    name: str
    path: str
    node: ast.ClassDef
    guards: dict[str, str]       # field -> lock
    locks: list[str]             # declared lock attribute names


def _collect_guarded_classes(pf: ParsedFile) -> list[_ClassInfo]:
    out = []
    for node in ast.walk(pf.tree):
        if isinstance(node, ast.ClassDef):
            guards, locks = _decorated_guards(node)
            if locks:
                out.append(_ClassInfo(name=node.name, path=pf.path,
                                      node=node, guards=guards, locks=locks))
    return out


def _with_locks(node: ast.With, lock_names: set[str]) -> set[str]:
    """Class locks acquired by one ``with`` statement."""
    taken = set()
    for item in node.items:
        attr = _self_attr(item.context_expr)
        if attr is not None and attr in lock_names:
            taken.add(attr)
    return taken


# ---------------------------------------------------------------------------
# LOCK001: guarded-attribute discipline (file scope)


class _DisciplineVisitor:
    """Walks one method body tracking which class locks are held."""

    def __init__(self, pf: ParsedFile, info: _ClassInfo) -> None:
        self.pf = pf
        self.info = info
        self.lock_names = set(info.locks)
        self.findings: list[Finding] = []

    def scan(self, node: ast.AST, held: frozenset) -> None:
        if isinstance(node, ast.With):
            for item in node.items:
                self.scan(item.context_expr, held)
            inner = held | _with_locks(node, self.lock_names)
            for stmt in node.body:
                self.scan(stmt, frozenset(inner))
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Nested callables (metrics callbacks, worker thunks) run
            # later, possibly on another thread: assume nothing is held.
            body = node.body if isinstance(node.body, list) else [node.body]
            for stmt in body:
                self.scan(stmt, frozenset())
            return
        attr = _self_attr(node)
        if attr is not None:
            lock = self.info.guards.get(attr)
            if lock is not None and lock not in held:
                self.findings.append(self.pf.finding(
                    "LOCK001", node,
                    f"{self.info.name}.{attr} is guarded by "
                    f"{self.info.name}.{lock} but accessed without it"))
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and _self_attr(node.func) is not None
                and node.func.attr.endswith("_locked")
                and not held):
            self.findings.append(self.pf.finding(
                "LOCK001", node,
                f"{self.info.name}.{node.func.attr}() requires a held lock "
                f"(\"_locked\" convention) but none of "
                f"{sorted(self.lock_names)} is held"))
        for child in ast.iter_child_nodes(node):
            self.scan(child, held)


EXAMPLES = {
    "LOCK001": ('@guarded_by("_lock", "_jobs")\nclass S:\n    def get(self, k):\n        return self._jobs.get(k)',
                '@guarded_by("_lock", "_jobs")\nclass S:\n    def get(self, k):\n        with self._lock:\n            return self._jobs.get(k)'),
    "LOCK002": ("# thread A: A._lock -> B._lock   (A.ping calls b.pong)\n"
                "# thread B: B._lock -> A._lock   (B.pong calls a.ping)",
                "# acquire the two locks in one global order, or drop the\n"
                "# nested call out of the locked region"),
}


@checker("lock-discipline", scope="file", rules={"LOCK001": RULES["LOCK001"]},
         examples={"LOCK001": EXAMPLES["LOCK001"]})
def check_lock_discipline(pf: ParsedFile) -> list[Finding]:
    findings: list[Finding] = []
    for info in _collect_guarded_classes(pf):
        for method in _methods(info.node):
            if method.name in EXEMPT_METHODS or method.name.endswith("_locked"):
                continue
            visitor = _DisciplineVisitor(pf, info)
            for stmt in method.body:
                visitor.scan(stmt, frozenset())
            findings.extend(visitor.findings)
    return findings


# ---------------------------------------------------------------------------
# LOCK002: cross-class lock-acquisition graph (project scope)


@dataclass(frozen=True)
class _Edge:
    src: str   # "Class.lock"
    dst: str
    path: str
    line: int
    col: int


def _annotation_classes(node: ast.expr | None, universe: set[str]) -> set[str]:
    """Class names a type annotation may denote (unions, Optional, ...)."""
    if node is None:
        return set()
    if isinstance(node, ast.Name):
        return {node.id} & universe
    if isinstance(node, ast.Attribute):
        return {node.attr} & universe
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return (_annotation_classes(node.left, universe)
                | _annotation_classes(node.right, universe))
    if isinstance(node, ast.Subscript):  # Optional[X], list[X]: take inner
        return _annotation_classes(node.slice, universe)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:  # string annotation: "EvalCache | None"
            return _annotation_classes(
                ast.parse(node.value, mode="eval").body, universe)
        except SyntaxError:
            return set()
    return set()


@dataclass
class _TypeInfo:
    """Name-keyed type facts for one class (guarded or not)."""

    name: str
    node: ast.ClassDef
    #: attr -> possible class names.
    attr_types: dict[str, set[str]] = field(default_factory=dict)
    #: method name -> method node.
    methods: dict[str, ast.AST] = field(default_factory=dict)


class _Universe:
    """Every class in the project + name-keyed inference tables."""

    def __init__(self, project: Project) -> None:
        self.types: dict[str, _TypeInfo] = {}
        self.owners: dict[str, ParsedFile] = {}
        for pf in project.files:
            for node in ast.walk(pf.tree):
                if isinstance(node, ast.ClassDef) and node.name not in self.types:
                    info = _TypeInfo(name=node.name, node=node)
                    for method in _methods(node):
                        info.methods.setdefault(method.name, method)
                    self.types[node.name] = info
                    self.owners[node.name] = pf
        names = set(self.types)
        #: method name -> class names its return annotation may denote.
        self.method_returns: dict[str, set[str]] = {}
        for info in self.types.values():
            for mname, method in info.methods.items():
                returned = _annotation_classes(
                    getattr(method, "returns", None), names)
                if returned:
                    self.method_returns.setdefault(mname, set()).update(returned)
        for info in self.types.values():
            self._infer_attr_types(info, names)

    def _value_classes(self, value: ast.expr, names: set[str],
                       param_ann: dict[str, set[str]]) -> set[str]:
        """Class names an assigned expression may produce."""
        if isinstance(value, ast.Call):
            fn = value.func
            if isinstance(fn, ast.Name) and fn.id in names:
                return {fn.id}
            if isinstance(fn, ast.Attribute):
                if fn.attr in names:
                    return {fn.attr}
                return set(self.method_returns.get(fn.attr, ()))
            return set()
        if isinstance(value, ast.Name):
            return param_ann.get(value.id, set())
        if isinstance(value, ast.IfExp):
            return (self._value_classes(value.body, names, param_ann)
                    | self._value_classes(value.orelse, names, param_ann))
        if isinstance(value, ast.BoolOp):
            out: set[str] = set()
            for operand in value.values:
                out |= self._value_classes(operand, names, param_ann)
            return out
        return set()

    def _infer_attr_types(self, info: _TypeInfo, names: set[str]) -> None:
        for method in info.methods.values():
            args = getattr(method, "args", None)
            param_ann: dict[str, set[str]] = {}
            if args is not None:
                for arg in (list(args.posonlyargs) + list(args.args)
                            + list(args.kwonlyargs)):
                    classes = _annotation_classes(arg.annotation, names)
                    if classes:
                        param_ann[arg.arg] = classes
            for node in ast.walk(method):
                if isinstance(node, ast.AnnAssign):
                    attr = _self_attr(node.target)
                    if attr is not None:
                        classes = _annotation_classes(node.annotation, names)
                        if classes:
                            info.attr_types.setdefault(attr, set()).update(classes)
                elif isinstance(node, ast.Assign) and node.value is not None:
                    classes = self._value_classes(node.value, names, param_ann)
                    if not classes:
                        continue
                    for target in node.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            info.attr_types.setdefault(attr, set()).update(classes)

    # -- receiver resolution ---------------------------------------------
    def receiver_classes(self, cls: str, expr: ast.expr) -> set[str]:
        """Possible classes of the receiver expression in class ``cls``."""
        if isinstance(expr, ast.Name):
            return {cls} if expr.id == "self" else set()
        if isinstance(expr, ast.Attribute):
            bases = self.receiver_classes(cls, expr.value)
            out: set[str] = set()
            for base in bases:
                info = self.types.get(base)
                if info is not None:
                    out |= info.attr_types.get(expr.attr, set())
            return out
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            return set(self.method_returns.get(expr.func.attr, ()))
        return set()

    def call_targets(self, cls: str, call: ast.Call) -> set[tuple[str, str]]:
        """(class, method) pairs one call may dispatch to, from ``cls``."""
        fn = call.func
        if not isinstance(fn, ast.Attribute):
            if isinstance(fn, ast.Name) and fn.id in self.types:
                return {(fn.id, "__init__")}
            return set()
        out = set()
        for rcls in self.receiver_classes(cls, fn.value):
            info = self.types.get(rcls)
            if info is not None and fn.attr in info.methods:
                out.add((rcls, fn.attr))
        return out


def _effective_acquires(universe: _Universe,
                        guarded: dict[str, _ClassInfo],
                        ) -> dict[tuple[str, str], set[str]]:
    """Fixpoint: qualified locks each (class, method) may acquire.

    Direct ``with self.<lock>:`` acquisitions plus, transitively, those
    of every method a call may reach — through typed attributes,
    same-class helpers, unguarded intermediates, and chained calls.
    Nested functions/lambdas are excluded (they run later, elsewhere).
    """
    direct: dict[tuple[str, str], set[str]] = {}
    calls: dict[tuple[str, str], set[tuple[str, str]]] = {}
    for cname, tinfo in universe.types.items():
        locks = set(guarded[cname].locks) if cname in guarded else set()
        for mname, method in tinfo.methods.items():
            key = (cname, mname)
            direct[key] = {f"{cname}.{lock}"
                           for lock in _acquired_locks_shallow(method, locks)}
            out: set[tuple[str, str]] = set()
            for node in _walk_shallow(method):
                if isinstance(node, ast.Call):
                    out |= universe.call_targets(cname, node)
            calls[key] = out

    eff = {key: set(val) for key, val in direct.items()}
    changed = True
    while changed:
        changed = False
        for key, targets in calls.items():
            acc = eff[key]
            before = len(acc)
            for target in targets:
                acc |= eff.get(target, set())
            if len(acc) != before:
                changed = True
    return eff


def _walk_shallow(method: ast.AST):
    """Walk a method body without descending into nested callables."""
    stack = list(ast.iter_child_nodes(method))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _acquired_locks_shallow(method: ast.AST, lock_names: set[str]) -> set[str]:
    out: set[str] = set()
    for node in _walk_shallow(method):
        if isinstance(node, ast.With):
            out |= _with_locks(node, lock_names)
    return out


class _EdgeCollector:
    """Records lock-order edges from one method of one guarded class."""

    def __init__(self, pf: ParsedFile, info: _ClassInfo,
                 universe: _Universe,
                 eff: dict[tuple[str, str], set[str]],
                 edges: list[_Edge]) -> None:
        self.pf = pf
        self.info = info
        self.universe = universe
        self.eff = eff
        self.edges = edges
        self.lock_names = set(info.locks)

    def scan(self, node: ast.AST, held: tuple) -> None:
        if isinstance(node, ast.With):
            for item in node.items:
                self.scan(item.context_expr, held)
            taken = _with_locks(node, self.lock_names)
            inner = held
            for lock in sorted(taken):
                name = f"{self.info.name}.{lock}"
                if name in inner:  # re-entrant (RLock): not an ordering edge
                    continue
                if inner:
                    self._edge(inner[-1], name, node)
                inner = inner + (name,)
            for stmt in node.body:
                self.scan(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            body = node.body if isinstance(node.body, list) else [node.body]
            for stmt in body:
                self.scan(stmt, ())
            return
        if held and isinstance(node, ast.Call):
            for target in self.universe.call_targets(self.info.name, node):
                for lock in sorted(self.eff.get(target, ())):
                    if lock in held:
                        continue  # re-entrant through the chain
                    self._edge(held[-1], lock, node)
        for child in ast.iter_child_nodes(node):
            self.scan(child, held)

    def _edge(self, src: str, dst: str, node: ast.AST) -> None:
        if src == dst:  # re-entrant acquisition (RLock) is not an ordering edge
            return
        self.edges.append(_Edge(src=src, dst=dst, path=self.pf.path,
                                line=node.lineno, col=node.col_offset))


def _find_cycles(edges: list[_Edge]) -> list[list[_Edge]]:
    """Elementary cycles in the edge list (DFS; deduped by node set)."""
    graph: dict[str, list[_Edge]] = {}
    for e in edges:
        graph.setdefault(e.src, []).append(e)
    cycles: list[list[_Edge]] = []
    seen_cycles: set[frozenset] = set()

    def dfs(node: str, path: list[_Edge], on_path: dict[str, int]) -> None:
        for edge in graph.get(node, ()):
            if edge.dst in on_path:
                cycle = path[on_path[edge.dst]:] + [edge]
                key = frozenset(e.src for e in cycle)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append(cycle)
                continue
            on_path[edge.dst] = len(path) + 1
            dfs(edge.dst, path + [edge], on_path)
            del on_path[edge.dst]

    for start in sorted(graph):
        dfs(start, [], {start: 0})
    return cycles


def collect_lock_edges(project: Project) -> list[_Edge]:
    """The static lock-order edge list (the LOCK002 graph).

    Exposed for the ``SAN001`` checker, which verifies the *observed*
    runtime graph is a subset of this one.
    """
    classes: dict[str, _ClassInfo] = {}
    owners: dict[str, ParsedFile] = {}
    for pf in project.files:
        for info in _collect_guarded_classes(pf):
            classes[info.name] = info
            owners[info.name] = pf
    if not classes:
        return []
    universe = _Universe(project)
    eff = _effective_acquires(universe, classes)

    edges: list[_Edge] = []
    for info in classes.values():
        pf = owners[info.name]
        collector = _EdgeCollector(pf, info, universe, eff, edges)
        for method in _methods(info.node):
            for stmt in method.body:
                collector.scan(stmt, ())
    return edges


@checker("lock-order", scope="project", rules={"LOCK002": RULES["LOCK002"]},
         version=2, examples={"LOCK002": EXAMPLES["LOCK002"]})
def check_lock_order(project: Project) -> list[Finding]:
    edges = collect_lock_edges(project)
    findings: list[Finding] = []
    for cycle in _find_cycles(edges):
        chain = " -> ".join([cycle[0].src] + [e.dst for e in cycle])
        sites = ", ".join(f"{e.path}:{e.line}" for e in cycle)
        anchor = cycle[0]
        findings.append(Finding(
            rule="LOCK002", path=anchor.path, line=anchor.line,
            col=anchor.col,
            message=f"lock-order cycle {chain} (acquisition sites: {sites})"))
    return findings
