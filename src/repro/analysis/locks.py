"""Lock-discipline checkers: guarded attributes and lock ordering.

Reads the :func:`repro.util.concurrency.guarded_by` declarations off
class decorators (from the AST — nothing is imported) and enforces:

``LOCK001`` (file scope)
    Every read/write of a guarded attribute (``self.<field>``) happens
    while the declared lock is held — inside ``with self.<lock>:`` — or
    inside a ``*_locked`` method, whose name promises the caller holds
    the lock.  Calling a ``*_locked`` method of ``self`` *without*
    holding any class lock is flagged too.  ``__init__``, ``__del__``
    and ``__setstate__`` are exempt: the object is not shared yet (or
    no longer).  Nested functions and lambdas are analyzed as if no
    lock were held — they typically run later, on another thread
    (metrics callbacks); suppress deliberate torn reads with
    ``# repro: ignore[LOCK001]``.

``LOCK002`` (project scope)
    Builds the cross-class lock-acquisition graph and rejects ordering
    cycles (static deadlock detection).  An edge ``A.l1 -> B.l2`` is
    recorded when, with ``l1`` held, code calls a method on an
    attribute whose type (inferred from ``self.x = ClassName(...)``
    assignments) is a guarded class ``B`` and that method acquires
    ``l2`` — or when a second lock of the same class is taken while the
    first is held.

Known approximations (documented in ``docs/STATIC_ANALYSIS.md``):
attribute types are only inferred from direct constructor assignments;
acquisition is only seen through literal ``with self.<lock>:`` blocks;
classes are keyed by name.  These fit this codebase's conventions —
the point is catching regressions in real discipline, not solving
aliasing in general.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.engine import Finding, ParsedFile, Project, checker

__all__ = ["RULES"]

RULES = {
    "LOCK001": "guarded attribute accessed without holding its declared lock",
    "LOCK002": "lock-acquisition ordering cycle (potential deadlock)",
}

#: Methods where the instance is not yet (or no longer) shared.
EXEMPT_METHODS = {"__init__", "__del__", "__setstate__"}


def _decorated_guards(cls: ast.ClassDef) -> tuple[dict[str, str], list[str]]:
    """``guarded_by`` declarations on a class: (field -> lock, lock order)."""
    guards: dict[str, str] = {}
    locks: list[str] = []
    for dec in cls.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        fn = dec.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None)
        if name != "guarded_by" or not dec.args:
            continue
        if not all(isinstance(a, ast.Constant) and isinstance(a.value, str)
                   for a in dec.args):
            continue
        lock = dec.args[0].value
        if lock not in locks:
            locks.append(lock)
        for arg in dec.args[1:]:
            guards[arg.value] = lock
    return guards, locks


def _self_attr(node: ast.AST) -> str | None:
    """``self.<attr>`` -> attr name, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _methods(cls: ast.ClassDef):
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield stmt


@dataclass
class _ClassInfo:
    """Everything the checkers need to know about one guarded class."""

    name: str
    path: str
    node: ast.ClassDef
    guards: dict[str, str]       # field -> lock
    locks: list[str]             # declared lock attribute names
    #: method name -> set of class locks its body acquires via ``with``.
    acquires: dict[str, set[str]] = field(default_factory=dict)
    #: attribute name -> guarded class name (from ``self.x = Cls(...)``).
    attr_types: dict[str, str] = field(default_factory=dict)


def _collect_guarded_classes(pf: ParsedFile) -> list[_ClassInfo]:
    out = []
    for node in ast.walk(pf.tree):
        if isinstance(node, ast.ClassDef):
            guards, locks = _decorated_guards(node)
            if locks:
                out.append(_ClassInfo(name=node.name, path=pf.path,
                                      node=node, guards=guards, locks=locks))
    return out


def _with_locks(node: ast.With, lock_names: set[str]) -> set[str]:
    """Class locks acquired by one ``with`` statement."""
    taken = set()
    for item in node.items:
        attr = _self_attr(item.context_expr)
        if attr is not None and attr in lock_names:
            taken.add(attr)
    return taken


def _acquired_locks(method: ast.AST, lock_names: set[str]) -> set[str]:
    out: set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.With):
            out |= _with_locks(node, lock_names)
    return out


# ---------------------------------------------------------------------------
# LOCK001: guarded-attribute discipline (file scope)


class _DisciplineVisitor:
    """Walks one method body tracking which class locks are held."""

    def __init__(self, pf: ParsedFile, info: _ClassInfo) -> None:
        self.pf = pf
        self.info = info
        self.lock_names = set(info.locks)
        self.findings: list[Finding] = []

    def scan(self, node: ast.AST, held: frozenset) -> None:
        if isinstance(node, ast.With):
            for item in node.items:
                self.scan(item.context_expr, held)
            inner = held | _with_locks(node, self.lock_names)
            for stmt in node.body:
                self.scan(stmt, frozenset(inner))
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # Nested callables (metrics callbacks, worker thunks) run
            # later, possibly on another thread: assume nothing is held.
            body = node.body if isinstance(node.body, list) else [node.body]
            for stmt in body:
                self.scan(stmt, frozenset())
            return
        attr = _self_attr(node)
        if attr is not None:
            lock = self.info.guards.get(attr)
            if lock is not None and lock not in held:
                self.findings.append(self.pf.finding(
                    "LOCK001", node,
                    f"{self.info.name}.{attr} is guarded by "
                    f"{self.info.name}.{lock} but accessed without it"))
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and _self_attr(node.func) is not None
                and node.func.attr.endswith("_locked")
                and not held):
            self.findings.append(self.pf.finding(
                "LOCK001", node,
                f"{self.info.name}.{node.func.attr}() requires a held lock "
                f"(\"_locked\" convention) but none of "
                f"{sorted(self.lock_names)} is held"))
        for child in ast.iter_child_nodes(node):
            self.scan(child, held)


@checker("lock-discipline", scope="file", rules={"LOCK001": RULES["LOCK001"]})
def check_lock_discipline(pf: ParsedFile) -> list[Finding]:
    findings: list[Finding] = []
    for info in _collect_guarded_classes(pf):
        for method in _methods(info.node):
            if method.name in EXEMPT_METHODS or method.name.endswith("_locked"):
                continue
            visitor = _DisciplineVisitor(pf, info)
            for stmt in method.body:
                visitor.scan(stmt, frozenset())
            findings.extend(visitor.findings)
    return findings


# ---------------------------------------------------------------------------
# LOCK002: cross-class lock-acquisition graph (project scope)


@dataclass(frozen=True)
class _Edge:
    src: str   # "Class.lock"
    dst: str
    path: str
    line: int
    col: int


def _infer_attr_types(info: _ClassInfo, guarded_names: set[str]) -> None:
    """``self.x = GuardedClass(...)`` anywhere in the class body."""
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        fn = node.value.func
        cls_name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None)
        if cls_name not in guarded_names:
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                info.attr_types[attr] = cls_name


class _EdgeCollector:
    """Records lock-order edges from one method of one guarded class."""

    def __init__(self, pf: ParsedFile, info: _ClassInfo,
                 classes: dict[str, _ClassInfo], edges: list[_Edge]) -> None:
        self.pf = pf
        self.info = info
        self.classes = classes
        self.edges = edges
        self.lock_names = set(info.locks)

    def scan(self, node: ast.AST, held: tuple) -> None:
        if isinstance(node, ast.With):
            for item in node.items:
                self.scan(item.context_expr, held)
            taken = _with_locks(node, self.lock_names)
            inner = held
            for lock in sorted(taken):
                name = f"{self.info.name}.{lock}"
                if name in inner:  # re-entrant (RLock): not an ordering edge
                    continue
                if inner:
                    self._edge(inner[-1], name, node)
                inner = inner + (name,)
            for stmt in node.body:
                self.scan(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            body = node.body if isinstance(node.body, list) else [node.body]
            for stmt in body:
                self.scan(stmt, ())
            return
        if held and isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            target = node.func.value  # self.<attr> in self.<attr>.method(...)
            attr = _self_attr(target)
            if attr is not None:
                other_name = self.info.attr_types.get(attr)
                other = self.classes.get(other_name) if other_name else None
                if other is not None:
                    for lock in sorted(other.acquires.get(node.func.attr, ())):
                        self._edge(held[-1], f"{other.name}.{lock}", node)
        for child in ast.iter_child_nodes(node):
            self.scan(child, held)

    def _edge(self, src: str, dst: str, node: ast.AST) -> None:
        if src == dst:  # re-entrant acquisition (RLock) is not an ordering edge
            return
        self.edges.append(_Edge(src=src, dst=dst, path=self.pf.path,
                                line=node.lineno, col=node.col_offset))


def _find_cycles(edges: list[_Edge]) -> list[list[_Edge]]:
    """Elementary cycles in the edge list (DFS; deduped by node set)."""
    graph: dict[str, list[_Edge]] = {}
    for e in edges:
        graph.setdefault(e.src, []).append(e)
    cycles: list[list[_Edge]] = []
    seen_cycles: set[frozenset] = set()

    def dfs(node: str, path: list[_Edge], on_path: dict[str, int]) -> None:
        for edge in graph.get(node, ()):
            if edge.dst in on_path:
                cycle = path[on_path[edge.dst]:] + [edge]
                key = frozenset(e.src for e in cycle)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append(cycle)
                continue
            on_path[edge.dst] = len(path) + 1
            dfs(edge.dst, path + [edge], on_path)
            del on_path[edge.dst]

    for start in sorted(graph):
        dfs(start, [], {start: 0})
    return cycles


@checker("lock-order", scope="project", rules={"LOCK002": RULES["LOCK002"]})
def check_lock_order(project: Project) -> list[Finding]:
    classes: dict[str, _ClassInfo] = {}
    owners: dict[str, ParsedFile] = {}
    for pf in project.files:
        for info in _collect_guarded_classes(pf):
            classes[info.name] = info
            owners[info.name] = pf
    if not classes:
        return []
    guarded_names = set(classes)
    for info in classes.values():
        lock_names = set(info.locks)
        for method in _methods(info.node):
            info.acquires[method.name] = _acquired_locks(method, lock_names)
        _infer_attr_types(info, guarded_names)

    edges: list[_Edge] = []
    for info in classes.values():
        pf = owners[info.name]
        collector = _EdgeCollector(pf, info, classes, edges)
        for method in _methods(info.node):
            for stmt in method.body:
                collector.scan(stmt, ())

    findings: list[Finding] = []
    for cycle in _find_cycles(edges):
        chain = " -> ".join([cycle[0].src] + [e.dst for e in cycle])
        sites = ", ".join(f"{e.path}:{e.line}" for e in cycle)
        anchor = cycle[0]
        findings.append(Finding(
            rule="LOCK002", path=anchor.path, line=anchor.line,
            col=anchor.col,
            message=f"lock-order cycle {chain} (acquisition sites: {sites})"))
    return findings
