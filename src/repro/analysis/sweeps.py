"""Sweep utilities over a compressor's error-bound axis.

Sweeps are the most cache-friendly workload in the package: a Fig. 3/4
curve probes a fixed geometric grid, and the same grid points recur across
benchmark runs and alongside searches.  ``ratio_curve`` therefore accepts
an injected :class:`~repro.cache.EvalCache` and, with one attached, routes
cold probes through :meth:`~repro.cache.EvalCache.evaluate_many` — the
batched path that fans independent misses over an executor instead of a
serial loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.evalcache import EvalCache
from repro.metrics import max_abs_error, psnr, ssim
from repro.parallel.executor import BaseExecutor
from repro.pressio.compressor import Compressor

__all__ = [
    "default_bound_sweep",
    "ratio_curve",
    "rate_distortion_curve",
    "RateDistortionPoint",
    "feasible_ratio_range",
]


def default_bound_sweep(
    compressor: Compressor, data: np.ndarray, points: int = 24
) -> np.ndarray:
    """Geometric grid over the compressor's admissible bound range."""
    lo, hi = compressor.default_bound_range(np.asarray(data))
    lo = max(lo, hi * 1e-12)
    return np.geomspace(lo, hi, points)


def ratio_curve(
    compressor: Compressor,
    data: np.ndarray,
    bounds: np.ndarray | None = None,
    cache: EvalCache | None = None,
    executor: BaseExecutor | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(bounds, ratios)`` — the Fig. 3/4 curve for one field.

    With a ``cache``, previously-probed bounds are answered for free and
    the remaining misses are evaluated through ``executor`` as one batch
    (``executor`` is ignored without a cache — the serial loop is the
    reference path).
    """
    data = np.asarray(data)
    if bounds is None:
        bounds = default_bound_sweep(compressor, data)
    bounds = np.asarray(bounds, dtype=np.float64)
    if cache is not None:
        entries = cache.evaluate_many(compressor, data, bounds, executor=executor)
        return bounds, np.array([entry.ratio for entry in entries])
    ratios = np.array(
        [compressor.with_error_bound(float(e)).compress(data).ratio for e in bounds]
    )
    return bounds, ratios


@dataclass(frozen=True)
class RateDistortionPoint:
    """One point of a rate-distortion curve."""

    error_bound: float
    bit_rate: float
    ratio: float
    psnr: float
    max_error: float
    ssim: float


def rate_distortion_curve(
    compressor: Compressor,
    data: np.ndarray,
    bounds: np.ndarray | None = None,
    compute_ssim: bool = True,
) -> list[RateDistortionPoint]:
    """Rate-distortion points (Figs. 1/9), sorted by bit rate.

    Each probe costs a compression and a decompression.
    """
    data = np.asarray(data)
    if bounds is None:
        bounds = default_bound_sweep(compressor, data)
    points = []
    for e in np.asarray(bounds, dtype=np.float64):
        configured = compressor.with_error_bound(float(e))
        payload = configured.compress(data)
        recon = configured.decompress(payload)
        points.append(
            RateDistortionPoint(
                error_bound=float(e),
                bit_rate=8.0 * payload.nbytes / data.size,
                ratio=payload.ratio,
                psnr=psnr(data, recon),
                max_error=max_abs_error(data, recon),
                ssim=ssim(data, recon) if compute_ssim and data.ndim <= 3 else float("nan"),
            )
        )
    return sorted(points, key=lambda p: p.bit_rate)


def feasible_ratio_range(
    compressor: Compressor,
    data: np.ndarray,
    probes: int = 16,
    cache: EvalCache | None = None,
    executor: BaseExecutor | None = None,
) -> tuple[float, float]:
    """Approximate ``(min, max)`` achievable ratio over the bound range.

    This answers the Fig. 7 feasibility question cheaply before a full
    FRaZ search: targets outside the returned interval will hit the
    iteration cap.  The estimate is a sweep, so gaps *inside* the range
    (step-function compressors) are not detected — it bounds the feasible
    set, it does not enumerate it.
    """
    _, ratios = ratio_curve(
        compressor,
        data,
        default_bound_sweep(compressor, np.asarray(data), probes),
        cache=cache,
        executor=executor,
    )
    finite = ratios[np.isfinite(ratios)]
    if finite.size == 0:
        return (float("nan"), float("nan"))
    return (float(finite.min()), float(finite.max()))
