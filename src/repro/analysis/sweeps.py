"""Sweep utilities over a compressor's error-bound axis."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics import max_abs_error, psnr, ssim
from repro.pressio.compressor import Compressor

__all__ = [
    "default_bound_sweep",
    "ratio_curve",
    "rate_distortion_curve",
    "RateDistortionPoint",
    "feasible_ratio_range",
]


def default_bound_sweep(
    compressor: Compressor, data: np.ndarray, points: int = 24
) -> np.ndarray:
    """Geometric grid over the compressor's admissible bound range."""
    lo, hi = compressor.default_bound_range(np.asarray(data))
    lo = max(lo, hi * 1e-12)
    return np.geomspace(lo, hi, points)


def ratio_curve(
    compressor: Compressor, data: np.ndarray, bounds: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """``(bounds, ratios)`` — the Fig. 3/4 curve for one field."""
    data = np.asarray(data)
    if bounds is None:
        bounds = default_bound_sweep(compressor, data)
    bounds = np.asarray(bounds, dtype=np.float64)
    ratios = np.array(
        [compressor.with_error_bound(float(e)).compress(data).ratio for e in bounds]
    )
    return bounds, ratios


@dataclass(frozen=True)
class RateDistortionPoint:
    """One point of a rate-distortion curve."""

    error_bound: float
    bit_rate: float
    ratio: float
    psnr: float
    max_error: float
    ssim: float


def rate_distortion_curve(
    compressor: Compressor,
    data: np.ndarray,
    bounds: np.ndarray | None = None,
    compute_ssim: bool = True,
) -> list[RateDistortionPoint]:
    """Rate-distortion points (Figs. 1/9), sorted by bit rate.

    Each probe costs a compression and a decompression.
    """
    data = np.asarray(data)
    if bounds is None:
        bounds = default_bound_sweep(compressor, data)
    points = []
    for e in np.asarray(bounds, dtype=np.float64):
        configured = compressor.with_error_bound(float(e))
        payload = configured.compress(data)
        recon = configured.decompress(payload)
        points.append(
            RateDistortionPoint(
                error_bound=float(e),
                bit_rate=8.0 * payload.nbytes / data.size,
                ratio=payload.ratio,
                psnr=psnr(data, recon),
                max_error=max_abs_error(data, recon),
                ssim=ssim(data, recon) if compute_ssim and data.ndim <= 3 else float("nan"),
            )
        )
    return sorted(points, key=lambda p: p.bit_rate)


def feasible_ratio_range(
    compressor: Compressor,
    data: np.ndarray,
    probes: int = 16,
) -> tuple[float, float]:
    """Approximate ``(min, max)`` achievable ratio over the bound range.

    This answers the Fig. 7 feasibility question cheaply before a full
    FRaZ search: targets outside the returned interval will hit the
    iteration cap.  The estimate is a sweep, so gaps *inside* the range
    (step-function compressors) are not detected — it bounds the feasible
    set, it does not enumerate it.
    """
    _, ratios = ratio_curve(
        compressor, data, default_bound_sweep(compressor, np.asarray(data), probes)
    )
    finite = ratios[np.isfinite(ratios)]
    if finite.size == 0:
        return (float("nan"), float("nan"))
    return (float(finite.min()), float(finite.max()))
