"""CSV export for experiment curves.

The benchmark harness prints the paper's series; these helpers write the
same data as CSV so figures can be regenerated in any plotting tool
(matplotlib is deliberately not a dependency of this package).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.sweeps import RateDistortionPoint

__all__ = ["write_csv", "write_rate_distortion_csv", "write_ratio_curve_csv"]


def write_csv(
    path: str | Path,
    header: Sequence[str],
    rows: Iterable[Sequence],
) -> Path:
    """Write rows with a header; returns the path."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(header))
        for row in rows:
            writer.writerow(list(row))
    return path


def write_ratio_curve_csv(
    path: str | Path, bounds: Sequence[float], ratios: Sequence[float]
) -> Path:
    """Export a Fig. 3/4-style ratio-vs-bound curve."""
    if len(bounds) != len(ratios):
        raise ValueError(
            f"bounds ({len(bounds)}) and ratios ({len(ratios)}) differ in length"
        )
    return write_csv(path, ["error_bound", "ratio"], zip(bounds, ratios))


def write_rate_distortion_csv(
    path: str | Path, points: Sequence[RateDistortionPoint]
) -> Path:
    """Export a Fig. 1/9-style rate-distortion curve."""
    return write_csv(
        path,
        ["error_bound", "bit_rate", "ratio", "psnr", "max_error", "ssim"],
        (
            (p.error_bound, p.bit_rate, p.ratio, p.psnr, p.max_error, p.ssim)
            for p in points
        ),
    )
