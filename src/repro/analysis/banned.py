"""Banned-pattern checker: constructs this codebase never allows.

``BAN001``
    Bare ``except:`` — swallows ``KeyboardInterrupt``/``SystemExit``
    and masks scheduler shutdown; name the exceptions (worst case
    ``except Exception:``).
``BAN002``
    ``pickle.loads``/``pickle.load`` outside ``parallel/executor.py``.
    Pickle is how the process pool moves work between *our own*
    processes; anywhere else (and especially on network-sourced bytes)
    it is an arbitrary-code-execution hole.  The wire protocol is JSON.
``BAN003``
    Mutable default argument (``def f(x=[])``) — the default is shared
    across calls, a classic aliasing bug in long-lived services.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, ParsedFile, checker

RULES = {
    "BAN001": "bare except: — name the exceptions",
    "BAN002": "pickle.load(s) outside parallel/executor.py",
    "BAN003": "mutable default argument",
}

#: The one module allowed to unpickle: the process pool's own plumbing.
PICKLE_ALLOWED_SUFFIX = "parallel/executor.py"

_MUTABLE_CTORS = {"list", "dict", "set", "bytearray", "deque", "defaultdict",
                  "Counter", "OrderedDict"}


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None)
        return name in _MUTABLE_CTORS
    return False


EXAMPLES = {
    "BAN001": ("try:\n    risky()\nexcept:\n    pass",
               "try:\n    risky()\nexcept OSError:\n    recover()"),
    "BAN002": ("payload = pickle.loads(blob)",
               "payload = json.loads(blob)  # or move into parallel/executor.py"),
    "BAN003": ("def add(item, bucket=[]):\n    bucket.append(item)",
               "def add(item, bucket=None):\n    bucket = [] if bucket is None else bucket"),
}


@checker("banned-patterns", scope="file", rules=RULES, examples=EXAMPLES)
def check_banned(pf: ParsedFile) -> list[Finding]:
    findings: list[Finding] = []
    pickle_allowed = pf.path.endswith(PICKLE_ALLOWED_SUFFIX)
    for node in ast.walk(pf.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(pf.finding(
                "BAN001", node,
                "bare except: swallows KeyboardInterrupt/SystemExit; "
                "name the exceptions"))
        elif (isinstance(node, ast.Call)
              and isinstance(node.func, ast.Attribute)
              and node.func.attr in ("loads", "load")
              and isinstance(node.func.value, ast.Name)
              and node.func.value.id == "pickle"
              and not pickle_allowed):
            findings.append(pf.finding(
                "BAN002", node,
                f"pickle.{node.func.attr} outside {PICKLE_ALLOWED_SUFFIX}: "
                "unpickling untrusted bytes executes arbitrary code; "
                "the wire protocol is JSON"))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable_default(default):
                    findings.append(pf.finding(
                        "BAN003", default,
                        f"mutable default argument in {node.name}(): "
                        "the default object is shared across calls"))
    return findings
