"""Wire-protocol drift checker.

Three copies of the HTTP protocol exist by design — the node server
(``serve/server.py``), the gateway (``gateway/server.py`` +
``gateway/router.py``), and the consumers (``serve/client.py``,
``serve/agent.py``, the CLI) — plus the report schema in
``api/report.py`` that every ``/result`` body carries.  This checker
extracts each side from the AST and fails when they disagree.

``WIRE001`` — route drift:
    * every path literal the client requests must be handled by the
      node server;
    * every path the node agent posts must be handled by the gateway;
    * the gateway mirrors the node's query surface (``do_GET`` route
      parity) and both accept ``POST /submit`` — a ``ServiceClient``
      pointed at a gateway must work unchanged.
``WIRE002`` — payload field drift:
    * every key consumers subscript off a submit ticket
      (``ticket["..."]``) must be present in every 202 ticket producer
      (node handler and gateway router);
    * all terminal ``/result`` payload producers must agree on the
      exact key set.
``WIRE003`` — report schema drift: each ``api/report.py`` dataclass's
    ``to_dict`` keys must equal its field names plus the
    ``kind``/``streamed`` envelope (``from_stream`` travels as
    ``streamed``).

Checks that need a role file silently skip when the project under
analysis does not contain it — fixture trees exercise one role pair at
a time.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, ParsedFile, Project, checker

RULES = {
    "WIRE001": "endpoint route drift between handler, proxy, and client",
    "WIRE002": "JSON payload field drift between producer and consumer",
    "WIRE003": "report to_dict keys drift from dataclass fields",
}

NODE_SERVER = "serve/server.py"
GATEWAY_SERVER = "gateway/server.py"
GATEWAY_ROUTER = "gateway/router.py"
CLIENT = "serve/client.py"
AGENT = "serve/agent.py"
REPORT = "api/report.py"

#: Wrapper keys ``to_dict`` may add beyond the dataclass fields.
ENVELOPE_KEYS = {"kind", "streamed"}
#: Field -> wire-key renames the report schema deliberately keeps.
FIELD_ALIASES = {"from_stream": "streamed"}


def _norm(route: str) -> str:
    return route.rstrip("/") or "/"


def _is_route_literal(value: str) -> bool:
    return (len(value) > 1 and value.startswith("/")
            and all(c.isalnum() or c in "_-/" for c in value[1:]))


# ---------------------------------------------------------------------------
# route extraction


def _handler_routes(pf: ParsedFile) -> dict[str, dict[str, ast.AST]]:
    """Routes served by ``do_GET``/``do_POST``: method -> {route: node}."""
    out: dict[str, dict[str, ast.AST]] = {"GET": {}, "POST": {}}
    for fn in ast.walk(pf.tree):
        if not isinstance(fn, ast.FunctionDef) or fn.name not in ("do_GET", "do_POST"):
            continue
        routes = out[fn.name[3:]]
        for node in ast.walk(fn):
            if isinstance(node, ast.Compare):
                # self.path ==/!= "<route>"
                operands = [node.left] + list(node.comparators)
                if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                    for operand in operands:
                        if (isinstance(operand, ast.Constant)
                                and isinstance(operand.value, str)
                                and _is_route_literal(operand.value)):
                            routes.setdefault(operand.value, node)
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr == "startswith"):
                for arg in node.args:
                    if (isinstance(arg, ast.Constant)
                            and isinstance(arg.value, str)
                            and _is_route_literal(arg.value)):
                        routes.setdefault(arg.value, node)
            elif isinstance(node, ast.For) and isinstance(node.iter, ast.Tuple):
                # for prefix in ("/a/", "/b/")  |  for prefix, h in (("/a/", f),)
                for elt in node.iter.elts:
                    candidates = [elt]
                    if isinstance(elt, ast.Tuple) and elt.elts:
                        candidates = [elt.elts[0]]
                    for cand in candidates:
                        if (isinstance(cand, ast.Constant)
                                and isinstance(cand.value, str)
                                and _is_route_literal(cand.value)):
                            routes.setdefault(cand.value, cand)
    return out


def _requested_routes(pf: ParsedFile) -> dict[str, ast.AST]:
    """Path literals a client-side module requests: route -> AST node.

    Catches plain string arguments (``"/submit"``) and f-strings whose
    literal head is the route prefix (``f"/status/{job_id}"``).
    """
    out: dict[str, ast.AST] = {}
    for node in ast.walk(pf.tree):
        if not isinstance(node, ast.Call):
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if (isinstance(arg, ast.Constant) and isinstance(arg.value, str)
                    and _is_route_literal(arg.value)):
                out.setdefault(arg.value, arg)
            elif isinstance(arg, ast.JoinedStr) and arg.values:
                head = arg.values[0]
                if (isinstance(head, ast.Constant)
                        and isinstance(head.value, str)
                        and _is_route_literal(head.value)):
                    out.setdefault(head.value, arg)
    return out


# ---------------------------------------------------------------------------
# payload extraction


def _dict_keys(node: ast.Dict) -> set[str] | None:
    """Constant string keys of a dict literal (None if any key is dynamic)."""
    keys: set[str] = set()
    for key in node.keys:
        if key is None:  # **spread — can't reason statically
            return None
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        keys.add(key.value)
    return keys


def _send_202_dicts(pf: ParsedFile) -> list[tuple[ast.Dict, set[str]]]:
    """Ticket/pending payload literals: 202 responses and ``ticket = {...}``."""
    out = []
    for node in ast.walk(pf.tree):
        dict_node = None
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
                and node.func.attr == "_send" and len(node.args) >= 2
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == 202
                and isinstance(node.args[1], ast.Dict)):
            dict_node = node.args[1]
        elif (isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict)
              and any(isinstance(t, ast.Name) and t.id == "ticket"
                      for t in node.targets)):
            dict_node = node.value
        elif (isinstance(node, ast.Tuple) and len(node.elts) == 2
              and isinstance(node.elts[0], ast.Constant)
              and node.elts[0].value == 202
              and isinstance(node.elts[1], ast.Dict)):
            dict_node = node.elts[1]
        if dict_node is not None:
            keys = _dict_keys(dict_node)
            if keys is not None:
                out.append((dict_node, keys))
    return out


def _result_payload_dicts(pf: ParsedFile) -> list[tuple[ast.Dict, set[str]]]:
    """Terminal ``/result`` payload literals: dicts carrying a "result" key."""
    out = []
    for node in ast.walk(pf.tree):
        if isinstance(node, ast.Dict):
            keys = _dict_keys(node)
            if keys is not None and "result" in keys and "state" in keys:
                out.append((node, keys))
    return out


def _ticket_subscripts(project: Project) -> dict[str, tuple[ParsedFile, ast.AST]]:
    """Keys subscripted off a name called ``ticket`` anywhere in the tree."""
    out: dict[str, tuple[ParsedFile, ast.AST]] = {}
    for pf in project.files:
        for node in ast.walk(pf.tree):
            if (isinstance(node, ast.Subscript)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "ticket"
                    and isinstance(node.slice, ast.Constant)
                    and isinstance(node.slice.value, str)):
                out.setdefault(node.slice.value, (pf, node))
    return out


# ---------------------------------------------------------------------------
# the checker


def _check_routes(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    node_pf = project.find(NODE_SERVER)
    gateway_pf = project.find(GATEWAY_SERVER)
    client_pf = project.find(CLIENT)
    agent_pf = project.find(AGENT)

    node_routes = _handler_routes(node_pf) if node_pf else None
    gateway_routes = _handler_routes(gateway_pf) if gateway_pf else None

    def handled(routes: dict[str, dict[str, ast.AST]]) -> set[str]:
        return {_norm(r) for method in routes.values() for r in method}

    if client_pf is not None and node_routes is not None:
        served = handled(node_routes)
        for route, node in sorted(_requested_routes(client_pf).items()):
            if _norm(route) not in served:
                findings.append(client_pf.finding(
                    "WIRE001", node,
                    f"client requests {route!r} but {NODE_SERVER} has no "
                    f"handler for it"))

    if agent_pf is not None and gateway_routes is not None:
        served = handled(gateway_routes)
        for route, node in sorted(_requested_routes(agent_pf).items()):
            if _norm(route) not in served:
                findings.append(agent_pf.finding(
                    "WIRE001", node,
                    f"agent requests {route!r} but {GATEWAY_SERVER} has no "
                    f"handler for it"))

    if node_routes is not None and gateway_routes is not None:
        # The gateway speaks the same client query protocol as a node.
        node_get = {_norm(r) for r in node_routes["GET"]}
        gw_get = {_norm(r) for r in gateway_routes["GET"]}
        for route in sorted(node_get - gw_get):
            findings.append(gateway_pf.finding(
                "WIRE001", None,
                f"gateway is missing node query route {route!r} "
                f"(GET surfaces must match so ServiceClient works unchanged)"))
        for route in sorted(gw_get - node_get):
            findings.append(node_pf.finding(
                "WIRE001", None,
                f"node server is missing gateway query route {route!r} "
                f"(GET surfaces must match so ServiceClient works unchanged)"))
        for pf, routes, who in ((node_pf, node_routes, "node server"),
                                (gateway_pf, gateway_routes, "gateway")):
            if "/submit" not in {_norm(r) for r in routes["POST"]}:
                findings.append(pf.finding(
                    "WIRE001", None, f"{who} does not accept POST /submit"))
    return findings


def _check_payloads(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    producers: list[tuple[ParsedFile, ast.Dict, set[str]]] = []
    for suffix in (NODE_SERVER, GATEWAY_ROUTER):
        pf = project.find(suffix)
        if pf is None:
            continue
        for node, keys in _send_202_dicts(pf):
            producers.append((pf, node, keys))
    required = _ticket_subscripts(project)
    if producers and required:
        for key, (consumer_pf, consumer_node) in sorted(required.items()):
            for producer_pf, producer_node, keys in producers:
                if key not in keys:
                    findings.append(consumer_pf.finding(
                        "WIRE002", consumer_node,
                        f'ticket["{key}"] is consumed here but the 202 '
                        f"producer at {producer_pf.path}:{producer_node.lineno} "
                        f"does not emit it"))

    result_producers: list[tuple[ParsedFile, ast.Dict, set[str]]] = []
    for suffix in (NODE_SERVER, GATEWAY_ROUTER):
        pf = project.find(suffix)
        if pf is None:
            continue
        for node, keys in _result_payload_dicts(pf):
            result_producers.append((pf, node, keys))
    if len(result_producers) > 1:
        ref_pf, ref_node, ref_keys = result_producers[0]
        for pf, node, keys in result_producers[1:]:
            if keys != ref_keys:
                drift = sorted(keys.symmetric_difference(ref_keys))
                findings.append(pf.finding(
                    "WIRE002", node,
                    f"/result payload keys drift from "
                    f"{ref_pf.path}:{ref_node.lineno}: differing keys {drift}"))
    return findings


def _check_reports(project: Project) -> list[Finding]:
    pf = project.find(REPORT)
    if pf is None:
        return []
    findings: list[Finding] = []
    for cls in ast.walk(pf.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        is_dataclass = any(
            (isinstance(d, ast.Name) and d.id == "dataclass")
            or (isinstance(d, ast.Call) and isinstance(d.func, ast.Name)
                and d.func.id == "dataclass")
            or (isinstance(d, ast.Attribute) and d.attr == "dataclass")
            or (isinstance(d, ast.Call) and isinstance(d.func, ast.Attribute)
                and d.func.attr == "dataclass")
            for d in cls.decorator_list)
        if not is_dataclass:
            continue
        fields = []
        for stmt in cls.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and "ClassVar" not in ast.dump(stmt.annotation)):
                fields.append(stmt.target.id)
        to_dict = next((m for m in cls.body
                        if isinstance(m, ast.FunctionDef) and m.name == "to_dict"),
                       None)
        if to_dict is None or not fields:
            continue
        returned = next((s.value for s in ast.walk(to_dict)
                         if isinstance(s, ast.Return)
                         and isinstance(s.value, ast.Dict)), None)
        if returned is None:
            continue
        keys = _dict_keys(returned)
        if keys is None:
            continue
        for field in fields:
            wire_key = FIELD_ALIASES.get(field, field)
            if wire_key not in keys:
                findings.append(pf.finding(
                    "WIRE003", returned,
                    f"{cls.name}.{field} never reaches the wire: "
                    f"to_dict() omits key {wire_key!r}"))
        allowed = set(fields) | ENVELOPE_KEYS | {
            FIELD_ALIASES.get(f, f) for f in fields}
        for key in sorted(keys - allowed):
            findings.append(pf.finding(
                "WIRE003", returned,
                f"{cls.name}.to_dict() emits unknown key {key!r} "
                f"(no matching dataclass field)"))
    return findings


EXAMPLES = {
    "WIRE001": ('# client.py\nself._request("GET", f"/stat/{job_id}")  # server routes /status/',
                '# client.py\nself._request("GET", f"/status/{job_id}")'),
    "WIRE002": ('payload["jobid"]  # producer writes "job_id"',
                'payload["job_id"]'),
    "WIRE003": ('def to_dict(self):\n    return {"ratio": self.ratio}  # dataclass also has "seconds"',
                'def to_dict(self):\n    return {"ratio": self.ratio, "seconds": self.seconds}'),
}


@checker("wire-protocol", scope="project", rules=RULES, examples=EXAMPLES)
def check_wire(project: Project) -> list[Finding]:
    return _check_routes(project) + _check_payloads(project) + _check_reports(project)
