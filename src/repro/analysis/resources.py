"""Resource-lifecycle checker: handles must be closed on all paths.

``RES001`` (file scope)
    A call that produces an OS-backed handle — builtin ``open()``,
    ``np.memmap(...)``, ``np.lib.format.open_memmap(...)``,
    ``urllib.request.urlopen(...)``, ``socket.socket(...)`` — whose
    result is not deterministically released.  Accepted lifecycles:

    * the call is a ``with`` item (directly, or wrapped in another call
      such as ``contextlib.closing(...)``);
    * the result is assigned to ``self.<attr>`` of a class that defines
      ``close()`` or ``__exit__`` (the instance owns the handle);
    * the result is bound to a local that is later used as a ``with``
      context, has ``.close()`` called on it in the same scope, is
      returned, or is yielded (ownership transfer);
    * the call itself is directly returned.

    Anything else relies on garbage collection to drop the handle —
    nondeterministic, and on platforms with mandatory file locking it
    blocks directory cleanup (the original symptom in the stream tests).
"""

from __future__ import annotations

import ast

from repro.analysis.engine import Finding, ParsedFile, checker

RULES = {
    "RES001": "OS handle (open/memmap/urlopen/socket) not closed on all paths",
}

#: Attribute callees that produce handles (``x.memmap``, ``x.urlopen`` ...).
_ATTR_PRODUCERS = {"memmap", "open_memmap", "urlopen"}

#: Bare-name callees that produce handles.
_NAME_PRODUCERS = {"open", "open_memmap", "urlopen"}


def _producer_name(call: ast.Call) -> str | None:
    fn = call.func
    if isinstance(fn, ast.Name) and fn.id in _NAME_PRODUCERS:
        return fn.id
    if isinstance(fn, ast.Attribute):
        if fn.attr in _ATTR_PRODUCERS:
            return fn.attr
        # socket.socket(...) — require the module prefix so methods named
        # ``socket`` elsewhere don't trip the rule.
        if (fn.attr == "socket" and isinstance(fn.value, ast.Name)
                and fn.value.id == "socket"):
            return "socket.socket"
    return None


class _ScopeFacts(ast.NodeVisitor):
    """Names released somewhere in one function/module scope."""

    def __init__(self) -> None:
        self.with_names: set[str] = set()
        self.closed_names: set[str] = set()
        self.returned_names: set[str] = set()

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Name):
                self.with_names.add(expr.id)
            elif (isinstance(expr, ast.Call) and
                  all(isinstance(a, ast.Name) for a in expr.args)):
                for a in expr.args:
                    self.with_names.add(a.id)
        self.generic_visit(node)

    visit_AsyncWith = visit_With

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        if (isinstance(fn, ast.Attribute) and fn.attr == "close"
                and isinstance(fn.value, ast.Name)):
            self.closed_names.add(fn.value.id)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if isinstance(node.value, ast.Name):
            self.returned_names.add(node.value.id)
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        if isinstance(node.value, ast.Name):
            self.returned_names.add(node.value.id)
        self.generic_visit(node)

    def released(self) -> set[str]:
        return self.with_names | self.closed_names | self.returned_names

    # Inner functions are separate scopes.
    def visit_FunctionDef(self, node) -> None:  # noqa: D102
        pass

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node) -> None:  # noqa: D102
        pass


def _owning_classes(tree: ast.Module) -> set[str]:
    """Classes that define ``close`` or ``__exit__`` (handle owners)."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if (isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and item.name in ("close", "__exit__")):
                    out.add(node.name)
                    break
    return out


def _scopes(tree: ast.Module):
    """Yield (scope_body, owner_class_name | None) for every scope."""
    yield tree.body, None
    stack: list[tuple[ast.AST, str | None]] = [(tree, None)]
    while stack:
        node, owner = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                stack.append((child, child.name))
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child.body, owner
                stack.append((child, owner))
            else:
                stack.append((child, owner))


def _check_scope(pf: ParsedFile, body: list[ast.stmt], owner: str | None,
                 owners_with_close: set[str]) -> list[Finding]:
    facts = _ScopeFacts()
    for stmt in body:
        facts.visit(stmt)
    released = facts.released()

    findings: list[Finding] = []
    seen_calls: set[int] = set()

    def leak(call: ast.Call, name: str) -> None:
        findings.append(pf.finding(
            "RES001", call,
            f"{name}(...) result is not closed on all paths; use `with`, "
            f"`try/finally` + close(), or store it on a close()-owning class"))

    def scan(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            return  # separate scope
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                for sub in ast.walk(expr):
                    if isinstance(sub, ast.Call):
                        seen_calls.add(id(sub))  # with-managed, incl. wrapped
            for stmt in node.body:
                scan(stmt)
            return
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
            seen_calls.add(id(node.value))  # ownership transferred to caller
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            if isinstance(value, ast.Call) and _producer_name(value) is not None:
                seen_calls.add(id(value))
                ok = False
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in released:
                        ok = True
                    elif (isinstance(target, ast.Attribute)
                          and isinstance(target.value, ast.Name)
                          and target.value.id == "self"
                          and owner in owners_with_close):
                        ok = True
                if not ok:
                    leak(value, _producer_name(value))
        for child in ast.iter_child_nodes(node):
            scan(child)
        if isinstance(node, ast.Call) and id(node) not in seen_calls:
            name = _producer_name(node)
            if name is not None:
                seen_calls.add(id(node))
                leak(node, name)

    for stmt in body:
        scan(stmt)
    return findings


EXAMPLES = {
    "RES001": ('data = np.memmap(path, mode="r", shape=shape, dtype=dtype)\nreturn data.sum()',
               'with contextlib.closing(\n        np.memmap(path, mode="r", shape=shape, dtype=dtype)) as data:\n    return data.sum()'),
}


@checker("resource-lifecycle", scope="file", rules=RULES, examples=EXAMPLES)
def check_resource_lifecycle(pf: ParsedFile) -> list[Finding]:
    owners_with_close = _owning_classes(pf.tree)
    findings: list[Finding] = []
    for body, owner in _scopes(pf.tree):
        findings.extend(_check_scope(pf, body, owner, owners_with_close))
    return findings
