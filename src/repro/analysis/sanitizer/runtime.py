"""Runtime half of the concurrency sanitizer: descriptors + recorder.

Activated by ``REPRO_SANITIZE=1`` in the environment (checked when
:func:`repro.util.concurrency.guarded_by` decorates a class) or
programmatically via :func:`set_active` before the guarded modules are
imported.  Dependency-free and stdlib-only; when inactive this module is
never imported and annotated classes carry zero overhead.

What instrumentation does
-------------------------
* Every *declared lock attribute* becomes a data descriptor that wraps
  whatever lock the class assigns (``Lock``/``RLock``/``Condition``) in
  a :class:`_LockProxy` recording per-thread ownership and, on each
  acquisition, a thread-local held-stack used to build the observed
  lock-order graph.
* Every *guarded field* becomes a data descriptor that, on each read or
  write, asserts the declared lock is owned by the current thread —
  honouring the same conventions the static ``LOCK001`` checker
  understands (``__init__``/``__del__``/``__setstate__`` frames and
  ``*_locked`` methods of the same instance are exempt, and a same-line
  ``# repro: ignore[...]`` comment silences the runtime check too).
  Frames outside ``src/repro`` (tests poking internals) are exempt.

Violations are *recorded*, not raised: raising from an arbitrary worker
thread would change control flow and mask the very schedules we want to
observe.  The pytest plugin in ``tests/conftest.py`` fails the session
if any violation was recorded, and :func:`write_report` emits the
observed graph + violations as JSON for the ``SAN001`` static diff.

Runtime rule ids (reported in the JSON and by the pytest plugin):

* ``SAN101`` — guarded field accessed without its declared lock held
* ``SAN102`` — observed lock-order cycle (runtime inversion)
"""

from __future__ import annotations

import json
import linecache
import os
import re
import sys
import threading

__all__ = [
    "SANITIZE_ENV",
    "REPORT_ENV",
    "DEFAULT_REPORT",
    "RULES",
    "is_active",
    "set_active",
    "instrument_class",
    "add_root",
    "remove_root",
    "violations",
    "drain_violations",
    "observed_edges",
    "reset",
    "write_report",
]

SANITIZE_ENV = "REPRO_SANITIZE"
REPORT_ENV = "REPRO_SANITIZE_REPORT"
DEFAULT_REPORT = ".repro_sanitize_report.json"

RULES = {
    "SAN101": "guarded field accessed at runtime without its declared lock",
    "SAN102": "observed lock-order cycle at runtime (lock inversion)",
}

#: Mirrors ``repro.analysis.engine._SUPPRESS_RE`` (kept in sync by a
#: static-analysis test) so static suppressions also apply at runtime.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")

#: Method names where the instance is not yet (or no longer) shared.
_EXEMPT_METHODS = {"__init__", "__del__", "__setstate__", "__getstate__",
                   "__reduce__", "__repr__"}

#: ``src/repro`` package root — frames outside every sanitized root are
#: exempt (tests poking internals).  Fixture packages with seeded
#: violations register their directory via :func:`add_root`.
_PKG_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
_SELF_DIR = os.path.dirname(os.path.abspath(__file__))
_REPO_ROOT = os.path.dirname(os.path.dirname(_PKG_ROOT))
_ROOTS: list[str] = [_PKG_ROOT]


def add_root(path: str) -> None:
    """Treat frames under ``path`` as sanitized code (not white-box tests)."""
    path = os.path.abspath(path)
    if path not in _ROOTS:
        _ROOTS.append(path)


def remove_root(path: str) -> None:
    path = os.path.abspath(path)
    if path in _ROOTS and path != _PKG_ROOT:
        _ROOTS.remove(path)


def _in_roots(filename: str) -> bool:
    return any(filename.startswith(root) for root in _ROOTS)

_active: bool | None = None  # None -> consult the environment


def is_active() -> bool:
    """Is the sanitizer enabled for classes decorated from now on?"""
    if _active is not None:
        return _active
    return os.environ.get(SANITIZE_ENV, "").strip() not in ("", "0", "false")


def set_active(value: bool | None) -> None:
    """Programmatic override (``None`` -> back to the environment)."""
    global _active
    _active = value


# ---------------------------------------------------------------------------
# global recording state


class _Recorder:
    """Global registry: observed lock-order edges + violations."""

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._tls = threading.local()
        #: (src, dst) -> {"count": int, "sites": set[str]}
        self.edges: dict[tuple[str, str], dict] = {}
        #: src -> set of dst (adjacency view of ``edges``)
        self.graph: dict[str, set[str]] = {}
        self.violations: list[dict] = []
        self._cycle_keys: set[frozenset] = set()
        self._violation_keys: set[tuple] = set()

    # -- held stack (thread local) ---------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def push(self, proxy: "_LockProxy") -> None:
        stack = self._stack()
        prev = stack[-1] if stack else None
        stack.append(proxy)
        if prev is None or prev.san_name == proxy.san_name:
            # Re-entrant by name mirrors the static re-entrant skip.
            return
        self._record_edge(prev.san_name, proxy.san_name)

    def pop(self, proxy: "_LockProxy") -> None:
        stack = self._stack()
        # Locks are usually released LIFO, but hand-over-hand release is
        # legal: remove the most recent entry for this proxy.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is proxy:
                del stack[i]
                return

    # -- edges + cycles ---------------------------------------------------
    def _record_edge(self, src: str, dst: str) -> None:
        site = _caller_site()
        with self._mu:
            entry = self.edges.get((src, dst))
            is_new = entry is None
            if entry is None:
                entry = {"count": 0, "sites": set()}
                self.edges[(src, dst)] = entry
                self.graph.setdefault(src, set()).add(dst)
            entry["count"] += 1
            if site is not None and len(entry["sites"]) < 8:
                entry["sites"].add(site)
            if is_new:
                cycle = self._find_cycle_locked(dst, src)
                if cycle is not None:
                    key = frozenset(cycle)
                    if key not in self._cycle_keys:
                        self._cycle_keys.add(key)
                        chain = " -> ".join([src] + cycle)
                        self.violations.append({
                            "rule": "SAN102",
                            "site": site or "<unknown>",
                            "message": f"observed lock-order cycle {chain}",
                        })

    def _find_cycle_locked(self, start: str, goal: str) -> list[str] | None:
        """Path start -> ... -> goal in the observed graph (DFS)."""
        seen = {start}
        path: list[str] = [start]

        def dfs(node: str) -> bool:
            if node == goal:
                return True
            for nxt in sorted(self.graph.get(node, ())):
                if nxt in seen:
                    continue
                seen.add(nxt)
                path.append(nxt)
                if dfs(nxt):
                    return True
                path.pop()
            return False

        return path if dfs(start) else None

    # -- violations -------------------------------------------------------
    def record_violation(self, rule: str, message: str, site: str | None) -> None:
        key = (rule, message, site)
        with self._mu:
            if key in self._violation_keys:
                return
            self._violation_keys.add(key)
            self.violations.append({
                "rule": rule,
                "site": site or "<unknown>",
                "message": message,
            })

    def snapshot(self) -> dict:
        with self._mu:
            edges = [
                {"src": src, "dst": dst, "count": entry["count"],
                 "sites": sorted(entry["sites"])}
                for (src, dst), entry in sorted(self.edges.items())
            ]
            return {"edges": edges, "violations": list(self.violations)}

    def reset(self) -> None:
        with self._mu:
            self.edges.clear()
            self.graph.clear()
            self.violations.clear()
            self._cycle_keys.clear()
            self._violation_keys.clear()


_RECORDER = _Recorder()


def violations() -> list[dict]:
    """Copy of every recorded violation so far."""
    return list(_RECORDER.snapshot()["violations"])


def drain_violations() -> list[dict]:
    """Return and clear recorded violations (edges are kept)."""
    with _RECORDER._mu:
        out = list(_RECORDER.violations)
        _RECORDER.violations.clear()
        _RECORDER._violation_keys.clear()
        _RECORDER._cycle_keys.clear()
        return out


def observed_edges() -> list[dict]:
    return list(_RECORDER.snapshot()["edges"])


def reset() -> None:
    """Clear all recorded edges and violations (tests)."""
    _RECORDER.reset()


def write_report(path: str | None = None) -> str:
    """Write the observed graph + violations as JSON; returns the path."""
    path = path or os.environ.get(REPORT_ENV) or DEFAULT_REPORT
    payload = _RECORDER.snapshot()
    payload["comment"] = (
        "Observed lock-order graph from a REPRO_SANITIZE run; "
        "diffed against the static LOCK002 graph by `repro check` (SAN001).")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# ---------------------------------------------------------------------------
# frame inspection


def _site_of(frame) -> str:
    rel = os.path.relpath(frame.f_code.co_filename, _REPO_ROOT)
    return f"{rel.replace(os.sep, '/')}:{frame.f_lineno}"


def _caller_site() -> str | None:
    """``path:lineno`` of the nearest frame inside a sanitized root."""
    frame = sys._getframe(2)
    while frame is not None:
        fname = frame.f_code.co_filename
        if _in_roots(fname) and not fname.startswith(_SELF_DIR):
            return _site_of(frame)
        frame = frame.f_back
    return None


def _line_suppressed(filename: str, lineno: int, rule: str) -> bool:
    text = linecache.getline(filename, lineno)
    if "#" not in text:
        return False
    match = _SUPPRESS_RE.search(text)
    if match is None:
        return False
    rules = match.group("rules")
    if rules is None:
        return True
    ids = {r.strip() for r in rules.split(",")}
    # A static LOCK001 suppression acknowledges the torn access; the
    # runtime check honours it so one comment silences both layers.
    return rule in ids or "LOCK001" in ids


def _access_exempt(obj: object, rule: str) -> tuple[bool, str | None]:
    """(exempt?, site) for the guarded access two frames up."""
    frame = sys._getframe(2)
    # Skip sanitizer-internal frames (descriptor __get__/__set__).
    while frame is not None and frame.f_code.co_filename.startswith(_SELF_DIR):
        frame = frame.f_back
    if frame is None:
        return True, None
    fname = frame.f_code.co_filename
    if not _in_roots(fname):
        return True, None  # frame outside sanitized roots: white-box access
    name = frame.f_code.co_name
    if name in _EXEMPT_METHODS or name.endswith("_locked"):
        if frame.f_locals.get("self") is obj:
            return True, None
    if _line_suppressed(fname, frame.f_lineno, rule):
        return True, None
    return False, _site_of(frame)


# ---------------------------------------------------------------------------
# lock proxy


class _LockProxy:
    """Wraps a declared lock, tracking per-thread ownership + ordering.

    Works for ``Lock``, ``RLock`` and ``Condition`` alike: only the
    acquire/release/context-manager surface is intercepted; everything
    else (``wait``, ``notify``, ...) forwards to the wrapped object.  A
    thread blocked in ``Condition.wait`` keeps its ownership mark — it
    is not running user code, so guarded-field checks (which only ask
    about the *current* thread) are unaffected.
    """

    __slots__ = ("_wrapped", "san_name", "_owners")

    def __init__(self, wrapped, san_name: str) -> None:
        self._wrapped = wrapped
        self.san_name = san_name
        #: thread ident -> recursion count.  Mutated only by the thread
        #: that owns (or is acquiring) the lock; dict ops are atomic
        #: under the GIL.
        self._owners: dict[int, int] = {}

    # -- core surface ------------------------------------------------------
    def acquire(self, *args, **kwargs):
        got = self._wrapped.acquire(*args, **kwargs)
        if got:
            self._note_acquired()
        return got

    def release(self) -> None:
        self._note_released()
        self._wrapped.release()

    def __enter__(self):
        self._wrapped.__enter__()
        self._note_acquired()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._note_released()
        return self._wrapped.__exit__(exc_type, exc, tb)

    def owned_by_current_thread(self) -> bool:
        return threading.get_ident() in self._owners

    def __getattr__(self, name):
        return getattr(object.__getattribute__(self, "_wrapped"), name)

    def __repr__(self) -> str:
        return f"<sanitized {self.san_name} wrapping {self._wrapped!r}>"

    # -- bookkeeping -------------------------------------------------------
    def _note_acquired(self) -> None:
        ident = threading.get_ident()
        count = self._owners.get(ident, 0)
        self._owners[ident] = count + 1
        if count == 0:
            _RECORDER.push(self)

    def _note_released(self) -> None:
        ident = threading.get_ident()
        count = self._owners.get(ident, 0)
        if count <= 1:
            self._owners.pop(ident, None)
            _RECORDER.pop(self)
        else:
            self._owners[ident] = count - 1


# ---------------------------------------------------------------------------
# descriptors


class GuardedLockAttr:
    """Data descriptor for a declared lock attribute.

    Wraps whatever lock object the class assigns in a :class:`_LockProxy`
    so every acquisition is observed.  Reassignment (e.g. ``__setstate__``
    rebuilding a lock after unpickling) re-wraps transparently.
    """

    def __init__(self, name: str, san_name: str) -> None:
        self.name = name
        self.san_name = san_name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        try:
            return obj.__dict__[self.name]
        except KeyError:
            raise AttributeError(self.name) from None

    def __set__(self, obj, value) -> None:
        if value is not None and not isinstance(value, _LockProxy):
            value = _LockProxy(value, self.san_name)
        obj.__dict__[self.name] = value

    def __delete__(self, obj) -> None:
        obj.__dict__.pop(self.name, None)


class GuardedFieldAttr:
    """Data descriptor asserting the declared lock is held on access."""

    def __init__(self, name: str, lock_attr: str, cls_name: str) -> None:
        self.name = name
        self.lock_attr = lock_attr
        self.cls_name = cls_name

    def _check(self, obj, verb: str) -> None:
        proxy = obj.__dict__.get(self.lock_attr)
        if isinstance(proxy, _LockProxy) and proxy.owned_by_current_thread():
            return
        exempt, site = _access_exempt(obj, "SAN101")
        if exempt:
            return
        _RECORDER.record_violation(
            "SAN101",
            f"{self.cls_name}.{self.name} {verb} without holding "
            f"{self.cls_name}.{self.lock_attr}",
            site)

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        try:
            value = obj.__dict__[self.name]
        except KeyError:
            raise AttributeError(self.name) from None
        self._check(obj, "read")
        return value

    def __set__(self, obj, value) -> None:
        self._check(obj, "write")
        obj.__dict__[self.name] = value

    def __delete__(self, obj) -> None:
        self._check(obj, "delete")
        obj.__dict__.pop(self.name, None)


# ---------------------------------------------------------------------------
# class instrumentation


def instrument_class(cls, lock: str, fields: tuple[str, ...]):
    """Install sanitizer descriptors for one ``guarded_by`` declaration.

    Called once per decorator application (stacked decorators call it
    once per lock).  Idempotent per attribute; raises if a guarded name
    collides with an existing non-sanitizer class attribute (e.g. a
    property), which would make the static model unenforceable.
    """
    san_lock_name = f"{cls.__name__}.{lock}"
    existing = cls.__dict__.get(lock)
    if existing is None:
        setattr(cls, lock, GuardedLockAttr(lock, san_lock_name))
    elif not isinstance(existing, GuardedLockAttr):
        raise TypeError(
            f"cannot sanitize {san_lock_name}: class attribute already "
            f"defined as {type(existing).__name__}")
    for field in fields:
        existing = cls.__dict__.get(field)
        if existing is None:
            setattr(cls, field, GuardedFieldAttr(field, lock, cls.__name__))
        elif isinstance(existing, GuardedFieldAttr):
            continue  # re-declared under a second decorator: keep first
        else:
            raise TypeError(
                f"cannot sanitize {cls.__name__}.{field}: class attribute "
                f"already defined as {type(existing).__name__}")
    return cls
