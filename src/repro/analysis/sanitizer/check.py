"""``SAN001`` — observed lock-order graph must be a subset of static.

The runtime sanitizer (this package's ``runtime`` module) emits a JSON
report of every cross-thread lock-order edge actually observed while
the threaded test shard ran.  This project-scope checker diffs those
observed edges against the static ``LOCK002`` graph: an edge the
runtime saw but the static model cannot derive means the static
approximation has drifted from reality (a callback, a dynamic dispatch,
or an attribute the type inference cannot see) — exactly the silent rot
the sanitizer exists to catch.  Missing report -> no findings, so plain
lint runs are unaffected; CI's sanitizer job produces the report and
the strict static-analysis run consumes it.
"""

from __future__ import annotations

import json
import os

from repro.analysis.engine import Finding, Project, checker
from repro.analysis.locks import collect_lock_edges
from repro.analysis.sanitizer import runtime
from repro.analysis.sanitizer.runtime import DEFAULT_REPORT, REPORT_ENV

__all__ = ["load_observed_edges"]

RULES = {
    "SAN001": "runtime-observed lock-order edge missing from the static "
              "LOCK002 graph",
}

#: Runtime-only rules (emitted by the sanitizer while tests run, never by
#: this checker) — registered here so ``--list-rules``/``--explain`` cover
#: the whole SAN family in one catalogue.
RUNTIME_RULES = dict(runtime.RULES)


def load_observed_edges(root: str) -> list[dict]:
    """Observed edges from the sanitizer report, or [] when absent."""
    path = os.environ.get(REPORT_ENV) or os.path.join(root, DEFAULT_REPORT)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return []
    edges = payload.get("edges") if isinstance(payload, dict) else None
    if not isinstance(edges, list):
        return []
    return [e for e in edges
            if isinstance(e, dict) and "src" in e and "dst" in e]


def _site_anchor(project: Project, edge: dict) -> tuple[str, int]:
    """Anchor a finding at the edge's first recorded acquisition site."""
    for site in edge.get("sites", []):
        path, _, line = str(site).rpartition(":")
        if project.get(path) is not None and line.isdigit():
            return path, int(line)
    return "tools/check_baseline.json", 1  # no resolvable site: pin stably


EXAMPLES = {
    "SAN001": ("# runtime report: EvalCache._lock -> Histogram._lock\n"
               "# static LOCK002 graph: (no such edge)",
               "# teach locks.py the attribute type the edge flows through,\n"
               "# or restructure so the nested acquisition goes away"),
}


EXAMPLES.update({
    "SAN101": ('@guarded_by("_lock", "_count")\nclass C:\n    def bump(self):\n        self._count += 1  # no lock held',
               '@guarded_by("_lock", "_count")\nclass C:\n    def bump(self):\n        with self._lock:\n            self._count += 1'),
    "SAN102": ("# thread 1 acquired A._lock then B._lock;\n# thread 2 acquired B._lock then A._lock",
               "# pick one global order for A._lock and B._lock and use it\n# on every code path"),
})


@checker("sanitizer-diff", scope="project", rules={**RULES, **RUNTIME_RULES},
         examples=EXAMPLES)
def check_sanitizer_diff(project: Project) -> list[Finding]:
    observed = load_observed_edges(project.root)
    if not observed:
        return []
    static = {(e.src, e.dst) for e in collect_lock_edges(project)}
    findings: list[Finding] = []
    for edge in observed:
        key = (str(edge["src"]), str(edge["dst"]))
        if key in static:
            continue
        path, line = _site_anchor(project, edge)
        sites = ", ".join(str(s) for s in edge.get("sites", [])[:3]) or "?"
        findings.append(Finding(
            rule="SAN001", path=path, line=line, col=0,
            message=f"observed lock-order edge {key[0]} -> {key[1]} "
                    f"(seen {edge.get('count', '?')}x at {sites}) is missing "
                    f"from the static LOCK002 graph"))
    return findings
