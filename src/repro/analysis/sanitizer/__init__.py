"""Runtime concurrency sanitizer (opt-in via ``REPRO_SANITIZE=1``).

The static ``LOCK001``/``LOCK002`` checkers approximate lock discipline
from the AST; this package enforces the same :func:`guarded_by` model on
*real executions*: data descriptors assert the declared lock is held on
every guarded-field access, and a lock-acquisition recorder builds the
observed cross-thread lock-order graph whose edges the ``SAN001``
project checker diffs against the static graph.

See ``docs/STATIC_ANALYSIS.md`` ("Runtime sanitizer") for activation,
conventions, and overhead notes.
"""

from repro.analysis.sanitizer.runtime import (
    DEFAULT_REPORT,
    REPORT_ENV,
    SANITIZE_ENV,
    drain_violations,
    instrument_class,
    is_active,
    observed_edges,
    reset,
    set_active,
    violations,
    write_report,
)

__all__ = [
    "DEFAULT_REPORT",
    "REPORT_ENV",
    "SANITIZE_ENV",
    "drain_violations",
    "instrument_class",
    "is_active",
    "observed_edges",
    "reset",
    "set_active",
    "violations",
    "write_report",
]
