"""Shared cross-search evaluation cache.

FRaZ's entire cost model is the number of compressor evaluations
``e -> rho_r(D, e)`` (Fig. 6/7 count iterations, not seconds).  Before this
subsystem existed, memoisation lived only inside a single
:class:`~repro.pressio.closures.RatioFunction`, so overlapping regions
(Fig. 5), baseline comparisons, repeated time-steps and benchmark sweeps
all re-compressed identical ``(data, compressor, bound)`` triples.

:class:`EvalCache` is the process-wide answer:

* **Memory tier** — an LRU ``OrderedDict`` bounded by ``maxsize``,
  guarded by an ``RLock`` so thread-pool workers share it safely.
* **Disk tier** — optional; a JSON file under ``cache_dir`` loaded at
  construction and rewritten by :meth:`save`.  Keys are repr-stable (see
  :mod:`repro.cache.keys`), so a persisted entry hits again next process.
* **Statistics** — hit/miss/store counters plus the compress-seconds the
  hits avoided, surfaced all the way up into ``TrainingResult``.
* **Process-pool support** — the cache pickles by value (locks dropped,
  disk tier detached so workers never race on the file); workers return
  their *new* entries via :meth:`new_entries` and the parent folds them
  back with :meth:`merge_entries`, which is idempotent and last-write-wins
  deterministic because compressor evaluations are pure.
* **Batched probes** — :meth:`evaluate_many` partitions a probe list into
  hits and misses and fans only the misses through an executor.
"""

from __future__ import annotations

import json
import os
import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.cache.keys import config_hash, fingerprint_array, make_key
from repro.util.concurrency import guarded_by

if TYPE_CHECKING:  # import cycle: pressio.closures consults this package
    from repro.parallel.executor import BaseExecutor
    from repro.pressio.compressor import Compressor

__all__ = ["CacheEntry", "CacheStats", "EvalCache"]

_DISK_FILENAME = "evalcache.json"
_DISK_FORMAT = 1


@dataclass(frozen=True)
class CacheEntry:
    """One memoised compressor evaluation.

    ``seconds`` is the compress time *paid when the entry was created*;
    hits report it as time saved.  ``aux`` carries derived metrics that
    piggyback on the same probe (e.g. ``"quality:ssim"`` for
    quality-targeted searches) — absent keys simply mean that metric has
    not been computed for this bound yet.
    """

    ratio: float
    nbytes: int
    seconds: float
    aux: tuple[tuple[str, float], ...] = ()

    def aux_get(self, name: str) -> float | None:
        for k, v in self.aux:
            if k == name:
                return v
        return None

    def with_aux(self, name: str, value: float) -> "CacheEntry":
        kept = tuple((k, v) for k, v in self.aux if k != name)
        return CacheEntry(self.ratio, self.nbytes, self.seconds, kept + ((name, value),))


@dataclass
class CacheStats:
    """Counters for one cache instance (merged across process snapshots)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    seconds_saved: float = 0.0
    bytes_saved: int = 0
    disk_loads: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "seconds_saved": round(self.seconds_saved, 6),
            "bytes_saved": self.bytes_saved,
            "disk_loads": self.disk_loads,
            "hit_rate": round(self.hit_rate, 6),
        }

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _evaluate_probe(payload: tuple) -> tuple[str, float, int, float]:
    """Module-level trampoline for pool executors: one cold probe."""
    compressor, data, e, key = payload
    start = time.perf_counter()
    compressed = compressor.with_error_bound(e).compress(data)
    elapsed = time.perf_counter() - start
    return (key, compressed.ratio, compressed.nbytes, elapsed)


@guarded_by("_lock", "_entries", "_new", "stats", "_fp_cache")
class EvalCache:
    """Process-safe LRU cache of compressor evaluations, keyed by
    ``(data fingerprint, config hash, normalised bound)``.

    Parameters
    ----------
    maxsize:
        Memory-tier entry cap; least-recently-used entries are evicted.
        ``None`` means unbounded.
    cache_dir:
        Optional directory for the persistent tier.  Existing entries are
        loaded eagerly; call :meth:`save` (or use the cache as a context
        manager) to write back.
    """

    def __init__(self, maxsize: int | None = 4096, cache_dir: str | os.PathLike | None = None):
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize}")
        self.maxsize = maxsize
        self.cache_dir = (
            os.path.expanduser(os.fspath(cache_dir)) if cache_dir is not None else None
        )
        self.stats = CacheStats()
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._new: dict[str, CacheEntry] = {}
        self._lock = threading.RLock()
        self._fp_cache: dict[int, tuple[weakref.ref, str]] = {}
        if self.cache_dir is not None:
            self._load_disk()

    # -- keying helpers ---------------------------------------------------
    def key_for(self, compressor: Compressor, data: np.ndarray, error_bound: float) -> str:
        return make_key(self.data_fingerprint(data), config_hash(compressor), error_bound)

    def data_fingerprint(self, data: np.ndarray) -> str:
        """Fingerprint with an identity-based memo.

        Searches probe the same array object dozens of times; hashing its
        buffer once per object keeps key construction off the hot path.  A
        weak reference pins identity, so ``id`` reuse after garbage
        collection can never alias two different arrays.
        """
        arr = np.asarray(data)
        with self._lock:
            memo = self._fp_cache.get(id(arr))
            if memo is not None and memo[0]() is arr:
                return memo[1]
        # Hash outside the lock: fingerprinting a large buffer is the
        # expensive part, and concurrent duplicate hashes are harmless.
        fp = fingerprint_array(arr)
        with self._lock:
            if len(self._fp_cache) > 256:
                self._fp_cache.clear()
            try:
                self._fp_cache[id(arr)] = (weakref.ref(arr), fp)
            except TypeError:  # repro: ignore[EXC002]
                pass  # some array subclasses refuse weakrefs; just skip the memo
        return fp

    # -- core get/put -----------------------------------------------------
    def get(self, key: str) -> CacheEntry | None:
        """Memory-tier lookup; refreshes LRU recency and counts hit/miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self.stats.seconds_saved += entry.seconds
            return entry

    def get_aux(self, key: str, name: str, data_nbytes: int = 0) -> CacheEntry | None:
        """Lookup that only counts as a hit if aux metric ``name`` is present.

        Quality searches need the *reconstruction-derived* metric, not just
        the ratio; an entry that knows the ratio but not the metric still
        forces a compress+decompress, so it is accounted as a miss.
        ``data_nbytes`` is the input size the hit avoided re-processing.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.aux_get(name) is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            self.stats.seconds_saved += entry.seconds
            self.stats.bytes_saved += data_nbytes
            return entry

    def peek(self, key: str) -> CacheEntry | None:
        """Lookup without touching statistics or recency."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, entry: CacheEntry) -> None:
        with self._lock:
            known = self._entries.get(key)
            if known is not None:
                # Merge aux metrics rather than dropping either side.
                for name, value in entry.aux:
                    known = known.with_aux(name, value)
                entry = CacheEntry(entry.ratio, entry.nbytes, entry.seconds, known.aux)
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._new[key] = entry
            self.stats.stores += 1
            if self.maxsize is not None:
                while len(self._entries) > self.maxsize:
                    evicted_key, _ = self._entries.popitem(last=False)
                    self._new.pop(evicted_key, None)
                    self.stats.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats_dict(self) -> dict:
        """Entry count + counters, snapshotted under the cache lock.

        The ``/stats`` endpoints use this instead of reading ``.stats``
        directly: the raw field is guarded by the cache lock, and a torn
        multi-field read would pair hit/miss counts from different
        moments.
        """
        with self._lock:
            return {"entries": len(self._entries), **self.stats.as_dict()}

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    # -- evaluation front-door -------------------------------------------
    def evaluate(
        self, compressor: Compressor, data: np.ndarray, error_bound: float
    ) -> tuple[CacheEntry, bool]:
        """Return ``(entry, was_hit)`` for one probe, compressing on miss."""
        key = self.key_for(compressor, data, error_bound)
        entry = self.get(key)
        if entry is not None:
            with self._lock:
                self.stats.bytes_saved += np.asarray(data).nbytes
            return entry, True
        _, ratio, nbytes, elapsed = _evaluate_probe(
            (compressor, np.asarray(data), float(error_bound), key)
        )
        entry = CacheEntry(ratio, nbytes, elapsed)
        self.put(key, entry)
        return entry, False

    def evaluate_many(
        self,
        compressor: Compressor,
        data: np.ndarray,
        error_bounds,
        executor: BaseExecutor | None = None,
    ) -> list[CacheEntry]:
        """Batched probe path: hits answered from cache, misses fanned out.

        Independent cache-miss probes go through ``executor.map_all``
        (serial when no executor is given), then land in the cache; the
        returned list is aligned with ``error_bounds``.  Duplicate bounds
        in one batch are compressed once.
        """
        arr = np.asarray(data)
        bounds = [float(e) for e in error_bounds]
        keys = [self.key_for(compressor, arr, e) for e in bounds]
        results: dict[str, CacheEntry] = {}
        cold: dict[str, float] = {}
        for e, key in zip(bounds, keys):
            if key in results or key in cold:
                continue
            entry = self.get(key)
            if entry is not None:
                with self._lock:
                    self.stats.bytes_saved += arr.nbytes
                results[key] = entry
            else:
                cold[key] = e
        if cold:
            payloads = [(compressor, arr, e, key) for key, e in cold.items()]
            if executor is None:
                probed = [_evaluate_probe(p) for p in payloads]
            else:
                probed = executor.map_all(_evaluate_probe, payloads)
            for key, ratio, nbytes, elapsed in probed:
                entry = CacheEntry(ratio, nbytes, elapsed)
                self.put(key, entry)
                results[key] = entry
        return [results[key] for key in keys]

    # -- process-pool snapshot/merge --------------------------------------
    def new_entries(self) -> dict[str, CacheEntry]:
        """Entries stored by *this instance* since construction/unpickling.

        This is what a process-pool worker ships back: small (only what it
        actually probed) and sufficient (the parent already has the rest).
        """
        with self._lock:
            return dict(self._new)

    def drain_new_entries(self) -> dict[str, CacheEntry]:
        """Like :meth:`new_entries`, but resets the "new" set afterwards.

        This is the delta-export primitive for *long-lived* pool workers:
        a resident worker process serves many jobs from one cache, so
        shipping ``new_entries()`` (everything since construction) would
        resend the same entries with every job.  Draining after each job
        keeps the per-job delta proportional to the probes that job
        actually paid for.  The entries themselves stay in the cache —
        only the bookkeeping of what is "new" is cleared.
        """
        with self._lock:
            delta = dict(self._new)
            self._new.clear()
            return delta

    def export_entries(self) -> dict[str, CacheEntry]:
        """Snapshot of every memory-tier entry (no stats/recency effects).

        This is what a scheduler ships *to* a resident pool worker so the
        worker starts each job with the parent's accumulated knowledge;
        the worker folds it in with :meth:`merge_entries` and returns only
        its :meth:`drain_new_entries` delta.  Bounded by ``maxsize``, and
        entries are tiny (three floats plus a digest key), so the snapshot
        stays cheap to pickle even for a full cache.
        """
        with self._lock:
            return dict(self._entries)

    def merge_entries(self, entries: dict[str, CacheEntry] | None) -> int:
        """Fold a worker's new entries in; returns how many were unseen.

        Deterministic regardless of worker completion order: evaluations
        are pure functions of the key, so colliding inserts carry equal
        payloads and last-write-wins cannot diverge.  Aux metrics merge
        per-name.  Idempotent for serial/thread executors, where workers
        share this very instance.
        """
        if not entries:
            return 0
        added = 0
        with self._lock:
            for key, entry in entries.items():
                existing = self._entries.get(key)
                if existing is entry:
                    continue  # shared-instance executor: already ours
                if existing is None:
                    added += 1
                self.put(key, entry)
        return added

    def __getstate__(self) -> dict:
        # Workers get the entries by value; the lock is rebuilt on arrival
        # and the disk tier is detached so only the parent touches files.
        with self._lock:
            return {
                "maxsize": self.maxsize,
                "entries": list(self._entries.items()),
            }

    def __setstate__(self, state: dict) -> None:
        self.maxsize = state["maxsize"]
        self.cache_dir = None
        self.stats = CacheStats()
        self._entries = OrderedDict(state["entries"])
        self._new = {}
        self._lock = threading.RLock()
        self._fp_cache = {}

    # -- persistence -------------------------------------------------------
    @property
    def disk_path(self) -> str | None:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, _DISK_FILENAME)

    def _load_disk(self) -> None:
        path = self.disk_path
        if path is None or not os.path.exists(path):
            return
        try:
            with open(path, encoding="utf-8") as fh:
                blob = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return  # a corrupt/unreadable tier is an empty tier, never an error
        if blob.get("format") != _DISK_FORMAT:
            return
        with self._lock:
            for key, rec in blob.get("entries", {}).items():
                entry = CacheEntry(
                    ratio=float(rec["ratio"]),
                    nbytes=int(rec["nbytes"]),
                    seconds=float(rec["seconds"]),
                    aux=tuple((str(k), float(v)) for k, v in rec.get("aux", [])),
                )
                self._entries[key] = entry
                self.stats.disk_loads += 1

    def save(self) -> str | None:
        """Write the memory tier to the disk tier; returns the path."""
        path = self.disk_path
        if path is None:
            return None
        os.makedirs(self.cache_dir, exist_ok=True)
        with self._lock:
            blob = {
                "format": _DISK_FORMAT,
                "entries": {
                    key: {
                        "ratio": entry.ratio,
                        "nbytes": entry.nbytes,
                        "seconds": round(entry.seconds, 6),
                        **({"aux": [[k, v] for k, v in entry.aux]} if entry.aux else {}),
                    }
                    for key, entry in self._entries.items()
                },
            }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(blob, fh)
        os.replace(tmp, path)
        return path

    def __enter__(self) -> "EvalCache":
        return self

    def __exit__(self, *exc) -> None:
        self.save()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"EvalCache(entries={len(self._entries)}, hits={self.stats.hits}, "
                f"misses={self.stats.misses}, dir={self.cache_dir!r})"
            )
