"""Shared cross-search evaluation cache (see :mod:`repro.cache.evalcache`).

Public surface::

    from repro.cache import EvalCache

    cache = EvalCache(cache_dir="~/.frz-cache")   # disk tier optional
    fraz = FRaZ(compressor="sz", target_ratio=10.0, cache=cache)
    ...
    cache.save()                                   # persist for next run
"""

from repro.cache.evalcache import CacheEntry, CacheStats, EvalCache
from repro.cache.keys import (
    bound_key,
    config_hash,
    fingerprint_array,
    make_key,
    normalize_bound,
)

__all__ = [
    "CacheEntry",
    "CacheStats",
    "EvalCache",
    "bound_key",
    "config_hash",
    "fingerprint_array",
    "make_key",
    "normalize_bound",
]
