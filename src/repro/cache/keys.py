"""Cache keys: data fingerprints, compressor-config hashes, bound normalisation.

An :class:`~repro.cache.evalcache.EvalCache` entry is addressed by the
triple ``(data fingerprint, compressor config hash, error bound)`` — the
three inputs that fully determine a compressor evaluation ``rho_r(D, e)``
(compressors in this package are pure functions of their frozen
configuration, by design; see ``repro/pressio/compressor.py``).

Why each component looks the way it does:

* **Data fingerprint** — BLAKE2b over the raw buffer *plus* shape and
  dtype.  Two arrays with identical bytes but different shapes (or dtypes
  reinterpreting the same bytes) compress differently, so the structural
  metadata is part of the digest, not just the payload.
* **Config hash** — the compressor's class name and every dataclass field
  *except* the error bound (the bound is the search variable and gets its
  own key axis).  Changing any other knob (block size, codec, mode...)
  changes the hash, which is the cache's invalidation rule: there is no
  TTL, entries are invalidated by construction because a different
  configuration is a different key.
* **Bound normalisation** — raw ``float`` keys are hazardous: two bounds
  that differ only past the 12th significant digit are the same probe for
  every compressor here, yet hash to different keys (and ``repr`` round-
  trips through JSON can perturb the last bits).  :func:`normalize_bound`
  rounds to 12 significant digits, giving repr-stable keys that survive a
  JSON round-trip bit-exactly.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # import cycle: pressio.closures consults this package
    from repro.pressio.compressor import Compressor

__all__ = ["fingerprint_array", "config_hash", "normalize_bound", "bound_key", "make_key"]

#: Significant digits kept by :func:`normalize_bound`.  12 digits is far
#: below any compressor's sensitivity to the bound and well within what
#: ``repr``/JSON round-trip exactly for IEEE doubles (17 digits).
BOUND_DIGITS = 12


def fingerprint_array(data: np.ndarray) -> str:
    """Stable digest of an array's contents, shape and dtype.

    C-contiguous arrays hash their buffer directly; non-contiguous views
    are copied first (correctness over speed — fingerprints are computed
    once per search, not once per probe).
    """
    arr = np.ascontiguousarray(data)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(arr.dtype).encode())
    h.update(repr(arr.shape).encode())
    h.update(arr.view(np.uint8).data)
    return h.hexdigest()


def config_hash(compressor: "Compressor") -> str:
    """Digest of a compressor's configuration, excluding its error bound.

    The bound is the axis the search varies, so it is keyed separately;
    every *other* field participates.  Non-dataclass compressors fall back
    to ``repr`` (immutable configurations are expected to have faithful
    reprs).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(type(compressor).__qualname__.encode())
    h.update(compressor.name.encode())
    if is_dataclass(compressor):
        for f in sorted(fields(compressor), key=lambda f: f.name):
            if f.name == "error_bound":
                continue
            h.update(f.name.encode())
            h.update(repr(getattr(compressor, f.name)).encode())
    else:  # pragma: no cover - all built-ins are dataclasses
        h.update(repr(compressor).encode())
    return h.hexdigest()


def normalize_bound(error_bound: float) -> float:
    """Round a bound to :data:`BOUND_DIGITS` significant digits.

    The result is a float whose ``repr`` is stable across JSON
    round-trips, so memory-tier and disk-tier keys agree exactly.
    """
    e = float(error_bound)
    if e == 0.0 or not np.isfinite(e):
        return e
    return float(f"{e:.{BOUND_DIGITS - 1}e}")


def bound_key(error_bound: float) -> str:
    """String form of a normalised bound, used inside composite keys."""
    return repr(normalize_bound(error_bound))


def make_key(data_fp: str, cfg_hash: str, error_bound: float) -> str:
    """Composite cache key ``fingerprint:config:bound``."""
    return f"{data_fp}:{cfg_hash}:{bound_key(error_bound)}"
