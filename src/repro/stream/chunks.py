"""Chunk planning and out-of-core block reading.

The streaming pipeline never holds a whole field: :func:`plan_chunks`
tiles an N-d grid into fixed-shape blocks (the final block along each axis
may be ragged), and :class:`ChunkReader` yields those blocks one at a time
from a memory-mapped source — a ``.npy`` file (``numpy.load(mmap_mode)``),
a raw binary dump (``numpy.memmap``, shape/dtype supplied by the caller, as
SDRBench distributes its fields), or an in-memory array (for testing and
for data that happens to fit).

Chunks are cut along the *leading* axes first (C order), so each block is a
contiguous-ish slab and reading it touches a minimal number of pages.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

__all__ = ["ChunkSpec", "ChunkReader", "plan_chunks", "chunk_shape_for_budget"]


@dataclass(frozen=True)
class ChunkSpec:
    """One block of the chunk grid.

    ``index`` is the flat chunk number (C order over the grid);
    ``start``/``stop`` delimit the block per axis.  ``shape`` equals the
    nominal chunk shape except for ragged final blocks.
    """

    index: int
    start: tuple[int, ...]
    stop: tuple[int, ...]

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(b - a for a, b in zip(self.start, self.stop))

    @property
    def size(self) -> int:
        return int(np.prod(self.shape))

    @property
    def slices(self) -> tuple[slice, ...]:
        return tuple(slice(a, b) for a, b in zip(self.start, self.stop))

    def as_json(self) -> dict:
        return {"index": self.index, "start": list(self.start), "stop": list(self.stop)}

    @classmethod
    def from_json(cls, rec: dict) -> "ChunkSpec":
        return cls(
            index=int(rec["index"]),
            start=tuple(int(v) for v in rec["start"]),
            stop=tuple(int(v) for v in rec["stop"]),
        )


def chunk_shape_for_budget(
    shape: tuple[int, ...], itemsize: int, budget_bytes: int
) -> tuple[int, ...]:
    """Largest chunk shape whose buffer fits in ``budget_bytes``.

    Axes are cut outermost-first (C order): trailing axes stay whole as
    long as they fit, so blocks stay contiguous slabs.  Always returns at
    least one element per axis — a budget smaller than one row of the
    innermost axis degrades to element-thin slabs, never to failure.
    """
    if budget_bytes < 1:
        raise ValueError(f"budget_bytes must be >= 1, got {budget_bytes}")
    budget_elems = max(1, budget_bytes // itemsize)
    chunk = list(shape)
    for axis in range(len(shape)):
        rest = int(np.prod(chunk[axis + 1 :], dtype=np.int64)) if axis + 1 < len(shape) else 1
        if rest >= budget_elems:
            chunk[axis] = 1
        else:
            chunk[axis] = max(1, min(shape[axis], budget_elems // rest))
            break
    return tuple(chunk)


def plan_chunks(
    shape: tuple[int, ...], chunk_shape: tuple[int, ...]
) -> list[ChunkSpec]:
    """Tile ``shape`` into blocks of ``chunk_shape`` (ragged tails allowed)."""
    if len(chunk_shape) != len(shape):
        raise ValueError(
            f"chunk_shape {chunk_shape} must match dimensionality of {shape}"
        )
    if any(c < 1 for c in chunk_shape):
        raise ValueError(f"chunk_shape must be positive, got {chunk_shape}")
    counts = [math.ceil(s / c) for s, c in zip(shape, chunk_shape)]
    specs: list[ChunkSpec] = []
    for index, grid_pos in enumerate(np.ndindex(*counts)):
        start = tuple(g * c for g, c in zip(grid_pos, chunk_shape))
        stop = tuple(min(a + c, s) for a, c, s in zip(start, chunk_shape, shape))
        specs.append(ChunkSpec(index=index, start=start, stop=stop))
    return specs


class ChunkReader:
    """Yield fixed-shape blocks of a larger-than-memory array.

    Parameters
    ----------
    source:
        A ``.npy`` path (opened with ``mmap_mode="r"``), a raw binary path
        (``numpy.memmap``; ``shape`` and ``dtype`` are then required), or
        an ndarray already in memory.
    chunk_shape:
        Block shape; mutually exclusive with ``max_chunk_bytes``.
    max_chunk_bytes:
        Pick the largest slab shape fitting this budget instead
        (:func:`chunk_shape_for_budget`).
    shape, dtype:
        Geometry for raw binary sources (ignored otherwise).

    Iterating yields ``(ChunkSpec, ndarray)`` pairs; each array is a fresh
    in-memory **copy** of the block, so downstream compression never holds
    a reference that pins the map and peak memory stays one chunk per
    in-flight task.

    A reader opened on a path owns a memory map; :meth:`close` (or use as
    a context manager) drops it deterministically — on platforms with
    mandatory file locking a lingering map blocks directory cleanup until
    GC happens to run.  Readers over in-memory arrays close to a no-op.
    ``read`` after ``close`` raises :class:`ValueError`.
    """

    def __init__(
        self,
        source: str | os.PathLike | np.ndarray,
        chunk_shape: tuple[int, ...] | None = None,
        max_chunk_bytes: int | None = None,
        shape: tuple[int, ...] | None = None,
        dtype: np.dtype | str | None = None,
    ) -> None:
        if isinstance(source, np.ndarray):
            self._data = source
        else:
            path = Path(source)
            if path.suffix == ".npy":
                self._data = np.load(path, mmap_mode="r")
            else:
                if shape is None or dtype is None:
                    raise ValueError(
                        "raw binary sources need explicit shape= and dtype="
                    )
                self._data = np.memmap(path, mode="r", shape=tuple(shape), dtype=dtype)
        self._owns_map = not isinstance(source, np.ndarray)
        try:
            if self._data.ndim < 1:
                raise ValueError("cannot chunk a 0-d array")
            if chunk_shape is not None and max_chunk_bytes is not None:
                raise ValueError("pass chunk_shape or max_chunk_bytes, not both")
            self._shape = tuple(int(s) for s in self._data.shape)
            self._dtype = self._data.dtype
            self._nbytes = int(self._data.nbytes)
            if chunk_shape is None:
                if max_chunk_bytes is None:
                    chunk_shape = self.shape  # one chunk: the whole array
                else:
                    chunk_shape = chunk_shape_for_budget(
                        self.shape, self._data.dtype.itemsize, max_chunk_bytes
                    )
            self.chunk_shape = tuple(int(c) for c in chunk_shape)
            self.specs = plan_chunks(self.shape, self.chunk_shape)
        except BaseException:
            self.close()  # a half-built reader must not pin the map
            raise

    def close(self) -> None:
        """Release the underlying memory map (idempotent)."""
        data, self._data = self._data, None
        if data is None or not self._owns_map:
            return
        mm = getattr(data, "_mmap", None)
        if mm is not None:
            mm.close()

    @property
    def closed(self) -> bool:
        return self._data is None

    def __enter__(self) -> "ChunkReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def nbytes(self) -> int:
        return self._nbytes

    @property
    def n_chunks(self) -> int:
        return len(self.specs)

    def read(self, spec: ChunkSpec) -> np.ndarray:
        """Materialise one block as an in-memory array."""
        if self._data is None:
            raise ValueError("read on a closed ChunkReader")
        return np.array(self._data[spec.slices])

    def __iter__(self) -> Iterator[tuple[ChunkSpec, np.ndarray]]:
        for spec in self.specs:
            yield spec, self.read(spec)

    def __len__(self) -> int:
        return self.n_chunks
