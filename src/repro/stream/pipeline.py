"""Out-of-core compression pipeline: reader → tuner → sharded writer.

:func:`stream_compress` threads the pieces together: a
:class:`~repro.stream.chunks.ChunkReader` memory-maps the source and yields
blocks, a :class:`~repro.stream.tuner.ChunkTuner` trains the error bound on
a sampled prefix of chunks and reuses it with drift detection, batches of
chunks fan through a :class:`~repro.parallel.executor.BaseExecutor`, and a
:class:`~repro.stream.container.ShardWriter` appends each payload to the
output as soon as it exists.  Peak memory is bounded by the in-flight batch
(``workers`` chunks plus compression intermediates), never by the dataset:
pass ``max_memory`` and the planner sizes chunks so the whole pipeline
stays under it.

:func:`stream_decompress` is the inverse; it reassembles into memory or
into an ``.npy`` memmap for outputs that don't fit either.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.cache.evalcache import CacheEntry, EvalCache
from repro.core.training import DEFAULT_OVERLAP, DEFAULT_REGIONS
from repro.parallel.executor import BaseExecutor, SerialExecutor, make_executor
from repro.pressio.compressor import Compressor
from repro.pressio.registry import make_compressor
from repro.stream.chunks import ChunkReader
from repro.stream.container import ShardWriter, StreamedField
from repro.stream.tuner import ChunkTuner

__all__ = ["StreamResult", "stream_compress", "stream_decompress"]

#: How many times a chunk's buffer the compressors transiently allocate
#: (float64 reconstruction/residual/code planes, wavefront index arrays,
#: Huffman tables — measured ~33x steady-state for SZ on float32 input via
#: tracemalloc, plus cold-start wavefront-plan construction; see
#: tests/stream/test_pipeline.py).  The planner divides the user's memory
#: cap by this before sizing chunks, so the cap bounds the *whole
#: pipeline*, not just the raw chunk buffers.
COMPRESS_OVERHEAD_FACTOR = 64


@dataclass(frozen=True)
class StreamResult:
    """Summary of one streamed compression run."""

    path: str
    shape: tuple[int, ...]
    dtype: str
    chunk_shape: tuple[int, ...]
    n_chunks: int
    original_nbytes: int
    compressed_nbytes: int
    error_bound: float
    #: full searches beyond the initial training fit (band misses + drift).
    retrains: int
    evaluations: int
    cache_hits: int
    cache_misses: int
    in_band_chunks: int
    wall_seconds: float
    #: Seconds spent fitting the bound on the training prefix (0 for
    #: fixed-bound runs) — the "train" stage of the latency breakdown.
    train_seconds: float = 0.0

    @property
    def ratio(self) -> float:
        """Whole-file compression ratio (framing + index included)."""
        return self.original_nbytes / self.compressed_nbytes

    @property
    def mb_per_second(self) -> float:
        """End-to-end throughput over the original bytes."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.original_nbytes / 1e6 / self.wall_seconds

    def to_report(self, *, compressor: str, input: str | None = None,
                  cache: EvalCache | None = None):
        """This result as the unified :class:`~repro.api.report.StreamReport`.

        The typed report's ``to_dict()`` is the wire schema every entry
        point emits (``repro stream --json``, the service's ``/result``);
        :func:`repro.api.execute` builds its stream reports through here.
        """
        from repro.api.report import StreamReport  # lazy: stream is api-free

        return StreamReport.from_result(self, compressor=compressor,
                                        input=input, cache=cache)


def _compress_chunk(payload: tuple) -> tuple[bytes, int, float, float]:
    """Module-level trampoline (picklable for process pools): one chunk."""
    compressor, data = payload
    t0 = time.perf_counter()
    field = compressor.compress(data)
    return field.payload, field.original_nbytes, field.ratio, time.perf_counter() - t0


def _resolve_executor(executor: BaseExecutor | str | None, workers: int) -> BaseExecutor:
    if isinstance(executor, BaseExecutor):
        return executor
    if isinstance(executor, str):
        return make_executor(executor, workers)
    return SerialExecutor() if workers <= 1 else make_executor("thread", workers)


def stream_compress(
    source: str | os.PathLike | np.ndarray,
    output: str | os.PathLike,
    compressor: Compressor | str = "sz",
    target_ratio: float | None = None,
    error_bound: float | None = None,
    tolerance: float = 0.1,
    max_error_bound: float | None = None,
    chunk_shape: tuple[int, ...] | None = None,
    max_memory: int | None = None,
    workers: int = 1,
    executor: BaseExecutor | str | None = None,
    train_chunks: int = 4,
    drift_margin: float = 0.0,
    drift_window: int = 4,
    regions: int = DEFAULT_REGIONS,
    overlap: float = DEFAULT_OVERLAP,
    max_calls_per_region: int = 16,
    seed: int = 0,
    cache: EvalCache | bool = True,
    cache_dir: str | None = None,
    shape: tuple[int, ...] | None = None,
    dtype: np.dtype | str | None = None,
    metadata: dict | None = None,
) -> StreamResult:
    """Compress a larger-than-memory source into a ``.frzs`` container.

    Exactly one of ``target_ratio`` (FRaZ-tuned, trained on a prefix of
    ``train_chunks`` chunks and reused with drift detection) and
    ``error_bound`` (fixed bound, no tuning) must be given.

    ``source`` is a ``.npy`` path, a raw binary path (then ``shape`` and
    ``dtype`` are required), or an in-memory array.  ``max_memory`` caps
    the pipeline's working set in bytes — chunks are sized so that
    ``workers`` concurrent compressions plus their transient buffers
    (:data:`COMPRESS_OVERHEAD_FACTOR`) fit under it; ``chunk_shape``
    overrides the planner.
    """
    if (target_ratio is None) == (error_bound is None):
        raise ValueError("pass exactly one of target_ratio or error_bound")
    comp = make_compressor(compressor) if isinstance(compressor, str) else compressor

    max_chunk_bytes = None
    if chunk_shape is None and max_memory is not None:
        max_chunk_bytes = max(
            1, int(max_memory) // (COMPRESS_OVERHEAD_FACTOR * max(1, workers))
        )
    reader = ChunkReader(
        source,
        chunk_shape=chunk_shape,
        max_chunk_bytes=max_chunk_bytes,
        shape=shape,
        dtype=dtype,
    )

    try:
        if isinstance(cache, EvalCache):
            eval_cache: EvalCache | None = cache
        elif cache:
            eval_cache = EvalCache(cache_dir=cache_dir)
        else:
            eval_cache = None
        pool = _resolve_executor(executor, workers)

        t0 = time.perf_counter()
        train_seconds = 0.0
        tuner: ChunkTuner | None = None
        if target_ratio is not None:
            tuner = ChunkTuner(
                compressor=comp,
                target_ratio=target_ratio,
                tolerance=tolerance,
                max_error_bound=max_error_bound,
                regions=regions,
                overlap=overlap,
                max_calls_per_region=max_calls_per_region,
                executor=pool,
                cache=eval_cache,
                seed=seed,
                drift_margin=drift_margin,
                drift_window=drift_window,
            )
            n_train = max(1, min(train_chunks, reader.n_chunks))
            # Sampled prefix: blocks are read (and released) one at a time.
            tuner.fit(reader.read(spec) for spec in reader.specs[:n_train])
            train_seconds = time.perf_counter() - t0
            bound = tuner.current_bound
        else:
            bound = float(error_bound)

        in_band = 0
        batch = max(1, workers)
        with ShardWriter(
            output, reader.shape, reader.dtype, reader.chunk_shape,
            comp.name, metadata=metadata,
        ) as writer:
            for lo in range(0, reader.n_chunks, batch):
                specs = reader.specs[lo : lo + batch]
                blocks = [reader.read(s) for s in specs]
                # A retrain mid-batch invalidates the bound the rest of the
                # batch was compressed at, so the batch is processed as a
                # queue: on a bound change, the remainder is re-fanned at the
                # new bound.  Every written payload therefore carries exactly
                # the bound it was compressed with.
                i = 0
                while i < len(specs):
                    configured = comp.with_error_bound(bound)
                    batch_bound = bound
                    outputs = pool.map_all(
                        _compress_chunk, [(configured, b) for b in blocks[i:]]
                    )
                    rewound = False
                    for j, (payload, _orig, ratio, seconds) in enumerate(outputs, start=i):
                        spec, block = specs[j], blocks[j]
                        if eval_cache is not None and tuner is not None:
                            # The streamed compression *is* a probe at this
                            # bound; recording it lets a retrain verify free.
                            # (Pointless without a tuner — nothing re-probes.)
                            key = eval_cache.key_for(comp, block, batch_bound)
                            if eval_cache.peek(key) is None:
                                eval_cache.put(key, CacheEntry(ratio, len(payload), seconds))
                        retrained = False
                        if tuner is not None:
                            tuner.observe(ratio)
                            if tuner.should_retrain(ratio):
                                retrained = True
                                new_bound = tuner.retrain(block)
                                if new_bound != batch_bound:
                                    bound = new_bound
                                    payload, _orig, ratio, seconds = _compress_chunk(
                                        (comp.with_error_bound(bound), block)
                                    )
                                    writer.write_chunk(
                                        spec, payload, error_bound=bound,
                                        ratio=ratio, retrained=True,
                                    )
                                    if tuner.in_band(ratio):
                                        in_band += 1
                                    i = j + 1
                                    rewound = True
                                    break
                            if tuner.in_band(ratio):
                                in_band += 1
                        writer.write_chunk(
                            spec, payload, error_bound=batch_bound,
                            ratio=ratio, retrained=retrained,
                        )
                    if not rewound:
                        i = len(specs)
                del blocks
        compressed_nbytes = os.stat(output).st_size
    finally:
        reader.close()  # drop the map even when tuning/compression dies

    return StreamResult(
        path=os.fspath(output),
        shape=reader.shape,
        dtype=reader.dtype.str,
        chunk_shape=reader.chunk_shape,
        n_chunks=reader.n_chunks,
        original_nbytes=reader.nbytes,
        compressed_nbytes=compressed_nbytes,
        error_bound=float(bound),
        retrains=max(0, tuner.retrain_count - 1) if tuner is not None else 0,
        evaluations=tuner.evaluations if tuner is not None else 0,
        cache_hits=tuner.cache_hits if tuner is not None else 0,
        cache_misses=tuner.cache_misses if tuner is not None else 0,
        in_band_chunks=in_band if tuner is not None else reader.n_chunks,
        wall_seconds=time.perf_counter() - t0,
        train_seconds=train_seconds,
    )


def stream_decompress(
    path: str | os.PathLike,
    out: np.ndarray | str | os.PathLike | None = None,
) -> np.ndarray:
    """Reconstruct a ``.frzs`` streamed container.

    ``out=None`` returns an in-memory array; an ``.npy`` path streams the
    reconstruction into a memmap so the output never has to fit in memory;
    a preallocated array is filled in place.
    """
    with StreamedField(path) as field:
        return field.decompress(out)
