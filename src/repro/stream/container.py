"""Self-describing multi-chunk ``.frzs`` files.

A streamed field is a version-2 :mod:`repro.codecs.container` file holding
one section per chunk (``chunk:<index>``) plus a ``meta`` section written
at close: global geometry (shape, dtype, chunk shape, compressor) and a
chunk index with per-chunk metadata (grid position, error bound, ratio,
whether that chunk triggered a retrain).  Everything needed to reconstruct
the field — or any single chunk of it — lives in the file.

:class:`ShardWriter` appends chunks as the pipeline produces them (peak
memory: one payload); :class:`StreamedField` reads the index and
decompresses chunks on demand, into memory or into an ``.npy`` memmap for
outputs that don't fit.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.codecs.container import ContainerReader, ContainerWriter, is_streamed_container
from repro.pressio.registry import make_compressor
from repro.stream.chunks import ChunkSpec

__all__ = ["ShardWriter", "StreamedField", "is_streamed_file"]

_FORMAT_VERSION = 1


def is_streamed_file(path: str | os.PathLike) -> bool:
    """Whether ``path`` is a streamed multi-chunk ``.frzs`` container."""
    return is_streamed_container(path)


class ShardWriter:
    """Append compressed chunks; emits the self-describing container.

    Usage::

        with ShardWriter(path, shape, dtype, chunk_shape, "sz") as w:
            w.write_chunk(spec, payload_bytes, error_bound=e, ratio=r)
    """

    def __init__(
        self,
        path: str | os.PathLike,
        shape: tuple[int, ...],
        dtype: np.dtype | str,
        chunk_shape: tuple[int, ...],
        compressor_name: str,
        metadata: dict | None = None,
    ) -> None:
        self._writer = ContainerWriter(path)
        self._shape = tuple(int(s) for s in shape)
        self._dtype = np.dtype(dtype)
        self._chunk_shape = tuple(int(c) for c in chunk_shape)
        self._compressor_name = compressor_name
        self._metadata = metadata or {}
        self._chunks: list[dict] = []

    def write_chunk(
        self,
        spec: ChunkSpec,
        payload: bytes,
        error_bound: float,
        ratio: float,
        retrained: bool = False,
    ) -> None:
        """Append one chunk's compressed payload and stage its metadata."""
        self._writer.add(f"chunk:{spec.index}", payload)
        self._chunks.append(
            {
                **spec.as_json(),
                "nbytes": len(payload),
                "error_bound": float(error_bound),
                "ratio": float(ratio),
                "retrained": bool(retrained),
            }
        )

    @property
    def bytes_written(self) -> int:
        return self._writer.tell()

    def close(self) -> None:
        """Write the ``meta`` section (global + chunk index) and finish."""
        if self._writer is None:
            return
        meta = {
            "format_version": _FORMAT_VERSION,
            "kind": "streamed-field",
            "shape": list(self._shape),
            "dtype": self._dtype.str,
            "chunk_shape": list(self._chunk_shape),
            "compressor": self._compressor_name,
            "n_chunks": len(self._chunks),
            "original_nbytes": int(
                np.prod(self._shape, dtype=np.int64) * self._dtype.itemsize
            ),
            "chunks": self._chunks,
            "user": self._metadata,
        }
        self._writer.add("meta", json.dumps(meta).encode("utf-8"))
        self._writer.close()
        self._writer = None

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class StreamedField:
    """Random-access reader for ``.frzs`` streamed fields."""

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = Path(path)
        self._reader = ContainerReader(self._path)
        try:
            self.meta = json.loads(self._reader.get("meta").decode("utf-8"))
            if self.meta.get("kind") != "streamed-field":
                raise ValueError(f"{self._path} is not a streamed field container")
            self.shape = tuple(int(s) for s in self.meta["shape"])
            self.dtype = np.dtype(self.meta["dtype"])
            self.chunk_shape = tuple(int(c) for c in self.meta["chunk_shape"])
            self._compressor = make_compressor(self.meta["compressor"])
        except BaseException:
            self._reader.close()  # a rejected field must not leak the file
            raise

    @property
    def n_chunks(self) -> int:
        return int(self.meta["n_chunks"])

    @property
    def original_nbytes(self) -> int:
        return int(self.meta["original_nbytes"])

    @property
    def compressed_nbytes(self) -> int:
        """Whole-file size: payloads plus framing and index (auditable)."""
        return self._path.stat().st_size

    @property
    def ratio(self) -> float:
        return self.original_nbytes / self.compressed_nbytes

    def chunk_spec(self, index: int) -> ChunkSpec:
        return ChunkSpec.from_json(self.meta["chunks"][index])

    def chunk_meta(self, index: int) -> dict:
        return self.meta["chunks"][index]

    def decompress_chunk(self, index: int) -> np.ndarray:
        """Decompress one chunk (only its bytes are read from disk)."""
        spec = self.chunk_spec(index)
        payload = self._reader.get(f"chunk:{spec.index}")
        block = self._compressor.decompress(payload)
        return np.asarray(block).reshape(spec.shape)

    def decompress(self, out: np.ndarray | str | os.PathLike | None = None) -> np.ndarray:
        """Reassemble the full field chunk by chunk.

        ``out`` may be a preallocated array, a path (written as an ``.npy``
        memmap, so outputs larger than memory stream straight to disk), or
        ``None`` for a fresh in-memory array.
        """
        if out is None:
            target = np.empty(self.shape, dtype=self.dtype)
        elif isinstance(out, np.ndarray):
            if tuple(out.shape) != self.shape:
                raise ValueError(f"out has shape {out.shape}, field is {self.shape}")
            target = out
        else:
            target = np.lib.format.open_memmap(
                Path(out), mode="w+", shape=self.shape, dtype=self.dtype
            )
        for index in range(self.n_chunks):
            spec = self.chunk_spec(index)
            target[spec.slices] = self.decompress_chunk(index)
        return target

    def close(self) -> None:
        self._reader.close()

    def __enter__(self) -> "StreamedField":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
