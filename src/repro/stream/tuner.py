"""Per-chunk error-bound strategy for streamed compression.

Tuning every chunk from scratch would multiply FRaZ's search cost by the
chunk count; tuning none would let the bound rot as the field's character
changes across the domain.  :class:`ChunkTuner` does what the paper's
time-step reuse (Sec. V-C) does in time, but in space:

1. **train** on a prefix of sampled chunks — a full region-parallel search
   (:func:`repro.core.training.train`) on the first sample, then one
   verification compression per further sample, retraining (seeded with
   the carried bound) only on a band miss;
2. **reuse** the locked bound for the remaining chunks, feeding every
   achieved ratio to a :class:`repro.core.online.DriftMonitor`;
3. **retrain** when a chunk's ratio leaves the acceptance band or the
   monitor predicts it is about to — again seeded with the stale bound,
   so recovery usually costs a handful of probes.

All searches share one :class:`repro.cache.EvalCache`, so probes repeated
across chunks (the optimizer's interval-seeded probes, bisection points)
are paid once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.cache.evalcache import EvalCache
from repro.core.online import DriftMonitor
from repro.core.training import DEFAULT_OVERLAP, DEFAULT_REGIONS, train
from repro.parallel.executor import BaseExecutor
from repro.pressio.compressor import Compressor

__all__ = ["ChunkTuner"]


@dataclass
class ChunkTuner:
    """Trains an error bound on sampled chunks, reuses it with drift checks.

    Parameters mirror :class:`repro.core.fraz.FRaZ` plus:

    drift_margin, drift_window:
        :class:`~repro.core.online.DriftMonitor` knobs — when the rolling
        mean of recent chunk ratios creeps within ``drift_margin`` of a
        band edge, the next chunk retrains pre-emptively (0 disables).
    """

    compressor: Compressor
    target_ratio: float
    tolerance: float = 0.1
    max_error_bound: float | None = None
    regions: int = DEFAULT_REGIONS
    overlap: float = DEFAULT_OVERLAP
    max_calls_per_region: int = 16
    executor: BaseExecutor | None = None
    cache: EvalCache | None = None
    seed: int = 0
    drift_margin: float = 0.0
    drift_window: int = 4

    current_bound: float | None = None
    retrain_count: int = 0
    evaluations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    _drift: DriftMonitor = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.target_ratio <= 0:
            raise ValueError(f"target_ratio must be positive, got {self.target_ratio}")
        if not 0 < self.tolerance < 1:
            raise ValueError(f"tolerance must be in (0, 1), got {self.tolerance}")
        self._drift = DriftMonitor(
            band=self.band, margin=self.drift_margin, window=self.drift_window
        )

    @property
    def band(self) -> tuple[float, float]:
        return (
            self.target_ratio * (1.0 - self.tolerance),
            self.target_ratio * (1.0 + self.tolerance),
        )

    def in_band(self, ratio: float) -> bool:
        lo, hi = self.band
        return lo <= ratio <= hi

    # ------------------------------------------------------------------
    def _train_on(self, data: np.ndarray) -> float:
        """One full search (seeded with the stale bound when present)."""
        result = train(
            self.compressor,
            data,
            self.target_ratio,
            tolerance=self.tolerance,
            upper=self.max_error_bound,
            regions=self.regions,
            overlap=self.overlap,
            max_calls_per_region=self.max_calls_per_region,
            prediction=self.current_bound,
            executor=self.executor,
            seed=self.seed + self.retrain_count,
            cache=self.cache,
        )
        self.retrain_count += 1
        self.evaluations += result.evaluations
        self.cache_hits += result.cache_hits
        self.cache_misses += result.cache_misses
        self.current_bound = result.error_bound
        self._drift.reset()
        return result.error_bound

    def fit(self, training_chunks: Iterable[np.ndarray]) -> float:
        """Train on a sampled prefix of chunks; returns the locked bound.

        The first chunk pays a full search.  Each further chunk is a
        verification: with a shared cache the probe costs one compression
        at most, and a miss retrains seeded with the carried bound.
        Chunks are consumed lazily, one at a time — pass a generator and
        peak memory stays at a single chunk.
        """
        for data in training_chunks:
            if self.current_bound is None:
                self._train_on(data)
                continue
            ratio = self._verify(data)
            if not self.in_band(ratio):
                self._train_on(data)
        if self.current_bound is None:
            raise ValueError("fit needs at least one training chunk")
        return self.current_bound

    def _verify(self, data: np.ndarray) -> float:
        """Ratio at the current bound on one chunk (cache-aware)."""
        self.evaluations += 1
        if self.cache is not None:
            entry, was_hit = self.cache.evaluate(self.compressor, data, self.current_bound)
            if was_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            return entry.ratio
        self.cache_misses += 1
        configured = self.compressor.with_error_bound(self.current_bound)
        return configured.compress(data).ratio

    # ------------------------------------------------------------------
    def observe(self, ratio: float) -> None:
        """Record one streamed chunk's achieved ratio for drift tracking."""
        self._drift.observe(ratio)

    def should_retrain(self, ratio: float) -> bool:
        """Whether the chunk that achieved ``ratio`` warrants a retrain."""
        return not self.in_band(ratio) or self._drift.drifting()

    def retrain(self, data: np.ndarray) -> float:
        """Retrain on a drifting chunk; returns the new bound."""
        return self._train_on(data)
