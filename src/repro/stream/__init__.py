"""Out-of-core streamed compression (datasets larger than memory).

The in-memory path (:class:`repro.FRaZ`) needs the whole field resident
before a single probe runs, which caps usable dataset size far below the
HACC/CESM scales the paper targets.  This package removes the cap:

* :mod:`repro.stream.chunks` — chunk planning and a memory-mapped
  :class:`ChunkReader` that yields fixed-shape blocks (ragged tails
  included) from ``.npy`` / raw binary files without loading them;
* :mod:`repro.stream.tuner` — :class:`ChunkTuner`, which trains the error
  bound on a sampled prefix of chunks and reuses it, retraining on band
  misses or when a :class:`repro.core.online.DriftMonitor` predicts one;
* :mod:`repro.stream.container` — the self-describing multi-chunk
  ``.frzs`` format (:class:`ShardWriter` / :class:`StreamedField`) built
  on the version-2 streamed :mod:`repro.codecs.container` layout;
* :mod:`repro.stream.pipeline` — :func:`stream_compress` /
  :func:`stream_decompress`, fanning chunk batches through
  :mod:`repro.parallel.executor` under a caller-set memory cap while all
  searches share one :class:`repro.cache.EvalCache`.

Quickstart::

    from repro.stream import stream_compress, stream_decompress

    result = stream_compress("field.npy", "field.frzs",
                             target_ratio=10.0, max_memory=64 << 20)
    recon = stream_decompress("field.frzs")            # or out="recon.npy"
"""

from repro.stream.chunks import ChunkReader, ChunkSpec, chunk_shape_for_budget, plan_chunks
from repro.stream.container import ShardWriter, StreamedField, is_streamed_file
from repro.stream.pipeline import StreamResult, stream_compress, stream_decompress
from repro.stream.tuner import ChunkTuner

__all__ = [
    "ChunkReader",
    "ChunkSpec",
    "ChunkTuner",
    "ShardWriter",
    "StreamResult",
    "StreamedField",
    "chunk_shape_for_budget",
    "is_streamed_file",
    "plan_chunks",
    "stream_compress",
    "stream_decompress",
]
