"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compress``    fixed-ratio (FRaZ-tuned) or fixed-bound compression of a
                ``.npy`` array into a ``.frz`` file
``decompress``  reconstruct a ``.frz`` file back to ``.npy``
``tune``        run the FRaZ search and report the recommended bound
``info``        show a ``.frz`` file's metadata
``datasets``    print the Table III analog of the bundled synthetic datasets
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.core.fraz import FRaZ
from repro.datasets import dataset_summaries
from repro.io.files import load_field, read_info, save_field
from repro.pressio.registry import available_compressors, make_compressor

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FRaZ fixed-ratio error-bounded lossy compression",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_compressor_arg(p):
        p.add_argument(
            "--compressor", "-c", default="sz", choices=available_compressors(),
            help="compressor backend (default: sz)",
        )

    def add_cache_args(p):
        p.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="persist the evaluation cache under DIR; repeated runs on "
                 "the same data reuse each other's compressor probes",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="disable the shared evaluation cache entirely",
        )

    p = sub.add_parser("compress", help="compress a .npy array to .frz")
    p.add_argument("input", help="input .npy file")
    p.add_argument("output", help="output .frz file")
    add_compressor_arg(p)
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--ratio", "-r", type=float, help="target compression ratio")
    group.add_argument("--error-bound", "-e", type=float, help="fixed error bound")
    p.add_argument("--tolerance", "-t", type=float, default=0.1,
                   help="ratio tolerance eps (default 0.1)")
    p.add_argument("--max-error-bound", "-U", type=float, default=None,
                   help="cap on the bound the search may recommend")
    add_cache_args(p)

    p = sub.add_parser("decompress", help="decompress a .frz file to .npy")
    p.add_argument("input", help="input .frz file")
    p.add_argument("output", help="output .npy file")

    p = sub.add_parser("tune", help="search the error bound for a target ratio")
    p.add_argument("input", help="input .npy file")
    add_compressor_arg(p)
    p.add_argument("--ratio", "-r", type=float, required=True)
    p.add_argument("--tolerance", "-t", type=float, default=0.1)
    p.add_argument("--max-error-bound", "-U", type=float, default=None)
    add_cache_args(p)

    p = sub.add_parser("info", help="show .frz metadata")
    p.add_argument("input", help="input .frz file")

    sub.add_parser("datasets", help="list the bundled synthetic datasets")
    return parser


def _make_fraz(args) -> FRaZ:
    """Build a tuner from CLI arguments, honouring the cache flags."""
    return FRaZ(compressor=args.compressor, target_ratio=args.ratio,
                tolerance=args.tolerance, max_error_bound=args.max_error_bound,
                cache=not args.no_cache, cache_dir=args.cache_dir)


def _persist_cache(fraz: FRaZ) -> None:
    cache = fraz.evaluation_cache
    if cache is not None and cache.cache_dir is not None:
        try:
            cache.save()
        except OSError as exc:
            # An unwritable cache dir must not eat the tuning result.
            print(f"warning: could not persist evaluation cache: {exc}", file=sys.stderr)


def _cmd_compress(args) -> int:
    data = np.load(args.input)
    if args.error_bound is not None:
        compressor = make_compressor(args.compressor, error_bound=args.error_bound)
        payload = save_field(args.output, data, compressor)
        print(f"compressed at fixed bound {args.error_bound:.4e}: "
              f"ratio {payload.ratio:.2f}:1 -> {args.output}")
        return 0
    fraz = _make_fraz(args)
    payload, result = fraz.compress(data)
    _persist_cache(fraz)
    compressor = make_compressor(args.compressor, error_bound=result.error_bound)
    save_field(args.output, payload, compressor,
               metadata={"target_ratio": args.ratio, "feasible": result.feasible})
    status = "in band" if result.within_tolerance else "closest achievable"
    print(f"tuned bound {result.error_bound:.4e} ({result.evaluations} probes): "
          f"ratio {payload.ratio:.2f}:1 ({status}) -> {args.output}")
    return 0 if result.feasible else 2


def _cmd_decompress(args) -> int:
    data, meta = load_field(args.input)
    np.save(args.output, data)
    print(f"decompressed {meta['compressor']} payload "
          f"(ratio {meta['ratio']:.2f}:1) -> {args.output}")
    return 0


def _cmd_tune(args) -> int:
    data = np.load(args.input)
    fraz = _make_fraz(args)
    result = fraz.tune(data)
    _persist_cache(fraz)
    print(json.dumps({
        "compressor": args.compressor,
        "target_ratio": args.ratio,
        "error_bound": result.error_bound,
        "ratio": result.ratio,
        "feasible": result.feasible,
        "evaluations": result.evaluations,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "wall_seconds": round(result.wall_seconds, 4),
    }, indent=2))
    return 0 if result.feasible else 2


def _cmd_info(args) -> int:
    print(json.dumps(read_info(args.input), indent=2))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "compress":
        return _cmd_compress(args)
    if args.command == "decompress":
        return _cmd_decompress(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "datasets":
        print(dataset_summaries("small"))
        return 0
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
