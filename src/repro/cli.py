"""Command-line interface: ``python -m repro <command>``.

Every command that does compression work is a thin shell over the
unified request API (:mod:`repro.api`): flags become a
:class:`~repro.api.request.CompressionRequest`, :func:`repro.api.plan`
routes it, :func:`repro.api.execute` runs it, and ``--json`` prints the
typed report's wire dict — the same schema the HTTP service returns.

Commands
--------
``compress``    fixed-ratio (FRaZ-tuned) or fixed-bound compression of a
                ``.npy`` array into a ``.frz`` file
``stream``      out-of-core chunked compression of a larger-than-memory
                ``.npy``/raw-binary file into a ``.frzs`` container
``decompress``  reconstruct a ``.frz``/``.frzs`` file back to ``.npy``
``tune``        run the FRaZ search and report the recommended bound
``run``         execute a ``CompressionRequest`` JSON spec (locally, or
                against a service with ``--url``)
``serve``       run the resident compression service (HTTP JSON API);
                ``--register`` joins a gateway fleet as one shard
``gateway``     front N ``serve`` nodes with one endpoint: consistent-hash
                routing, heartbeats, draining, failover
``submit``      send one job to a running ``serve`` instance
``trace``       fetch a job's span tree from a service/gateway and render
                it as a waterfall (see docs/TRACING.md)
``load``        open-loop load harness with SLO gating (``BENCH_*`` snapshots)
``check``       run the static-analysis suite (lock discipline, clock
                convention, wire-protocol drift; see docs/STATIC_ANALYSIS.md)
``info``        show a ``.frz``/``.frzs`` file's metadata
``datasets``    print the Table III analog of the bundled synthetic datasets
"""

from __future__ import annotations

import argparse
import json
import math
import sys

import numpy as np

from repro import __version__
from repro.api.execute import execute as api_execute
from repro.api.plan import plan as api_plan
from repro.api.request import CompressionRequest, Resources
from repro.datasets import dataset_summaries
from repro.io.files import read_info
from repro.pressio.registry import available_compressors

__all__ = ["main", "build_parser", "parse_memory_size", "parse_chunk_shape"]


def parse_memory_size(text: str) -> int:
    """Parse ``"64MB"``/``"2GiB"``/``"1048576"`` into bytes."""
    units = {"": 1, "b": 1,
             "kb": 10**3, "mb": 10**6, "gb": 10**9,
             "kib": 2**10, "mib": 2**20, "gib": 2**30,
             "k": 2**10, "m": 2**20, "g": 2**30}
    s = text.strip().lower()
    digits = s.rstrip("bgikm")
    try:
        value = float(digits)
        scale = units[s[len(digits):]]
    except (ValueError, KeyError):
        raise argparse.ArgumentTypeError(
            f"invalid memory size {text!r} (try 64MB, 2GiB, 1048576)"
        ) from None
    if not math.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(f"memory size must be positive: {text!r}")
    return int(value * scale)


def parse_priority(text: str) -> int:
    """Parse ``high``/``normal``/``low`` or a raw integer priority."""
    from repro.serve.jobs import PRIORITY_NAMES

    key = text.strip().lower()
    if key in PRIORITY_NAMES:
        return PRIORITY_NAMES[key]
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid priority {text!r} (try high, normal, low, or an integer)"
        ) from None


def parse_chunk_shape(text: str) -> tuple[int, ...]:
    """Parse ``"64,64,32"`` into a shape tuple."""
    try:
        shape = tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid chunk shape {text!r} (try 64,64,32)"
        ) from None
    if not shape or any(c < 1 for c in shape):
        raise argparse.ArgumentTypeError(f"chunk shape must be positive: {text!r}")
    return shape


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FRaZ fixed-ratio error-bounded lossy compression",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_compressor_arg(p):
        p.add_argument(
            "--compressor", "-c", default="sz", choices=available_compressors(),
            help="compressor backend (default: sz)",
        )

    def add_cache_args(p):
        p.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="persist the evaluation cache under DIR; repeated runs on "
                 "the same data reuse each other's compressor probes",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="disable the shared evaluation cache entirely",
        )

    p = sub.add_parser("compress", help="compress a .npy array to .frz")
    p.add_argument("input", help="input .npy file")
    p.add_argument("output", help="output .frz file")
    add_compressor_arg(p)
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--ratio", "-r", type=float, help="target compression ratio")
    group.add_argument("--error-bound", "-e", type=float, help="fixed error bound")
    p.add_argument("--tolerance", "-t", type=float, default=0.1,
                   help="ratio tolerance eps (default 0.1)")
    p.add_argument("--max-error-bound", "-U", type=float, default=None,
                   help="cap on the bound the search may recommend")
    p.add_argument("--json", action="store_true",
                   help="print the machine-readable result schema instead of "
                        "the human summary (same schema the service returns)")
    add_cache_args(p)

    p = sub.add_parser(
        "stream",
        help="out-of-core chunked compression to a .frzs container",
        description="Compress a larger-than-memory .npy or raw binary file "
                    "chunk by chunk, training the error bound on a prefix of "
                    "chunks and reusing it with drift detection.",
    )
    p.add_argument("input", help="input .npy file (or raw binary with --shape/--dtype)")
    p.add_argument("output", help="output .frzs container")
    add_compressor_arg(p)
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--ratio", "-r", type=float, help="target compression ratio")
    group.add_argument("--error-bound", "-e", type=float, help="fixed error bound")
    p.add_argument("--tolerance", "-t", type=float, default=0.1,
                   help="ratio tolerance eps (default 0.1)")
    p.add_argument("--max-error-bound", "-U", type=float, default=None,
                   help="cap on the bound the search may recommend")
    p.add_argument("--chunk-shape", type=parse_chunk_shape, default=None,
                   metavar="N,N,...",
                   help="explicit chunk shape, e.g. 64,64,32 (default: sized "
                        "from --max-memory, or one chunk)")
    p.add_argument("--max-memory", type=parse_memory_size, default=None,
                   metavar="SIZE",
                   help="pipeline working-set cap, e.g. 64MB; chunks are "
                        "sized so compression stays under it")
    p.add_argument("--workers", "-j", type=int, default=1,
                   help="chunks compressed concurrently (default 1)")
    p.add_argument("--executor", choices=("serial", "thread", "process"),
                   default=None,
                   help="executor backend (default: thread when --workers > 1)")
    p.add_argument("--train-chunks", type=int, default=4,
                   help="chunks in the tuning prefix (default 4)")
    p.add_argument("--drift-margin", type=float, default=0.0,
                   help="pre-emptive retrain margin in (0, 1); 0 disables")
    p.add_argument("--shape", type=parse_chunk_shape, default=None, metavar="N,N,...",
                   help="array shape for raw (non-.npy) binary input")
    p.add_argument("--dtype", default=None,
                   help="array dtype for raw binary input, e.g. float32")
    p.add_argument("--json", action="store_true",
                   help="print the machine-readable result schema instead of "
                        "the human summary (same schema the service returns)")
    add_cache_args(p)

    p = sub.add_parser("decompress", help="decompress a .frz/.frzs file to .npy")
    p.add_argument("input", help="input .frz or .frzs file")
    p.add_argument("output", help="output .npy file")

    p = sub.add_parser("tune", help="search the error bound for a target ratio")
    p.add_argument("input", help="input .npy file")
    add_compressor_arg(p)
    p.add_argument("--ratio", "-r", type=float, required=True)
    p.add_argument("--tolerance", "-t", type=float, default=0.1)
    p.add_argument("--max-error-bound", "-U", type=float, default=None)
    p.add_argument("--json", action="store_true",
                   help="print the full machine-readable result schema "
                        "(shared with the service) instead of the compact report")
    add_cache_args(p)

    p = sub.add_parser(
        "run",
        help="execute a CompressionRequest JSON spec",
        description="Read a repro.api CompressionRequest from a JSON file "
                    "(or stdin with '-'), plan it, and execute it — locally "
                    "by default, or submitted to a running service with "
                    "--url.  Prints the typed report as JSON either way, so "
                    "one request file produces the same result through every "
                    "entry point.  See docs/API.md.",
    )
    p.add_argument("request", help="path to a request JSON file, or '-' for stdin")
    p.add_argument("--url", default=None,
                   help="submit to a running `repro serve` endpoint instead "
                        "of executing locally")
    p.add_argument("--priority", type=parse_priority, default=0,
                   help="service priority (with --url): high, normal, low, "
                        "or an integer")
    p.add_argument("--max-retries", type=int, default=1,
                   help="service retry budget (with --url; default 1)")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="seconds to wait for a service result (default 300)")

    p = sub.add_parser(
        "serve",
        help="run the resident compression service",
        description="Start an HTTP JSON service that accepts tune/compress "
                    "jobs, coalesces identical concurrent requests, shares "
                    "one evaluation cache across all jobs, and applies "
                    "backpressure when the queue fills.  See docs/SERVICE.md.",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8077,
                   help="TCP port (default 8077; 0 picks a free port)")
    p.add_argument("--workers", "-j", type=int, default=None,
                   help="concurrent jobs (default: one per core)")
    p.add_argument("--executor", choices=("auto", "thread", "process"),
                   default="auto",
                   help="job execution backend: process pools scale CPU-bound "
                        "jobs across cores, threads avoid pickling overhead "
                        "for tiny jobs (default auto: process on multi-core "
                        "hosts)")
    p.add_argument("--queue-size", type=int, default=64,
                   help="pending-job bound before 429 backpressure (default 64)")
    p.add_argument("--intra-executor", choices=("serial", "thread", "process"),
                   default="serial",
                   help="executor for the fan-out inside one job (default serial)")
    p.add_argument("--intra-workers", type=int, default=1,
                   help="pool size for --intra-executor (default 1)")
    p.add_argument("--stream-threshold", type=parse_memory_size,
                   default=32 * 2**20, metavar="SIZE",
                   help="file inputs above SIZE are compressed out of core "
                        "via the stream pipeline (default 32MiB)")
    p.add_argument("--spill-threshold", type=parse_memory_size,
                   default=8 * 2**20, metavar="SIZE",
                   help="inline arrays above SIZE are spilled to a temp file "
                        "before process-pool dispatch instead of being "
                        "pickled (default 8MiB)")
    p.add_argument("--max-memory", type=parse_memory_size, default=None,
                   metavar="SIZE", help="per-job working-set cap for streamed jobs")
    p.add_argument("--verbose", action="store_true", help="log every HTTP request")
    p.add_argument("--metrics", action=argparse.BooleanOptionalAction, default=True,
                   help="expose GET /metrics (Prometheus text) and the "
                        "/stats metrics section (default on; --no-metrics "
                        "disables the observability layer)")
    p.add_argument("--register", default=None, metavar="GATEWAY_URL",
                   help="join a `repro gateway` fleet: register this node at "
                        "GATEWAY_URL and heartbeat for liveness "
                        "(see docs/GATEWAY.md)")
    p.add_argument("--node-id", default=None,
                   help="stable fleet identity (with --register; default "
                        "node-<host>-<port>)")
    p.add_argument("--advertise-url", default=None,
                   help="URL the gateway should reach this node at (with "
                        "--register; default the bound host:port)")
    p.add_argument("--heartbeat-interval", type=float, default=None,
                   metavar="SECONDS",
                   help="heartbeat cadence override (with --register; default: "
                        "whatever the gateway's registration response says)")
    p.add_argument("--trace-sample", type=float, default=1.0, metavar="RATE",
                   help="fraction of jobs traced end to end (head-based "
                        "sampling in [0, 1]; default 1.0 — failed jobs are "
                        "always recorded regardless; see docs/TRACING.md)")
    p.add_argument("--log-json", action="store_true",
                   help="emit structured JSON log lines (one object per "
                        "event, stamped with trace_id/job_id/node_id) "
                        "to stderr")
    add_cache_args(p)

    p = sub.add_parser(
        "gateway",
        help="run the sharded-fleet gateway",
        description="Front N `repro serve` nodes with one endpoint: jobs "
                    "route to shards by consistent-hashing the coalesce key, "
                    "nodes heartbeat for liveness, operators drain nodes for "
                    "maintenance (POST /admin/drain/<node>), and jobs owed by "
                    "a dead node fail over to surviving shards.  Start nodes "
                    "with `repro serve --register <gateway-url>`.  See "
                    "docs/GATEWAY.md.",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8076,
                   help="TCP port (default 8076; 0 picks a free port)")
    p.add_argument("--heartbeat-interval", type=float, default=1.0,
                   metavar="SECONDS",
                   help="cadence nodes are told to heartbeat at (default 1.0)")
    p.add_argument("--dead-after", type=float, default=3.0, metavar="SECONDS",
                   help="heartbeat silence before a node is declared dead and "
                        "its un-acked jobs fail over (default 3.0)")
    p.add_argument("--check-interval", type=float, default=0.25, metavar="SECONDS",
                   help="death-detection poll period (default 0.25)")
    p.add_argument("--replicas", type=int, default=64,
                   help="virtual points per node on the hash ring (default 64)")
    p.add_argument("--verbose", action="store_true", help="log every HTTP request")
    p.add_argument("--metrics", action=argparse.BooleanOptionalAction, default=True,
                   help="expose GET /metrics (repro_gateway_* series; "
                        "default on)")
    p.add_argument("--trace-sample", type=float, default=1.0, metavar="RATE",
                   help="fraction of jobs traced end to end (the gateway's "
                        "head decision propagates to the owning shard via "
                        "the traceparent header; default 1.0)")
    p.add_argument("--log-json", action="store_true",
                   help="emit structured JSON log lines (one object per "
                        "event, stamped with trace_id/job_id) to stderr")

    p = sub.add_parser(
        "submit",
        help="submit one job to a running service",
        description="Send a tune or compress job to a `repro serve` instance "
                    "and (by default) wait for and print its result.",
    )
    p.add_argument("kind", choices=("tune", "compress", "decompress", "stream"),
                   help="job type")
    p.add_argument("input", help="input .npy file")
    p.add_argument("output", nargs="?", default=None,
                   help="output path (required for compress jobs)")
    add_compressor_arg(p)
    p.add_argument("--url", default="http://127.0.0.1:8077",
                   help="service endpoint (default http://127.0.0.1:8077)")
    group = p.add_mutually_exclusive_group()
    group.add_argument("--ratio", "-r", type=float, default=None,
                       help="target compression ratio")
    group.add_argument("--error-bound", "-e", type=float, default=None,
                       help="fixed error bound (compress only)")
    p.add_argument("--tolerance", "-t", type=float, default=0.1)
    p.add_argument("--max-error-bound", "-U", type=float, default=None)
    p.add_argument("--priority", type=parse_priority, default=0,
                   help="high, normal, low, or an integer (lower runs sooner)")
    p.add_argument("--max-retries", type=int, default=1,
                   help="extra attempts the service may make on failure (default 1)")
    p.add_argument("--inline", action="store_true",
                   help="ship the array inline instead of referencing the "
                        "path (use when the server cannot see your files)")
    p.add_argument("--no-wait", action="store_true",
                   help="print the job ticket and exit without waiting")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="seconds to wait for the result (default 300)")

    p = sub.add_parser(
        "trace",
        help="fetch and render a job's span tree",
        description="Fetch the distributed trace of a job from a running "
                    "`repro serve` node or `repro gateway` (GET /trace/<id>) "
                    "and render it as an indented waterfall with self-times "
                    "— down to one span per FRaZ search iteration.  Accepts "
                    "a job id (node `j...`, gateway `g...`) or a raw 32-hex "
                    "trace id.  See docs/TRACING.md.",
    )
    p.add_argument("job_id", help="job id or 32-hex trace id")
    p.add_argument("--url", default="http://127.0.0.1:8077",
                   help="service or gateway endpoint "
                        "(default http://127.0.0.1:8077)")
    p.add_argument("--json", action="store_true",
                   help="print the raw span dicts instead of the waterfall")
    p.add_argument("--width", type=int, default=32,
                   help="waterfall bar width in characters (default 32)")

    p = sub.add_parser(
        "load",
        help="open-loop load harness with SLO gating",
        description="Replay a recorded request mix against a service (or an "
                    "embedded one) at a target RPS, report latency quantiles "
                    "and jobs/sec, check them against benchmarks/slo.json, "
                    "and write a diffable BENCH_<profile>.json snapshot.  "
                    "Exits non-zero on any SLO violation.  See "
                    "docs/OBSERVABILITY.md.",
    )
    from repro.obs.load import add_arguments as add_load_arguments

    add_load_arguments(p)

    p = sub.add_parser(
        "check",
        help="static analysis: locks, clocks, wire protocol, banned patterns",
        description="Dependency-free AST lint over src/repro: guarded-by "
                    "lock discipline and lock-order cycles (LOCK*), the "
                    "monotonic-clock convention (MONO*), wire-protocol "
                    "drift between server/gateway/client (WIRE*), and "
                    "banned patterns (BAN*).  Exits 1 on any new finding. "
                    "See docs/STATIC_ANALYSIS.md.",
    )
    from repro.analysis.engine import build_check_parser

    build_check_parser(p)

    p = sub.add_parser("info", help="show .frz metadata")
    p.add_argument("input", help="input .frz file")

    sub.add_parser("datasets", help="list the bundled synthetic datasets")
    return parser


def _cache_resources(args, **extra) -> Resources:
    """The resource block shared by every cache-aware subcommand."""
    return Resources(cache=not args.no_cache, cache_dir=args.cache_dir, **extra)


def _cmd_compress(args) -> int:
    request = CompressionRequest(
        kind="compress",
        compressor=args.compressor,
        target_ratio=args.ratio,
        error_bound=args.error_bound,
        tolerance=args.tolerance,
        max_error_bound=args.max_error_bound,
        input=args.input,
        output=args.output,
        stream=False,  # `repro compress` is the in-memory command; see `repro stream`
        resources=_cache_resources(args),
    )
    report = api_execute(api_plan(request))
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    elif report.tuning is None:
        print(f"compressed at fixed bound {report.error_bound:.4e}: "
              f"ratio {report.ratio:.2f}:1 -> {args.output}")
    else:
        status = "in band" if report.tuning.within_tolerance else "closest achievable"
        print(f"tuned bound {report.error_bound:.4e} "
              f"({report.tuning.evaluations} probes): "
              f"ratio {report.ratio:.2f}:1 ({status}) -> {args.output}")
    return 0 if report.feasible else 2


def _cmd_stream(args) -> int:
    stream_options: dict = {
        "train_chunks": args.train_chunks,
        "drift_margin": args.drift_margin,
    }
    if args.chunk_shape is not None:
        stream_options["chunk_shape"] = args.chunk_shape
    if args.shape is not None:
        stream_options["shape"] = args.shape
    if args.dtype is not None:
        stream_options["dtype"] = args.dtype
    request = CompressionRequest(
        kind="stream",
        compressor=args.compressor,
        target_ratio=args.ratio,
        error_bound=args.error_bound,
        tolerance=args.tolerance,
        max_error_bound=args.max_error_bound,
        input=args.input,
        output=args.output,
        stream_options=stream_options,
        resources=_cache_resources(
            args,
            workers=args.workers,
            executor=args.executor,
            max_memory=args.max_memory,
        ),
    )
    report = api_execute(api_plan(request))
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0
    chunk_desc = "x".join(str(c) for c in report.chunk_shape)
    print(f"streamed {report.n_chunks} chunks of {chunk_desc} "
          f"({report.original_nbytes / 1e6:.1f} MB) at bound "
          f"{report.error_bound:.4e}: ratio {report.ratio:.2f}:1, "
          f"{report.mb_per_second:.2f} MB/s, {report.retrains} retrains "
          f"-> {report.output}")
    if args.ratio is not None and report.in_band_chunks < report.n_chunks:
        print(f"note: {report.n_chunks - report.in_band_chunks}/{report.n_chunks} "
              f"chunks landed outside the ratio band", file=sys.stderr)
    return 0


def _cmd_decompress(args) -> int:
    request = CompressionRequest(kind="decompress", input=args.input,
                                 output=args.output)
    report = api_execute(api_plan(request))
    if report.from_stream:
        print(f"decompressed {report.compressor} streamed container "
              f"({report.n_chunks} chunks, ratio {report.ratio:.2f}:1) "
              f"-> {report.output}")
    else:
        print(f"decompressed {report.compressor} payload "
              f"(ratio {report.ratio:.2f}:1) -> {args.output}")
    return 0


def _cmd_tune(args) -> int:
    request = CompressionRequest(
        kind="tune",
        compressor=args.compressor,
        target_ratio=args.ratio,
        tolerance=args.tolerance,
        max_error_bound=args.max_error_bound,
        input=args.input,
        resources=_cache_resources(args),
    )
    report = api_execute(api_plan(request))
    if args.json:
        payload = report.to_dict()
    else:
        payload = {
            "compressor": args.compressor,
            "target_ratio": args.ratio,
            "error_bound": report.error_bound,
            "ratio": report.ratio,
            "feasible": report.feasible,
            "evaluations": report.evaluations,
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "wall_seconds": round(report.wall_seconds, 4),
        }
    print(json.dumps(payload, indent=2))
    return 0 if report.feasible else 2


def _report_exit_code(result: dict) -> int:
    """0 unless the (possibly nested) tuning verdict says infeasible."""
    feasible = result.get("feasible")
    if feasible is None and isinstance(result.get("tuning"), dict):
        feasible = result["tuning"].get("feasible")
    return 0 if feasible in (None, True) else 2


def _cmd_run(args) -> int:
    from pathlib import Path

    try:
        text = sys.stdin.read() if args.request == "-" else Path(args.request).read_text()
    except OSError as exc:
        print(f"error: cannot read request file: {exc}", file=sys.stderr)
        return 2
    try:
        request = CompressionRequest.from_json(text)
    except (ValueError, TypeError) as exc:
        print(f"error: invalid request: {exc}", file=sys.stderr)
        return 2
    if args.url is None:
        report = api_execute(api_plan(request))
        print(json.dumps(report.to_dict(), indent=2))
        return _report_exit_code(report.to_dict())

    from repro.serve import JobFailedError, ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        ticket = client.submit(request, priority=args.priority,
                               max_retries=args.max_retries)
        result = client.result(ticket["job_id"], timeout=args.timeout)
    except JobFailedError as exc:
        print(f"error: job failed: {exc}", file=sys.stderr)
        return 1
    except (ServiceError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2))
    return _report_exit_code(result)


def _cmd_serve(args) -> int:
    from repro.obs.tracelog import TraceLogger
    from repro.serve import ServiceServer

    logger = (TraceLogger("node", json_lines=True) if args.log_json else None)
    server = ServiceServer(
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        workers=args.workers,
        executor=args.executor,
        queue_size=args.queue_size,
        cache=not args.no_cache,
        cache_dir=args.cache_dir,
        intra_executor=args.intra_executor,
        intra_workers=args.intra_workers,
        stream_threshold=args.stream_threshold,
        spill_threshold=args.spill_threshold,
        max_memory=args.max_memory,
        metrics=args.metrics,
        trace_sample=args.trace_sample,
        logger=logger,
        register=args.register,
        node_id=args.node_id,
        advertise_url=args.advertise_url,
        heartbeat_interval=args.heartbeat_interval,
    )
    shard = (f", registering with {args.register} as {server.agent.node_id}"
             if server.agent is not None else "")
    print(f"repro serve listening on {server.url} "
          f"({server.scheduler.workers} {server.scheduler.executor_mode} workers, "
          f"queue {args.queue_size}{shard})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _cmd_gateway(args) -> int:
    from repro.gateway import GatewayServer
    from repro.obs.tracelog import TraceLogger

    logger = (TraceLogger("gateway", json_lines=True) if args.log_json else None)
    server = GatewayServer(
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        heartbeat_interval=args.heartbeat_interval,
        dead_after=args.dead_after,
        check_interval=args.check_interval,
        replicas=args.replicas,
        metrics=args.metrics,
        trace_sample=args.trace_sample,
        logger=logger,
    )
    print(f"repro gateway listening on {server.url} "
          f"(heartbeat {args.heartbeat_interval:g}s, dead after "
          f"{args.dead_after:g}s); register nodes with "
          f"`repro serve --register {server.url}`",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _cmd_submit(args) -> int:
    import os

    from repro.api.request import encode_array
    from repro.serve import JobFailedError, ServiceClient, ServiceError

    if args.kind == "tune" and args.ratio is None:
        print("error: tune jobs require --ratio", file=sys.stderr)
        return 2
    if args.kind != "tune" and args.output is None:
        print(f"error: {args.kind} jobs require an output path", file=sys.stderr)
        return 2
    fields: dict = {
        "kind": args.kind,
        "compressor": args.compressor,
        "target_ratio": args.ratio,
        "error_bound": args.error_bound,
        "tolerance": args.tolerance,
        "max_error_bound": args.max_error_bound,
    }
    if args.inline and args.kind != "decompress":
        fields["data_b64"] = encode_array(np.load(args.input))
    else:
        fields["input"] = os.path.abspath(args.input)
    if args.output is not None:
        fields["output"] = os.path.abspath(args.output)
    try:
        request = CompressionRequest(**fields)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    client = ServiceClient(args.url)
    try:
        ticket = client.submit(request, priority=args.priority,
                               max_retries=args.max_retries)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.no_wait:
        print(json.dumps(ticket, indent=2))
        return 0
    try:
        result = client.result(ticket["job_id"], timeout=args.timeout)
    except JobFailedError as exc:
        print(f"error: job {ticket['job_id']} failed: {exc}", file=sys.stderr)
        return 1
    except (ServiceError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2))
    return _report_exit_code(result)


def _cmd_trace(args) -> int:
    from repro.obs.trace import render_waterfall
    from repro.serve import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        payload = client.trace(args.job_id)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(render_waterfall(payload.get("spans") or [], width=args.width))
    if not payload.get("complete"):
        print("note: job still in flight — the tree above is partial",
              file=sys.stderr)
    return 0


def _cmd_info(args) -> int:
    from repro.stream import is_streamed_file

    if is_streamed_file(args.input):
        from repro.stream import StreamedField

        with StreamedField(args.input) as field:
            meta = dict(field.meta)
            # The per-chunk index can run to thousands of records; summarise.
            chunks = meta.pop("chunks", [])
            meta["ratio"] = round(field.ratio, 4)
            meta["compressed_nbytes"] = field.compressed_nbytes
            meta["retrained_chunks"] = sum(1 for c in chunks if c.get("retrained"))
            # sort_keys: scripts diff/parse this output, keep it stable.
            print(json.dumps(meta, indent=2, sort_keys=True))
        return 0
    print(json.dumps(read_info(args.input), indent=2, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "compress":
        return _cmd_compress(args)
    if args.command == "stream":
        return _cmd_stream(args)
    if args.command == "decompress":
        return _cmd_decompress(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "gateway":
        return _cmd_gateway(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "load":
        from repro.obs.load import run_from_args

        return run_from_args(args)
    if args.command == "check":
        from repro.analysis.engine import run_from_args

        return run_from_args(args)
    if args.command == "info":
        return _cmd_info(args)
    if args.command == "datasets":
        print(dataset_summaries("small"))
        return 0
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
