"""The one request type behind every entry point.

A :class:`CompressionRequest` is a frozen, JSON-serialisable description
of one unit of compression work — tune a bound, compress (in memory or
out of core), decompress, or stream — validated *at construction* so an
invalid request can never reach an execution layer.  The Python facade
(:func:`repro.api.execute`), the ``repro`` CLI, the HTTP service
(:class:`repro.serve.jobs.JobSpec` is this request plus scheduling
fields), and the stream pipeline all construct and consume the same
type, so a request round-trips bit-identically through any entry point.

Field groups:

* **what** — ``kind`` (one of :data:`REQUEST_KINDS`), ``compressor``
  (registry name) plus ``options`` (constructor options, validated
  against :func:`repro.pressio.registry.compressor_option_names`);
* **objective** — exactly one of ``target_ratio`` (FRaZ-tuned) and
  ``error_bound`` (fixed), with ``tolerance`` and ``max_error_bound``;
* **data** — exactly one of ``input`` (a path) and ``data_b64`` (a
  base64 ``.npy`` shipped inline), plus ``output``;
* **routing** — ``stream`` forces/forbids the out-of-core pipeline for
  ``kind="compress"`` (``None`` lets :func:`repro.api.plan` decide by
  input size) and ``stream_options`` tunes it;
* **resources** — a :class:`Resources` block (workers, executor,
  memory cap, cache policy) the executing host may honour or override.
"""

from __future__ import annotations

import base64
import io
import json
from dataclasses import dataclass, field, fields

import numpy as np

from repro.errors import RequestError
from repro.pressio.registry import available_compressors, compressor_option_names

__all__ = ["REQUEST_KINDS", "Resources", "CompressionRequest", "encode_array"]

#: Request kinds, in the order the docs present them.
REQUEST_KINDS = ("tune", "compress", "decompress", "stream")

_EXECUTORS = ("serial", "thread", "process")

#: ``stream_options`` keys (forwarded to
#: :func:`repro.stream.pipeline.stream_compress`).
STREAM_OPTION_KEYS = (
    "chunk_shape",
    "train_chunks",
    "drift_margin",
    "drift_window",
    "shape",
    "dtype",
)

#: Objective fields that must never hide inside ``options``.
_RESERVED_OPTIONS = ("error_bound", "target_ratio", "tolerance", "max_error_bound")


def encode_array(data: np.ndarray) -> str:
    """Base64-``.npy`` encoding for the ``data_b64`` field."""
    buf = io.BytesIO()
    np.save(buf, np.asarray(data), allow_pickle=False)
    return base64.b64encode(buf.getvalue()).decode("ascii")


def _shape_tuple(value, label: str) -> tuple[int, ...]:
    try:
        shape = tuple(int(c) for c in value)
    except (TypeError, ValueError):
        raise RequestError(f"{label} must be a sequence of ints, got {value!r}") from None
    if not shape or any(c < 1 for c in shape):
        raise RequestError(f"{label} must be positive ints, got {value!r}")
    return shape


@dataclass(frozen=True)
class Resources:
    """Execution-resource hints riding with a request.

    Every field defaults to "unset" (``None``) so the executing host can
    fill the gaps from its own configuration: the CLI applies its flags,
    the service applies its scheduler policy.  ``cache``/``cache_dir``
    describe the evaluation-cache policy for *locally executed* requests;
    the service keeps its own shared cache regardless (coalescing and
    cross-job reuse depend on it).
    """

    workers: int | None = None
    executor: str | None = None
    max_memory: int | None = None
    cache: bool = True
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        if self.workers is not None and (
            isinstance(self.workers, bool) or not isinstance(self.workers, int)
        ):
            raise RequestError(f"resources.workers must be an int, got {self.workers!r}")
        if self.executor is not None and self.executor not in _EXECUTORS:
            raise RequestError(
                f"resources.executor must be one of {_EXECUTORS}, got {self.executor!r}"
            )
        if self.max_memory is not None:
            if isinstance(self.max_memory, bool) or not isinstance(self.max_memory, int):
                raise RequestError(
                    f"resources.max_memory must be an int, got {self.max_memory!r}"
                )
            if self.max_memory <= 0:
                raise RequestError(
                    f"resources.max_memory must be positive, got {self.max_memory}"
                )
        if not isinstance(self.cache, bool):
            raise RequestError(f"resources.cache must be a bool, got {self.cache!r}")

    @classmethod
    def coerce(cls, value: "Resources | dict | None") -> "Resources":
        """Normalise a JSON dict (or ``None``) into a :class:`Resources`."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if not isinstance(value, dict):
            raise RequestError(f"resources must be an object, got {type(value).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(value) - known
        if unknown:
            raise RequestError(f"unknown resources fields: {sorted(unknown)}")
        return cls(**value)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class CompressionRequest:
    """One typed, validated unit of compression work (see module docs)."""

    kind: str
    compressor: str = "sz"
    options: dict = field(default_factory=dict)
    target_ratio: float | None = None
    error_bound: float | None = None
    tolerance: float = 0.1
    max_error_bound: float | None = None
    input: str | None = None
    data_b64: str | None = None
    output: str | None = None
    stream: bool | None = None
    stream_options: dict = field(default_factory=dict)
    resources: Resources = field(default_factory=Resources)

    # -- validation --------------------------------------------------------
    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise RequestError(f"kind must be one of {REQUEST_KINDS}, got {self.kind!r}")
        object.__setattr__(self, "resources", Resources.coerce(self.resources))
        self._validate_field_types()
        self._validate_compressor_options()
        self._validate_data_fields()
        self._validate_objective()
        self._validate_stream_fields()

    def _validate_compressor_options(self) -> None:
        if not isinstance(self.options, dict) or any(
            not isinstance(k, str) for k in self.options
        ):
            raise RequestError("options must be a dict with string keys")
        reserved = sorted(set(self.options) & set(_RESERVED_OPTIONS))
        if reserved:
            raise RequestError(
                f"pass {reserved} as top-level request fields, not compressor options"
            )
        try:
            valid = compressor_option_names(self.compressor)
        except KeyError:
            raise RequestError(
                f"unknown compressor {self.compressor!r}; "
                f"available: {available_compressors()}"
            ) from None
        if valid is not None:
            unknown = sorted(set(self.options) - set(valid))
            if unknown:
                raise RequestError(
                    f"unknown option(s) {unknown} for compressor "
                    f"{self.compressor!r}; valid options: {sorted(valid)}"
                )

    def _validate_data_fields(self) -> None:
        if self.kind == "decompress":
            if self.input is None or self.data_b64 is not None:
                raise RequestError("decompress requests take input (a path), not inline data")
        elif (self.input is None) == (self.data_b64 is None):
            raise RequestError("pass exactly one of input (a path) or data_b64 (inline)")
        if self.kind == "stream" and self.input is None:
            raise RequestError("stream requests require a file input, not inline data")
        if self.kind == "tune":
            if self.output is not None:
                raise RequestError("tune requests take no output path")
        elif self.output is None:
            raise RequestError(f"{self.kind} requests require an output path")

    def _validate_field_types(self) -> None:
        # Wire payloads arrive as arbitrary JSON; mistyped fields must be
        # ValueErrors (the 400 path), never TypeErrors from a comparison.
        for name in ("target_ratio", "error_bound", "max_error_bound", "tolerance"):
            value = getattr(self, name)
            if name == "tolerance" and value is None:
                raise RequestError("tolerance must be a number in (0, 1), got None")
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, (int, float))
            ):
                raise RequestError(f"{name} must be a number, got {value!r}")
        if not isinstance(self.compressor, str):
            raise RequestError(f"compressor must be a string, got {self.compressor!r}")
        for name in ("input", "data_b64", "output"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, str):
                raise RequestError(f"{name} must be a string, got {value!r}")

    def _validate_objective(self) -> None:
        if self.kind == "tune":
            if self.target_ratio is None:
                raise RequestError("tune requests require target_ratio")
            if self.error_bound is not None:
                raise RequestError("tune requests take target_ratio, not error_bound")
        elif self.kind == "decompress":
            if self.target_ratio is not None or self.error_bound is not None:
                raise RequestError(
                    "decompress requests take no target_ratio or error_bound"
                )
        elif (self.target_ratio is None) == (self.error_bound is None):
            raise RequestError(
                f"{self.kind} requests require exactly one of target_ratio or error_bound"
            )
        if self.target_ratio is not None and not self.target_ratio > 0:
            raise RequestError(f"target_ratio must be positive, got {self.target_ratio}")
        if self.error_bound is not None and not self.error_bound > 0:
            raise RequestError(f"error_bound must be positive, got {self.error_bound}")
        if self.max_error_bound is not None and not self.max_error_bound > 0:
            raise RequestError(
                f"max_error_bound must be positive, got {self.max_error_bound}"
            )
        if not 0 < self.tolerance < 1:
            raise RequestError(f"tolerance must be in (0, 1), got {self.tolerance}")

    def _validate_stream_fields(self) -> None:
        if self.stream is not None:
            if self.kind != "compress":
                raise RequestError(
                    "the stream routing hint applies to compress requests only "
                    "(use kind='stream' to force the out-of-core pipeline)"
                )
            if not isinstance(self.stream, bool):
                raise RequestError(f"stream must be a bool or None, got {self.stream!r}")
            if self.stream and self.input is None:
                raise RequestError("stream=True requires a file input, not inline data")
        if not isinstance(self.stream_options, dict):
            raise RequestError("stream_options must be a dict")
        if self.stream_options and self.kind not in ("compress", "stream"):
            raise RequestError(f"stream_options do not apply to {self.kind} requests")
        unknown = sorted(set(self.stream_options) - set(STREAM_OPTION_KEYS))
        if unknown:
            raise RequestError(
                f"unknown stream_options {unknown}; valid: {sorted(STREAM_OPTION_KEYS)}"
            )
        normalized = dict(self.stream_options)
        for key in ("chunk_shape", "shape"):
            if normalized.get(key) is not None:
                normalized[key] = _shape_tuple(normalized[key], f"stream_options.{key}")
        for key in ("train_chunks", "drift_window"):
            if key in normalized and (
                isinstance(normalized[key], bool)
                or not isinstance(normalized[key], int)
                or normalized[key] < 1
            ):
                raise RequestError(
                    f"stream_options.{key} must be a positive int, got {normalized[key]!r}"
                )
        object.__setattr__(self, "stream_options", normalized)

    # -- data access -------------------------------------------------------
    def load_array(self) -> np.ndarray:
        """Materialise the request's data (inline bytes or ``.npy`` path)."""
        if self.data_b64 is not None:
            return np.load(
                io.BytesIO(base64.b64decode(self.data_b64)), allow_pickle=False
            )
        return np.load(self.input, allow_pickle=False)

    # -- wire format -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict (defaults included, for transparency in logs)."""
        payload = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "resources":
                value = value.to_dict()
            elif f.name == "stream_options":
                value = {
                    k: list(v) if isinstance(v, tuple) else v for k, v in value.items()
                }
            elif f.name == "options":
                value = dict(value)
            payload[f.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CompressionRequest":
        """Build a request from a JSON body, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise RequestError(
                f"request must be a JSON object, got {type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise RequestError(f"unknown request fields: {sorted(unknown)}")
        if "kind" not in payload:
            raise RequestError(f"request requires a kind (one of {REQUEST_KINDS})")
        return cls(**payload)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CompressionRequest":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RequestError(f"request is not valid JSON: {exc}") from None
        return cls.from_dict(payload)
