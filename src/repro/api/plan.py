"""Request routing: one place that decides *where* work runs.

:func:`plan` inspects a validated :class:`~repro.api.request.CompressionRequest`
and produces a :class:`Plan` naming the route:

* ``"memory"`` — load the array and run through
  :class:`~repro.core.fraz.FRaZ` (or the ``.frz`` reader);
* ``"stream"`` — route through the out-of-core
  :func:`~repro.stream.pipeline.stream_compress` pipeline (file inputs
  past :data:`DEFAULT_STREAM_THRESHOLD` bytes, explicit ``kind="stream"``
  requests, the ``stream=True`` hint, and ``.frzs`` decompressions);
* ``"service"`` — dispatch to a resident ``repro serve`` endpoint
  (only when the caller names one).

This subsumes the service scheduler's old private ``>32MiB`` heuristic:
the scheduler now calls :func:`plan` with its configured threshold, so
the CLI, the facade and the service route identically.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.api.request import CompressionRequest

__all__ = ["Plan", "plan", "ROUTES", "DEFAULT_STREAM_THRESHOLD"]

#: File inputs larger than this are compressed out of core unless the
#: request says otherwise (32 MiB: comfortably in-memory below, worth
#: chunked compression above).
DEFAULT_STREAM_THRESHOLD = 32 * 2**20

ROUTES = ("memory", "stream", "service")


@dataclass(frozen=True)
class Plan:
    """A routed request: where it will run, and why."""

    request: CompressionRequest
    route: str
    reason: str
    endpoint: str | None = None

    def __post_init__(self) -> None:
        if self.route not in ROUTES:
            raise ValueError(f"route must be one of {ROUTES}, got {self.route!r}")
        if (self.route == "service") != (self.endpoint is not None):
            raise ValueError("service plans (and only they) carry an endpoint")

    def to_dict(self) -> dict:
        return {
            "route": self.route,
            "reason": self.reason,
            "endpoint": self.endpoint,
            "request": self.request.to_dict(),
        }


def _input_size(path: str) -> int | None:
    try:
        return os.path.getsize(path)
    except OSError:
        return None


def plan(
    request: CompressionRequest,
    *,
    stream_threshold: int = DEFAULT_STREAM_THRESHOLD,
    service_url: str | None = None,
) -> Plan:
    """Route one request (see module docs for the decision table)."""
    if service_url is not None:
        return Plan(request, "service",
                    "caller named a service endpoint", service_url)
    if request.kind == "tune":
        return Plan(request, "memory", "tuning searches run in memory")
    if request.kind == "decompress":
        from repro.stream import is_streamed_file  # lazy: avoids import cycles

        if is_streamed_file(request.input):
            return Plan(request, "stream", "input is a .frzs streamed container")
        return Plan(request, "memory", "input is an in-memory .frz payload")
    if request.kind == "stream":
        return Plan(request, "stream", "request demands the out-of-core pipeline")
    # kind == "compress": honour the hint, else size-route file inputs.
    if request.stream is True:
        return Plan(request, "stream", "request forces stream routing (stream=True)")
    if request.stream is False:
        return Plan(request, "memory", "request forbids stream routing (stream=False)")
    if request.input is not None:
        size = _input_size(request.input)
        if size is not None and size > stream_threshold:
            return Plan(
                request, "stream",
                f"input is {size} bytes (> {stream_threshold} threshold)",
            )
    return Plan(request, "memory", "input fits in memory")
