"""Typed reports: the one result surface behind every entry point.

``repro tune``/``repro compress --json``/``repro run``, the service's
``/result/<id>`` bodies, and :func:`repro.api.execute` all emit the
dictionaries produced by these classes' :meth:`to_dict`, so a client
written against one entry point parses the others' results unchanged.
:mod:`repro.serve.schema` keeps its payload helpers as thin wrappers
over these builders.

Four shapes, all JSON-ready and parseable back via
:func:`report_from_dict`:

* :class:`TuneReport` — one FRaZ search (``kind: "tune"``);
* :class:`CompressReport` — an in-memory compression, optionally with
  the tuning that chose its bound nested under ``"tuning"``;
* :class:`StreamReport` — an out-of-core compression routed through
  ``repro.stream`` (``"streamed": true``);
* :class:`DecompressReport` — a ``.frz``/``.frzs`` reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RequestError
from typing import TYPE_CHECKING, ClassVar

if TYPE_CHECKING:
    from repro.cache.evalcache import EvalCache
    from repro.core.results import TrainingResult
    from repro.pressio.compressor import CompressedField
    from repro.stream.pipeline import StreamResult

__all__ = [
    "Report",
    "TuneReport",
    "CompressReport",
    "StreamReport",
    "DecompressReport",
    "report_from_dict",
    "cache_section",
    "stage_timings",
]


def cache_section(cache: "EvalCache | None") -> dict | None:
    """The ``"cache"`` block of a report (``None`` when caching is off)."""
    if cache is None:
        return None
    return cache.stats_dict()  # snapshot under the cache lock, not ours


def _round(value: float | None, digits: int) -> float | None:
    return round(value, digits) if value is not None else None


class Report:
    """Base class: every report is a frozen dataclass with a wire dict.

    ``counters`` feeds the service's search accounting
    (``(evaluations, compressor_calls)``); ``streamed`` says whether the
    work went through the out-of-core pipeline.
    """

    kind: ClassVar[str] = ""
    streamed: ClassVar[bool] = False

    @property
    def counters(self) -> tuple[int, int]:
        return (0, 0)

    def to_dict(self) -> dict:  # pragma: no cover - always overridden
        raise NotImplementedError


@dataclass(frozen=True)
class TuneReport(Report):
    """Structured record of one FRaZ search."""

    compressor: str
    target_ratio: float
    tolerance: float
    error_bound: float
    ratio: float
    feasible: bool
    within_tolerance: bool
    evaluations: int
    cache_hits: int
    cache_misses: int
    compressor_calls: int
    wall_seconds: float
    compress_seconds: float
    input: str | None = None
    max_error_bound: float | None = None
    cache: dict | None = None

    kind: ClassVar[str] = "tune"

    @property
    def counters(self) -> tuple[int, int]:
        return (self.evaluations, self.compressor_calls)

    @classmethod
    def from_training(
        cls,
        result: "TrainingResult",
        *,
        compressor: str,
        input: str | None = None,
        max_error_bound: float | None = None,
        cache: "EvalCache | None" = None,
    ) -> "TuneReport":
        return cls(
            compressor=compressor,
            input=input,
            target_ratio=result.target_ratio,
            tolerance=result.tolerance,
            max_error_bound=max_error_bound,
            error_bound=result.error_bound,
            ratio=result.ratio,
            feasible=bool(result.feasible),
            within_tolerance=bool(result.within_tolerance),
            evaluations=result.evaluations,
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            compressor_calls=result.compressor_calls,
            wall_seconds=round(result.wall_seconds, 6),
            compress_seconds=round(result.compress_seconds, 6),
            cache=cache_section(cache),
        )

    def to_dict(self) -> dict:
        return {
            "kind": "tune",
            "compressor": self.compressor,
            "input": self.input,
            "target_ratio": self.target_ratio,
            "tolerance": self.tolerance,
            "max_error_bound": self.max_error_bound,
            "error_bound": self.error_bound,
            "ratio": self.ratio,
            "feasible": self.feasible,
            "within_tolerance": self.within_tolerance,
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "compressor_calls": self.compressor_calls,
            "wall_seconds": self.wall_seconds,
            "compress_seconds": self.compress_seconds,
            "cache": self.cache,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TuneReport":
        data = dict(payload)
        if data.pop("kind", "tune") != "tune":
            raise RequestError("not a tune report")
        return cls(**data)


@dataclass(frozen=True)
class CompressReport(Report):
    """Structured record of one in-memory compression.

    ``tuning`` is the :class:`TuneReport` of the search that picked
    ``error_bound``, or ``None`` for a fixed-bound run.
    """

    compressor: str
    error_bound: float
    ratio: float
    original_nbytes: int
    compressed_nbytes: int
    input: str | None = None
    output: str | None = None
    wall_seconds: float | None = None
    tuning: TuneReport | None = None
    cache: dict | None = None

    kind: ClassVar[str] = "compress"
    streamed: ClassVar[bool] = False

    @property
    def counters(self) -> tuple[int, int]:
        if self.tuning is None:
            return (0, 0)
        return self.tuning.counters

    @property
    def feasible(self) -> bool:
        """Fixed-bound runs are trivially feasible; tuned runs report the search's verdict."""
        return self.tuning is None or self.tuning.feasible

    @classmethod
    def from_field(
        cls,
        payload: "CompressedField",
        *,
        compressor: str,
        error_bound: float,
        output: str | None = None,
        input: str | None = None,
        tuning: "TuneReport | None" = None,
        wall_seconds: float | None = None,
        cache: "EvalCache | None" = None,
    ) -> "CompressReport":
        return cls(
            compressor=compressor,
            input=input,
            output=output,
            error_bound=error_bound,
            ratio=payload.ratio,
            original_nbytes=payload.original_nbytes,
            compressed_nbytes=payload.nbytes,
            wall_seconds=_round(wall_seconds, 6),
            tuning=tuning,
            cache=cache_section(cache),
        )

    def to_dict(self) -> dict:
        return {
            "kind": "compress",
            "streamed": False,
            "compressor": self.compressor,
            "input": self.input,
            "output": self.output,
            "error_bound": self.error_bound,
            "ratio": self.ratio,
            "original_nbytes": self.original_nbytes,
            "compressed_nbytes": self.compressed_nbytes,
            "wall_seconds": self.wall_seconds,
            "tuning": self.tuning.to_dict() if self.tuning is not None else None,
            "cache": self.cache,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CompressReport":
        data = dict(payload)
        if data.pop("kind", "compress") != "compress" or data.pop("streamed", False):
            raise RequestError("not an in-memory compress report")
        if data.get("tuning") is not None:
            data["tuning"] = TuneReport.from_dict(data["tuning"])
        return cls(**data)


@dataclass(frozen=True)
class StreamReport(Report):
    """Structured record of one out-of-core (``.frzs``) compression."""

    compressor: str
    error_bound: float
    ratio: float
    original_nbytes: int
    compressed_nbytes: int
    n_chunks: int
    chunk_shape: tuple[int, ...]
    retrains: int
    in_band_chunks: int
    evaluations: int
    cache_hits: int
    cache_misses: int
    mb_per_second: float
    wall_seconds: float
    input: str | None = None
    output: str | None = None
    cache: dict | None = None
    #: Seconds fitting the bound on the training prefix (the "train"
    #: stage); 0 for fixed-bound runs.
    train_seconds: float = 0.0

    kind: ClassVar[str] = "compress"
    streamed: ClassVar[bool] = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "chunk_shape", tuple(self.chunk_shape))

    @property
    def counters(self) -> tuple[int, int]:
        # Stream probes hit the shared cache directly; misses are the
        # compressor calls the pipeline actually paid for.
        return (self.evaluations, self.cache_misses)

    @classmethod
    def from_result(
        cls,
        result: "StreamResult",
        *,
        compressor: str,
        input: str | None = None,
        cache: "EvalCache | None" = None,
    ) -> "StreamReport":
        return cls(
            compressor=compressor,
            input=input,
            output=result.path,
            error_bound=result.error_bound,
            ratio=result.ratio,
            original_nbytes=result.original_nbytes,
            compressed_nbytes=result.compressed_nbytes,
            n_chunks=result.n_chunks,
            chunk_shape=tuple(result.chunk_shape),
            retrains=result.retrains,
            in_band_chunks=result.in_band_chunks,
            evaluations=result.evaluations,
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            mb_per_second=round(result.mb_per_second, 3),
            wall_seconds=round(result.wall_seconds, 6),
            cache=cache_section(cache),
            train_seconds=round(result.train_seconds, 6),
        )

    def to_dict(self) -> dict:
        return {
            "kind": "compress",
            "streamed": True,
            "compressor": self.compressor,
            "input": self.input,
            "output": self.output,
            "error_bound": self.error_bound,
            "ratio": self.ratio,
            "original_nbytes": self.original_nbytes,
            "compressed_nbytes": self.compressed_nbytes,
            "n_chunks": self.n_chunks,
            "chunk_shape": list(self.chunk_shape),
            "retrains": self.retrains,
            "in_band_chunks": self.in_band_chunks,
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "mb_per_second": self.mb_per_second,
            "wall_seconds": self.wall_seconds,
            "train_seconds": self.train_seconds,
            "cache": self.cache,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StreamReport":
        data = dict(payload)
        if data.pop("kind", "compress") != "compress" or not data.pop("streamed", True):
            raise RequestError("not a streamed compress report")
        return cls(**data)


@dataclass(frozen=True)
class DecompressReport(Report):
    """Structured record of one ``.frz``/``.frzs`` reconstruction."""

    compressor: str
    input: str
    output: str
    ratio: float
    shape: tuple[int, ...]
    dtype: str
    from_stream: bool = False
    n_chunks: int | None = None
    wall_seconds: float | None = None

    kind: ClassVar[str] = "decompress"

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", tuple(self.shape))

    @property
    def streamed(self) -> bool:  # type: ignore[override]
        return self.from_stream

    def to_dict(self) -> dict:
        return {
            "kind": "decompress",
            "streamed": self.from_stream,
            "compressor": self.compressor,
            "input": self.input,
            "output": self.output,
            "ratio": self.ratio,
            "shape": list(self.shape),
            "dtype": self.dtype,
            "n_chunks": self.n_chunks,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DecompressReport":
        data = dict(payload)
        if data.pop("kind", "decompress") != "decompress":
            raise RequestError("not a decompress report")
        data["from_stream"] = data.pop("streamed", False)
        return cls(**data)


def stage_timings(payload: dict | Report) -> dict[str, float]:
    """Break a report into per-stage latencies (seconds) for observability.

    The stages are the service's latency vocabulary — the ``stage`` label
    of the ``repro_stage_seconds`` histogram family (see
    ``docs/OBSERVABILITY.md``):

    * ``"search"`` — the FRaZ error-bound search (a tune report's wall
      time, or the ``tuning`` nested in a compress report);
    * ``"encode"`` — compression proper: a compress report's wall time
      minus its nested search, or a stream report's wall time minus its
      training prefix;
    * ``"train"`` — a stream report's prefix fit;
    * ``"decode"`` — a decompress report's wall time.

    Works on a typed report or its wire dict (what crosses the process
    boundary from pool workers), which is why the scheduler can record
    per-stage timings without the stages themselves ever touching a
    metrics object — reports already carry the numbers.  Missing or
    ``None`` wall times contribute nothing; values are clamped at 0.
    """
    if isinstance(payload, Report):
        payload = payload.to_dict()
    out: dict[str, float] = {}

    def _put(stage: str, seconds) -> None:
        if isinstance(seconds, (int, float)) and seconds >= 0:
            out[stage] = float(seconds)

    kind = payload.get("kind")
    wall = payload.get("wall_seconds")
    if kind == "tune":
        _put("search", wall)
    elif kind == "decompress":
        _put("decode", wall)
    elif kind == "compress" and payload.get("streamed"):
        train = payload.get("train_seconds") or 0.0
        if train > 0:  # fixed-bound streams never train; keep the histogram honest
            _put("train", train)
        if isinstance(wall, (int, float)):
            _put("encode", max(0.0, wall - train))
    elif kind == "compress":
        tuning = payload.get("tuning")
        search = tuning.get("wall_seconds") if isinstance(tuning, dict) else None
        if isinstance(search, (int, float)):
            _put("search", search)
        if isinstance(wall, (int, float)):
            _put("encode", max(0.0, wall - (search or 0.0)))
    return out


def report_from_dict(payload: dict) -> Report:
    """Parse any report wire dict back into its typed class."""
    if not isinstance(payload, dict):
        raise RequestError(f"report must be a JSON object, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind == "tune":
        return TuneReport.from_dict(payload)
    if kind == "decompress":
        return DecompressReport.from_dict(payload)
    if kind == "compress":
        if payload.get("streamed"):
            return StreamReport.from_dict(payload)
        return CompressReport.from_dict(payload)
    raise RequestError(f"unknown report kind {kind!r}")
