"""Unified request/plan/execute API: one typed spec behind every entry point.

Every front door of the reproduction — the :class:`~repro.core.fraz.FRaZ`
facade, the ``repro`` CLI, the HTTP service, and the out-of-core stream
pipeline — speaks the same three types::

    from repro.api import CompressionRequest, plan, execute

    request = CompressionRequest(
        kind="compress", compressor="sz", target_ratio=10.0,
        input="field.npy", output="field.frz",
    )
    report = execute(plan(request))      # -> CompressReport
    print(report.ratio, report.error_bound)

* :class:`CompressionRequest` — frozen, JSON-serialisable, validated at
  construction (exactly one objective, exactly one data source, known
  compressor options via libpressio-style introspection).
* :func:`plan` — routes a request in-memory / out-of-core / to a
  service, subsuming the scheduler's old size heuristic.
* :func:`execute` — runs a plan and returns a typed :class:`Report`
  whose :meth:`~Report.to_dict` is byte-compatible with the service's
  ``/result`` payloads, so one client parses every entry point.

This package is a stable public surface: its ``__all__`` is
snapshot-tested (``tests/api/test_surface.py``) and checked in CI.
"""

from repro.api.execute import execute, run
from repro.api.plan import DEFAULT_STREAM_THRESHOLD, ROUTES, Plan, plan
from repro.api.report import (
    CompressReport,
    DecompressReport,
    Report,
    StreamReport,
    TuneReport,
    report_from_dict,
)
from repro.api.request import (
    REQUEST_KINDS,
    CompressionRequest,
    Resources,
    encode_array,
)

__all__ = [
    "CompressionRequest",
    "Resources",
    "REQUEST_KINDS",
    "Plan",
    "plan",
    "ROUTES",
    "DEFAULT_STREAM_THRESHOLD",
    "execute",
    "run",
    "Report",
    "TuneReport",
    "CompressReport",
    "StreamReport",
    "DecompressReport",
    "report_from_dict",
    "encode_array",
]
