"""Request execution: one typed path from a :class:`Plan` to a :class:`Report`.

:func:`execute` runs a routed request through the existing layers —
:class:`~repro.core.fraz.FRaZ` for in-memory tunes/compressions,
:func:`~repro.stream.pipeline.stream_compress` for out-of-core work, the
``.frz``/``.frzs`` readers for decompression, and
:class:`~repro.serve.client.ServiceClient` for service dispatch — and
returns the matching typed report.  The CLI, the service scheduler's
workers, and user scripts all call exactly this function, which is what
makes one request produce bit-identical output through every entry point.

Precedence for execution resources: values set on
``request.resources`` win; the keyword arguments (the executing host's
configuration — scheduler intra-executor, CLI flags) fill what the
request leaves unset; built-in defaults cover the rest.  The ``cache``
keyword is the exception: an explicit :class:`~repro.cache.EvalCache`
instance (the service's shared cache) or ``False`` always wins, because
cache policy belongs to the executing host.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.api.plan import Plan, plan as _plan
from repro.api.report import (
    CompressReport,
    DecompressReport,
    Report,
    TuneReport,
    report_from_dict,
)
from repro.api.request import CompressionRequest
from repro.cache.evalcache import EvalCache
from repro.core.fraz import FRaZ
from repro.io.files import load_field, save_field
from repro.obs.trace import span as _trace_span
from repro.pressio.registry import make_compressor

__all__ = ["execute", "run"]


def run(request: CompressionRequest, *, service_url: str | None = None,
        **kwargs) -> Report:
    """Plan then execute in one call: ``run(req) == execute(plan(req))``."""
    return execute(_plan(request, service_url=service_url), **kwargs)


def execute(
    target: Plan | CompressionRequest,
    *,
    cache: EvalCache | bool | None = None,
    executor=None,
    workers: int | None = None,
    max_memory: int | None = None,
    seed: int = 0,
    timeout: float = 300.0,
) -> Report:
    """Execute a plan (or auto-plan a bare request); returns a typed report.

    ``cache=None`` builds a private :class:`EvalCache` from the request's
    resource block (honouring ``resources.cache``/``cache_dir``, with the
    disk tier persisted after a successful run); pass an instance to
    share one across requests, or ``False`` to disable caching.
    ``executor``/``workers``/``max_memory`` are host-side fallbacks for
    resource fields the request leaves unset.  ``timeout`` bounds the
    result wait for service-routed plans.
    """
    pl = target if isinstance(target, Plan) else _plan(target)
    request = pl.request
    if pl.route == "service":
        return _execute_service(pl, timeout=timeout)

    res = request.resources
    eff_executor = res.executor if res.executor is not None else executor
    eff_workers = res.workers if res.workers is not None else workers
    eff_memory = res.max_memory if res.max_memory is not None else max_memory

    # Fixed-bound in-memory work and decompression never probe the
    # compressor, so an auto-built cache would only add empty baggage.
    wants_cache = request.kind != "decompress" and request.target_ratio is not None
    own_cache: EvalCache | None = None
    if isinstance(cache, EvalCache):
        cache_obj: EvalCache | None = cache
    elif cache is None and wants_cache and res.cache:
        cache_obj = own_cache = EvalCache(cache_dir=res.cache_dir)
    elif cache is True:
        cache_obj = own_cache = EvalCache()
    else:
        cache_obj = None

    if pl.route == "stream":
        if request.kind == "decompress":
            report: Report = _execute_decompress(request)
        else:
            report = _execute_stream(
                request, cache=cache_obj, own_cache=own_cache,
                executor=eff_executor, workers=eff_workers,
                max_memory=eff_memory, seed=seed,
            )
    elif request.kind == "decompress":
        report = _execute_decompress(request)
    elif request.kind == "tune":
        report = _execute_tune(
            request, cache=cache_obj, own_cache=own_cache,
            executor=eff_executor, workers=eff_workers, seed=seed,
        )
    else:
        report = _execute_compress(
            request, cache=cache_obj, own_cache=own_cache,
            executor=eff_executor, workers=eff_workers, seed=seed,
        )

    if own_cache is not None and own_cache.cache_dir is not None:
        try:
            own_cache.save()
        except OSError as exc:
            # An unwritable cache dir must not eat the result.
            print(f"warning: could not persist evaluation cache: {exc}",
                  file=sys.stderr)
    return report


# ---------------------------------------------------------------------------
# route implementations
# ---------------------------------------------------------------------------

def _fraz(request: CompressionRequest, *, cache, executor, workers, seed) -> FRaZ:
    return FRaZ.from_request(
        request,
        executor=executor,
        workers=workers,
        seed=seed,
        cache=cache if cache is not None else False,
    )


def _execute_tune(request, *, cache, own_cache, executor, workers, seed) -> TuneReport:
    data = request.load_array()
    with _trace_span("search", {"target_ratio": request.target_ratio}):
        result = _fraz(request, cache=cache, executor=executor,
                       workers=workers, seed=seed).tune(data)
    return TuneReport.from_training(
        result,
        compressor=request.compressor,
        input=request.input,
        max_error_bound=request.max_error_bound,
        cache=own_cache,
    )


def _execute_compress(request, *, cache, own_cache, executor, workers,
                      seed) -> CompressReport:
    data = request.load_array()
    t0 = time.perf_counter()
    if request.error_bound is not None:
        configured = make_compressor(
            request.compressor, error_bound=request.error_bound, **request.options
        )
        with _trace_span("encode", {"error_bound": request.error_bound}):
            payload = save_field(request.output, data, configured)
        return CompressReport.from_field(
            payload,
            compressor=request.compressor,
            error_bound=request.error_bound,
            output=request.output,
            input=request.input,
            wall_seconds=time.perf_counter() - t0,
        )
    fraz = _fraz(request, cache=cache, executor=executor, workers=workers, seed=seed)
    with _trace_span("search", {"target_ratio": request.target_ratio}):
        payload, result = fraz.compress(data)
    configured = make_compressor(
        request.compressor, error_bound=result.error_bound, **request.options
    )
    with _trace_span("encode", {"error_bound": result.error_bound}):
        save_field(
            request.output, payload, configured,
            metadata={"target_ratio": request.target_ratio,
                      "feasible": result.feasible},
        )
    return CompressReport.from_field(
        payload,
        compressor=request.compressor,
        error_bound=result.error_bound,
        output=request.output,
        input=request.input,
        tuning=TuneReport.from_training(
            result,
            compressor=request.compressor,
            input=request.input,
            max_error_bound=request.max_error_bound,
        ),
        wall_seconds=time.perf_counter() - t0,
        cache=own_cache,
    )


def _execute_stream(request, *, cache, own_cache, executor, workers,
                    max_memory, seed) -> Report:
    from repro.stream.pipeline import stream_compress  # lazy: heavy import

    opts = request.stream_options
    configured = make_compressor(request.compressor, **request.options)
    with _trace_span("train", {"target_ratio": request.target_ratio}):
        result = stream_compress(
            request.input if request.input is not None else request.load_array(),
            request.output,
            compressor=configured,
            target_ratio=request.target_ratio,
            error_bound=request.error_bound,
            tolerance=request.tolerance,
            max_error_bound=request.max_error_bound,
            chunk_shape=opts.get("chunk_shape"),
            max_memory=max_memory,
            workers=workers if workers is not None else 1,
            executor=executor,
            train_chunks=opts.get("train_chunks", 4),
            drift_margin=opts.get("drift_margin", 0.0),
            drift_window=opts.get("drift_window", 4),
            seed=seed,
            cache=cache if cache is not None else False,
            shape=opts.get("shape"),
            dtype=opts.get("dtype"),
        )
    return result.to_report(compressor=request.compressor, input=request.input,
                            cache=own_cache)


def _execute_decompress(request) -> DecompressReport:
    from repro.stream import StreamedField, is_streamed_file  # lazy: heavy import

    t0 = time.perf_counter()
    if is_streamed_file(request.input):
        out = request.output
        if not out.endswith(".npy"):
            out += ".npy"
        with _trace_span("decode", {"from_stream": True}), \
                StreamedField(request.input) as field:
            field.decompress(out)
            return DecompressReport(
                compressor=field.meta["compressor"],
                input=request.input,
                output=out,
                ratio=field.ratio,
                shape=field.shape,
                dtype=field.dtype.str,
                from_stream=True,
                n_chunks=field.n_chunks,
                wall_seconds=round(time.perf_counter() - t0, 6),
            )
    with _trace_span("decode", {"from_stream": False}):
        data, meta = load_field(request.input)
    out = request.output if request.output.endswith(".npy") else request.output + ".npy"
    np.save(request.output, data)  # np.save appends .npy itself when missing
    return DecompressReport(
        compressor=meta["compressor"],
        input=request.input,
        output=out,
        ratio=meta["ratio"],
        shape=data.shape,
        dtype=data.dtype.str,
        from_stream=False,
        wall_seconds=round(time.perf_counter() - t0, 6),
    )


def _execute_service(pl: Plan, *, timeout: float) -> Report:
    from repro.serve.client import ServiceClient  # lazy: avoids import cycle

    client = ServiceClient(pl.endpoint)
    ticket = client.submit(pl.request)
    result = client.result(ticket["job_id"], timeout=timeout)
    return report_from_dict(result)
