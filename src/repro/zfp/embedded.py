"""Embedded bit-plane coding of negabinary coefficients, vectorised.

ZFP codes each block's coefficients one bit plane at a time, most
significant first, exploiting the sequency ordering: high-frequency
coefficients are small, so at any plane only a *prefix* of the ordering is
significant.  Per block and plane ``k`` we emit the bits of the first

    m_k = #\\{ i : suffix_max(msb)_i >= k \\}

coefficients (``m_k`` is exactly one past the last coefficient with any set
bit at or above plane ``k``; coefficients beyond it are known-zero there).

Layout is *sectioned* rather than block-interleaved so that both encoding
and decoding are single vectorised passes over "units" (one unit = one
block's one plane):

* per-block headers (``emax``, ``kmax``, ``nplanes``) — fixed width;
* 7-bit ``m_k`` counts, unit order (block-major, planes descending);
* the plane payload bits themselves, same unit order.

Truncating ``nplanes`` implements both modes: accuracy mode stops at the
tolerance-derived minimum plane, fixed-rate mode at the per-block bit
budget.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "suffix_max",
    "unit_layout",
    "unit_counts",
    "encode_plane_bits",
    "decode_plane_bits",
    "rate_limited_nplanes",
]

COUNT_BITS = 7  # m_k <= 4**3 = 64 fits in 7 bits


def suffix_max(msb: np.ndarray) -> np.ndarray:
    """Running maximum of ``msb`` from the right, per block row."""
    return np.maximum.accumulate(msb[:, ::-1], axis=1)[:, ::-1]


def unit_layout(kmax: np.ndarray, nplanes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flatten (block, plane) units in block-major, plane-descending order.

    Returns ``(unit_block, unit_plane)``: for each unit, its block index and
    the bit-plane number ``k`` it encodes (``kmax-1, kmax-2, ...``).
    """
    nplanes = np.asarray(nplanes, dtype=np.int64)
    total = int(nplanes.sum())
    unit_block = np.repeat(np.arange(nplanes.size, dtype=np.int64), nplanes)
    offsets = np.concatenate(([0], np.cumsum(nplanes)[:-1]))
    j = np.arange(total, dtype=np.int64) - offsets[unit_block]
    unit_plane = kmax[unit_block] - 1 - j
    return unit_block, unit_plane


def unit_counts(smax: np.ndarray, unit_block: np.ndarray, unit_plane: np.ndarray) -> np.ndarray:
    """``m_k`` per unit: coefficients significant at or above plane ``k``."""
    if unit_block.size == 0:
        return np.zeros(0, dtype=np.int64)
    return (smax[unit_block] >= unit_plane[:, None]).sum(axis=1).astype(np.int64)


def _bit_positions(
    unit_block: np.ndarray, unit_plane: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand units into per-bit (block, coefficient, plane) coordinates."""
    if counts.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, empty
    total_bits = int(counts.sum())
    bit_block = np.repeat(unit_block, counts)
    bit_plane = np.repeat(unit_plane, counts)
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    bit_coeff = np.arange(total_bits, dtype=np.int64) - np.repeat(offsets, counts)
    return bit_block, bit_coeff, bit_plane


def encode_plane_bits(
    neg: np.ndarray,
    unit_block: np.ndarray,
    unit_plane: np.ndarray,
    counts: np.ndarray,
) -> np.ndarray:
    """Extract the payload bit array (uint8 0/1) for all units at once."""
    bit_block, bit_coeff, bit_plane = _bit_positions(unit_block, unit_plane, counts)
    values = neg[bit_block, bit_coeff]
    return ((values >> bit_plane.astype(np.uint64)) & np.uint64(1)).astype(np.uint8)


def decode_plane_bits(
    bits: np.ndarray,
    unit_block: np.ndarray,
    unit_plane: np.ndarray,
    counts: np.ndarray,
    nblocks: int,
    ncoeff: int,
) -> np.ndarray:
    """Rebuild (nblocks, ncoeff) negabinary values from the payload bits."""
    neg = np.zeros((nblocks, ncoeff), dtype=np.uint64)
    if bits.size == 0:
        return neg
    bit_block, bit_coeff, bit_plane = _bit_positions(unit_block, unit_plane, counts)
    contrib = bits.astype(np.uint64) << bit_plane.astype(np.uint64)
    np.add.at(neg, (bit_block, bit_coeff), contrib)
    return neg


def rate_limited_nplanes(
    smax: np.ndarray, kmax: np.ndarray, budget_bits: int
) -> np.ndarray:
    """Planes per block that fit a fixed per-block bit budget.

    Each plane unit costs ``COUNT_BITS + m_k`` payload bits; blocks keep the
    maximal number of top planes whose cumulative cost fits ``budget_bits``.
    """
    nblocks, _ = smax.shape
    max_planes = int(kmax.max()) if nblocks else 0
    if max_planes == 0 or budget_bits <= 0:
        return np.zeros(nblocks, dtype=np.int64)
    # m for every (block, candidate plane j): plane k = kmax - 1 - j.
    j = np.arange(max_planes, dtype=np.int64)
    plane_k = kmax[:, None] - 1 - j[None, :]  # (nblocks, max_planes)
    m = (smax[:, :, None] >= plane_k[:, None, :]).sum(axis=1)
    cost = COUNT_BITS + m
    valid = plane_k >= 0
    cost = np.where(valid, cost, 0)
    cum = np.cumsum(cost, axis=1)
    fits = (cum <= budget_bits) & valid
    return fits.sum(axis=1).astype(np.int64)
