"""ZFP's 4-point lifted decorrelating transform.

The forward/inverse lifting pairs are the integer-exact sequences from the
reference implementation; with arithmetic shifts they invert each other
exactly in int64.  The transform is applied separably along every axis of a
``(nblocks, 4, 4, ..., 4)`` batch — all blocks at once.

``sequency_order`` produces ZFP's coefficient ordering: ascending total
frequency ``i + j + k``, which concentrates energy in a prefix and is what
makes embedded prefix coding effective.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["fwd_lift", "inv_lift", "fwd_transform", "inv_transform", "sequency_order"]

BLOCK = 4


def fwd_lift(v: np.ndarray) -> np.ndarray:
    """Forward lift along the last axis (length 4), vectorised, int64-exact."""
    x = v[..., 0].copy()
    y = v[..., 1].copy()
    z = v[..., 2].copy()
    w = v[..., 3].copy()

    x += w
    x >>= 1
    w -= x
    z += y
    z >>= 1
    y -= z
    x += z
    x >>= 1
    z -= x
    w += y
    w >>= 1
    y -= w
    w += y >> 1
    y -= w >> 1

    return np.stack([x, y, z, w], axis=-1)


def inv_lift(v: np.ndarray) -> np.ndarray:
    """Exact inverse of :func:`fwd_lift`."""
    x = v[..., 0].copy()
    y = v[..., 1].copy()
    z = v[..., 2].copy()
    w = v[..., 3].copy()

    y += w >> 1
    w -= y >> 1
    y += w
    w <<= 1
    w -= y
    z += x
    x <<= 1
    x -= z
    y += z
    z <<= 1
    z -= y
    w += x
    x <<= 1
    x -= w

    return np.stack([x, y, z, w], axis=-1)


def _apply_along(blocks: np.ndarray, axis: int, lift) -> np.ndarray:
    """Apply a lift along one spatial axis of a (nblocks, 4, ..., 4) batch."""
    moved = np.moveaxis(blocks, axis, -1)
    lifted = lift(moved)
    return np.moveaxis(lifted, -1, axis)


def fwd_transform(blocks: np.ndarray) -> np.ndarray:
    """Decorrelate a batch of blocks: axis 0 is the batch dimension."""
    out = blocks
    for axis in range(1, blocks.ndim):
        out = _apply_along(out, axis, fwd_lift)
    return out


def inv_transform(blocks: np.ndarray) -> np.ndarray:
    """Invert :func:`fwd_transform` (inverse lifts, reverse axis order)."""
    out = blocks
    for axis in range(blocks.ndim - 1, 0, -1):
        out = _apply_along(out, axis, inv_lift)
    return out


@lru_cache(maxsize=8)
def sequency_order(ndim: int) -> np.ndarray:
    """Permutation of the flattened 4^d block into ascending total frequency."""
    freqs = np.indices((BLOCK,) * ndim).reshape(ndim, -1).sum(axis=0)
    return np.argsort(freqs, kind="stable")
