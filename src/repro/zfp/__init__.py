"""ZFP: transform-based lossy compressor (paper Sec. II-A2).

A from-scratch reimplementation of ZFP's architecture [14]:

1. the field is partitioned into 4^d blocks (edge blocks padded);
2. each block is converted to **block floating point** — a shared exponent
   plus fixed-point integers (:mod:`repro.zfp.fixedpoint`);
3. a separable, lifted, orthogonal-ish 4-point **decorrelating transform**
   is applied along each axis (:mod:`repro.zfp.transform`);
4. coefficients are mapped to **negabinary** and coded bit plane by bit
   plane in sequency order (:mod:`repro.zfp.embedded`).

Two modes, as in the paper:

* ``zfp`` (**fixed-accuracy**): the lowest encoded bit plane comes from
  ``floor(log2(tolerance))`` — the flooring is why ZFP "expresses few
  compression ratios" (Sec. VI-B3) and FRaZ sees a step-shaped ratio/bound
  curve.  The absolute bound is strictly enforced (verify-and-patch).
* ``zfp-rate`` (**fixed-rate**): every block gets exactly ``rate * 4^d``
  bits; the compressed size is exact but the error is *not* bounded —
  reproducing the fidelity gap of Figs. 1, 9 and 10.

Both sides of the codec are fully vectorised across blocks; there is no
per-block Python loop.
"""

from repro.pressio.registry import register_compressor
from repro.zfp.compressor import (
    ZFPCompressor,
    ZFPFixedRateCompressor,
    ZFPPrecisionCompressor,
)

register_compressor("zfp", ZFPCompressor)
register_compressor("zfp-rate", ZFPFixedRateCompressor)
register_compressor("zfp-prec", ZFPPrecisionCompressor)

__all__ = ["ZFPCompressor", "ZFPFixedRateCompressor", "ZFPPrecisionCompressor"]
