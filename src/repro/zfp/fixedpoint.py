"""Block floating point: shared exponent + fixed-point integers.

Each 4^d block is normalised by the power of two just above its largest
magnitude (``emax``), then scaled to :data:`FRAC_BITS` fractional bits and
rounded to int64.  With ``FRAC_BITS = 40`` the decorrelating transform's
growth keeps every intermediate well below 2^53, so negabinary magnitudes
remain exactly representable in float64 — which the vectorised MSB
computation (:func:`msb_positions`) relies on.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FRAC_BITS",
    "EMAX_BIAS",
    "EMAX_BITS",
    "block_exponents",
    "to_fixed",
    "from_fixed",
    "to_negabinary",
    "from_negabinary",
    "msb_positions",
]

FRAC_BITS = 40
EMAX_BITS = 12
EMAX_BIAS = 2048

_NB_MASK = np.uint64(0xAAAAAAAAAAAAAAAA)


def block_exponents(blocks: np.ndarray) -> np.ndarray:
    """Per-block ``emax``: smallest e with ``max|x| < 2**e`` (0 for all-zero)."""
    flat = blocks.reshape(blocks.shape[0], -1)
    maxabs = np.abs(flat).max(axis=1)
    if not np.isfinite(maxabs).all():
        raise ValueError("ZFP does not support NaN/Inf values")
    _, exp = np.frexp(maxabs)
    # frexp: maxabs = m * 2**exp with m in [0.5, 1) -> maxabs < 2**exp.
    return np.where(maxabs > 0, exp, 0).astype(np.int64)


def to_fixed(blocks: np.ndarray, emax: np.ndarray) -> np.ndarray:
    """Scale float blocks to int64 with FRAC_BITS fractional bits."""
    shape = (blocks.shape[0],) + (1,) * (blocks.ndim - 1)
    scale = np.ldexp(1.0, (FRAC_BITS - emax).astype(np.int64)).reshape(shape)
    return np.rint(blocks.astype(np.float64) * scale).astype(np.int64)


def from_fixed(ints: np.ndarray, emax: np.ndarray) -> np.ndarray:
    """Invert :func:`to_fixed` (up to the original rounding)."""
    shape = (ints.shape[0],) + (1,) * (ints.ndim - 1)
    scale = np.ldexp(1.0, (emax - FRAC_BITS).astype(np.int64)).reshape(shape)
    return ints.astype(np.float64) * scale


def to_negabinary(ints: np.ndarray) -> np.ndarray:
    """Signed int64 -> negabinary uint64 (ZFP's sign-free coefficient coding)."""
    u = ints.astype(np.uint64)
    return (u + _NB_MASK) ^ _NB_MASK


def from_negabinary(neg: np.ndarray) -> np.ndarray:
    """Inverse of :func:`to_negabinary`."""
    u = np.asarray(neg, dtype=np.uint64)
    return ((u ^ _NB_MASK) - _NB_MASK).astype(np.int64)


def msb_positions(neg: np.ndarray) -> np.ndarray:
    """Index of the highest set bit per value (-1 for zero).

    Exact for values < 2**53 (guaranteed by the FRAC_BITS headroom).
    """
    as_float = neg.astype(np.float64)
    _, exp = np.frexp(as_float)
    return np.where(neg > 0, exp - 1, -1).astype(np.int64)
