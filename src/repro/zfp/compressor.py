"""ZFP compressor front-ends: fixed-accuracy and fixed-rate modes.

Shared pipeline: pad -> 4^d blocks -> block floating point -> decorrelating
transform -> sequency order -> negabinary -> embedded plane coding.  The two
modes differ only in how many bit planes each block keeps:

* **accuracy**: planes down to ``floor(log2(tol)) + FRAC_BITS - emax - GUARD``
  (the flooring quantises the achievable ratios — the paper's Sec. VI-B3
  observation).  A verify-and-patch pass stores any residual out-of-bound
  points verbatim, making the absolute bound unconditional.
* **rate**: exactly ``rate * 4^d`` bits per block (plane-granular cutoff,
  zero-padded to the exact budget).  No error bound — this is the baseline
  whose fidelity gap Figs. 1/9/10 quantify.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, replace

import numpy as np

from repro.codecs.container import Container
from repro.codecs.varint import decode_uvarints, encode_uvarints, zigzag_decode, zigzag_encode
from repro.pressio.arrayio import decode_array_header, encode_array_header
from repro.pressio.compressor import CompressedField, Compressor
from repro.zfp.embedded import (
    COUNT_BITS,
    decode_plane_bits,
    encode_plane_bits,
    rate_limited_nplanes,
    suffix_max,
    unit_counts,
    unit_layout,
)
from repro.zfp.fixedpoint import (
    EMAX_BIAS,
    EMAX_BITS,
    FRAC_BITS,
    block_exponents,
    from_fixed,
    from_negabinary,
    msb_positions,
    to_fixed,
    to_negabinary,
)
from repro.zfp.transform import BLOCK, fwd_transform, inv_transform, sequency_order
from repro.codecs.bitstream import BitReader, pack_bits

__all__ = ["ZFPCompressor", "ZFPFixedRateCompressor", "ZFPPrecisionCompressor"]

GUARD_BITS_PER_DIM = 1
# Inverse-transform error amplification allowance per dimension.  Chosen
# empirically as the best CR/patch tradeoff: one guard bit per dimension
# leaves <1% of points out of bound, and those are fixed exactly by the
# patch section (larger guards cost 15-50% compression ratio).

_KMAX_BITS = 6
_NPLANES_BITS = 6
_BLOCK_HEADER_BITS = EMAX_BITS + _KMAX_BITS + _NPLANES_BITS


def _pad_to_blocks(data: np.ndarray) -> np.ndarray:
    """Edge-replicate to a multiple of 4 along every axis."""
    pads = [(0, (-s) % BLOCK) for s in data.shape]
    if any(p[1] for p in pads):
        return np.pad(data, pads, mode="edge")
    return data


def _gather_blocks(padded: np.ndarray) -> np.ndarray:
    """(nblocks, 4, ..., 4) batch in C-order over the block grid."""
    ndim = padded.ndim
    counts = tuple(s // BLOCK for s in padded.shape)
    interleaved = padded.reshape(tuple(x for c in counts for x in (c, BLOCK)))
    axes = tuple(range(0, 2 * ndim, 2)) + tuple(range(1, 2 * ndim, 2))
    nblocks = int(np.prod(counts))
    return interleaved.transpose(axes).reshape((nblocks,) + (BLOCK,) * ndim)


def _scatter_blocks(blocks: np.ndarray, padded_shape: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`_gather_blocks`."""
    ndim = len(padded_shape)
    counts = tuple(s // BLOCK for s in padded_shape)
    axes = tuple(range(0, 2 * ndim, 2)) + tuple(range(1, 2 * ndim, 2))
    inverse = np.argsort(axes)
    shaped = blocks.reshape(counts + (BLOCK,) * ndim).transpose(inverse)
    return shaped.reshape(padded_shape)


@dataclass(frozen=True)
class _ZFPBase(Compressor):
    """Shared machinery; subclasses fix the mode and plane-budget policy."""

    error_bound: float = 1e-3

    supported_ndims = (1, 2, 3)

    def with_error_bound(self, error_bound: float) -> "_ZFPBase":
        return replace(self, error_bound=float(error_bound))

    # -- plane budget policy (mode-specific) ---------------------------
    def _nplanes(self, smax: np.ndarray, kmax: np.ndarray, emax: np.ndarray, ndim: int) -> np.ndarray:
        raise NotImplementedError

    def _needs_patches(self) -> bool:
        raise NotImplementedError

    # -- compression ----------------------------------------------------
    def compress(self, data: np.ndarray) -> CompressedField:
        data = np.asarray(data)
        self.check_supported(data)
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(f"ZFP expects float32/float64 data, got {data.dtype}")
        if not self.error_bound > 0:
            raise ValueError(
                f"{self.mode} parameter must be positive, got {self.error_bound}"
            )
        if data.size == 0:
            outer = Container()
            outer.add("header", self._header(data))
            return CompressedField(outer.tobytes(), data.nbytes)

        ndim = data.ndim
        padded = _pad_to_blocks(data.astype(np.float64))
        blocks = _gather_blocks(padded)
        nblocks = blocks.shape[0]
        m = BLOCK**ndim
        perm = sequency_order(ndim)

        emax = block_exponents(blocks)
        coeff = fwd_transform(to_fixed(blocks, emax)).reshape(nblocks, m)[:, perm]
        neg = to_negabinary(coeff)
        msb = msb_positions(neg)
        smax = suffix_max(msb)
        kmax = (smax[:, 0] + 1).astype(np.int64)

        nplanes = self._nplanes(smax, kmax, emax, ndim)
        unit_block, unit_plane = unit_layout(kmax, nplanes)
        counts = unit_counts(smax, unit_block, unit_plane)
        payload_bits = encode_plane_bits(neg, unit_block, unit_plane, counts)

        outer = Container()
        outer.add("header", self._header(data))
        outer.add(
            "emax",
            pack_bits(
                (emax + EMAX_BIAS).astype(np.uint64),
                np.full(nblocks, EMAX_BITS, dtype=np.int64),
            ),
        )
        outer.add(
            "kmax",
            pack_bits(kmax.astype(np.uint64), np.full(nblocks, _KMAX_BITS, dtype=np.int64)),
        )
        outer.add(
            "nplanes",
            pack_bits(
                nplanes.astype(np.uint64), np.full(nblocks, _NPLANES_BITS, dtype=np.int64)
            ),
        )
        outer.add(
            "counts",
            pack_bits(
                counts.astype(np.uint64), np.full(counts.size, COUNT_BITS, dtype=np.int64)
            ),
        )
        outer.add("payload", np.packbits(payload_bits).tobytes() if payload_bits.size else b"")

        if self._needs_patches():
            recon = self._reconstruct_array(
                data.shape, padded.shape, data.dtype, emax, kmax, nplanes, counts,
                unit_block, unit_plane, payload_bits,
            )
            bad = np.flatnonzero(
                np.abs(recon.astype(np.float64).ravel() - data.astype(np.float64).ravel())
                > self.error_bound
            )
            outer.add(
                "patch_idx",
                encode_uvarints(zigzag_encode(np.diff(bad, prepend=np.int64(0)))),
            )
            outer.add("patch_n", encode_uvarints(np.asarray([bad.size], dtype=np.uint64)))
            outer.add("patch_val", data.ravel()[bad].tobytes())
        else:
            # Fixed-rate: zero-pad the container to the exact bit budget.
            target_bytes = math.ceil(nblocks * m * self.error_bound / 8)
            current = outer.nbytes()
            if current < target_bytes:
                outer.add("pad", b"\x00" * (target_bytes - current))

        return CompressedField(outer.tobytes(), data.nbytes)

    def _header(self, data: np.ndarray) -> bytes:
        return encode_array_header(data) + struct.pack("<d", self.error_bound)

    # -- decompression ----------------------------------------------------
    def decompress(self, field: CompressedField | bytes) -> np.ndarray:
        payload = field.payload if isinstance(field, CompressedField) else field
        outer = Container.frombytes(payload)
        header = outer.get("header")
        dtype, shape, off = decode_array_header(header)
        (param,) = struct.unpack_from("<d", header, off)

        if int(np.prod(shape)) == 0:
            return np.zeros(shape, dtype=dtype)

        ndim = len(shape)
        padded_shape = tuple(s + ((-s) % BLOCK) for s in shape)
        nblocks = int(np.prod([s // BLOCK for s in padded_shape]))

        emax = (
            BitReader(outer.get("emax")).read_array(nblocks, EMAX_BITS).astype(np.int64)
            - EMAX_BIAS
        )
        kmax = BitReader(outer.get("kmax")).read_array(nblocks, _KMAX_BITS).astype(np.int64)
        nplanes = (
            BitReader(outer.get("nplanes")).read_array(nblocks, _NPLANES_BITS).astype(np.int64)
        )
        unit_block, unit_plane = unit_layout(kmax, nplanes)
        counts = (
            BitReader(outer.get("counts"))
            .read_array(unit_block.size, COUNT_BITS)
            .astype(np.int64)
        )
        total_bits = int(counts.sum())
        payload_bits = np.unpackbits(
            np.frombuffer(outer.get("payload"), dtype=np.uint8), count=total_bits
        )

        recon = self._reconstruct_array(
            shape, padded_shape, dtype, emax, kmax, nplanes, counts,
            unit_block, unit_plane, payload_bits,
        )

        if "patch_idx" in outer:
            (n_patch,), _ = decode_uvarints(outer.get("patch_n"), 1, 0)
            if int(n_patch):
                deltas, _ = decode_uvarints(outer.get("patch_idx"), int(n_patch), 0)
                idx = np.cumsum(zigzag_decode(deltas))
                values = np.frombuffer(outer.get("patch_val"), dtype=dtype)
                flat = recon.ravel()
                flat[idx] = values
                recon = flat.reshape(shape)
        return recon

    def _reconstruct_array(
        self,
        shape: tuple[int, ...],
        padded_shape: tuple[int, ...],
        dtype: np.dtype,
        emax: np.ndarray,
        kmax: np.ndarray,
        nplanes: np.ndarray,
        counts: np.ndarray,
        unit_block: np.ndarray,
        unit_plane: np.ndarray,
        payload_bits: np.ndarray,
    ) -> np.ndarray:
        """Shared decoder core (used by decompress and verify-and-patch)."""
        ndim = len(shape)
        m = BLOCK**ndim
        nblocks = int(np.prod([s // BLOCK for s in padded_shape]))
        perm = sequency_order(ndim)
        inv_perm = np.argsort(perm)

        neg = decode_plane_bits(payload_bits, unit_block, unit_plane, counts, nblocks, m)
        coeff = from_negabinary(neg)[:, inv_perm].reshape((nblocks,) + (BLOCK,) * ndim)
        ints = inv_transform(coeff)
        blocks = from_fixed(ints, emax)
        padded = _scatter_blocks(blocks, padded_shape)
        crop = tuple(slice(0, s) for s in shape)
        return padded[crop].astype(dtype)


@dataclass(frozen=True)
class ZFPCompressor(_ZFPBase):
    """ZFP fixed-accuracy mode: ``error_bound`` is the absolute tolerance."""

    name = "zfp"
    mode = "abs"

    def _nplanes(self, smax, kmax, emax, ndim):
        tol = self.error_bound
        log_tol = math.frexp(tol)[1] - 1  # floor(log2(tol)) for tol > 0
        guard = GUARD_BITS_PER_DIM * ndim
        minplane = log_tol + FRAC_BITS - emax - guard
        minplane = np.maximum(minplane, 0)
        return np.clip(kmax - minplane, 0, kmax).astype(np.int64)

    def _needs_patches(self) -> bool:
        return True


@dataclass(frozen=True)
class ZFPPrecisionCompressor(_ZFPBase):
    """ZFP fixed-precision mode: ``error_bound`` is the number of (most
    significant) bit planes kept per block.

    The paper lists precision as one of ZFP's "fixed-accuracy modes"
    alongside the absolute tolerance (Sec. III).  Precision bounds the
    *relative* error per block (each kept plane halves the coefficient
    truncation error w.r.t. the block's own magnitude) but not the absolute
    error, so like rate mode it carries no patch section.
    """

    name = "zfp-prec"
    mode = "prec"

    def _nplanes(self, smax, kmax, emax, ndim):
        precision = max(int(self.error_bound), 0)
        return np.minimum(kmax, precision).astype(np.int64)

    def _needs_patches(self) -> bool:
        return False

    def default_bound_range(self, data: np.ndarray) -> tuple[float, float]:
        """Planes from 1 (coarsest) to full fixed-point depth."""
        return (1.0, float(FRAC_BITS + 6))


@dataclass(frozen=True)
class ZFPFixedRateCompressor(_ZFPBase):
    """ZFP fixed-rate mode: ``error_bound`` is the rate in bits per value.

    Not error-bounded; the paper's fixed-rate baseline (Figs. 1, 9, 10).
    """

    name = "zfp-rate"
    mode = "rate"

    def _nplanes(self, smax, kmax, emax, ndim):
        m = BLOCK**ndim
        budget = int(self.error_bound * m) - _BLOCK_HEADER_BITS
        return rate_limited_nplanes(smax, kmax, budget)

    def _needs_patches(self) -> bool:
        return False

    def default_bound_range(self, data: np.ndarray) -> tuple[float, float]:
        """Rates from ~lossless (dtype width) down to half a bit per value."""
        return (0.5, float(np.asarray(data).dtype.itemsize * 8))
