"""Compression ratio and bit rate.

The paper defines the compression ratio ``rho = s(D) / s(D')`` (original over
compressed bytes) and the bit rate as bits per data point after compression;
for single-precision inputs ``bit_rate = 32 / rho``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["compression_ratio", "bit_rate"]


def compression_ratio(original_nbytes: int, compressed_nbytes: int) -> float:
    """``rho = s(D) / s(D')``; ``inf`` when the payload is empty."""
    if original_nbytes < 0 or compressed_nbytes < 0:
        raise ValueError("byte counts must be non-negative")
    if compressed_nbytes == 0:
        return float("inf")
    return original_nbytes / compressed_nbytes


def bit_rate(data: np.ndarray, compressed_nbytes: int) -> float:
    """Bits per data point after compression."""
    data = np.asarray(data)
    if data.size == 0:
        raise ValueError("bit rate undefined for empty data")
    return 8.0 * compressed_nbytes / data.size
