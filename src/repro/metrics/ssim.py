"""Structural similarity (SSIM) for 2D slices.

Implements Wang et al. 2004 with the standard 7x7 uniform window (the
convention scientific-data studies such as Baker et al. use for slice-wise
comparisons).  Local means/variances come from separable uniform filtering
via :func:`scipy.ndimage.uniform_filter` — fully vectorised.

For 3D inputs :func:`ssim` averages slice SSIM over the leading axis, which
matches how the paper visualises 3D fields (a 2D slice per figure).
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter

__all__ = ["ssim"]

_K1 = 0.01
_K2 = 0.03


def _ssim2d(x: np.ndarray, y: np.ndarray, data_range: float, win: int) -> float:
    c1 = (_K1 * data_range) ** 2
    c2 = (_K2 * data_range) ** 2

    mu_x = uniform_filter(x, win)
    mu_y = uniform_filter(y, win)
    mu_xx = uniform_filter(x * x, win)
    mu_yy = uniform_filter(y * y, win)
    mu_xy = uniform_filter(x * y, win)

    var_x = mu_xx - mu_x * mu_x
    var_y = mu_yy - mu_y * mu_y
    cov = mu_xy - mu_x * mu_y

    num = (2 * mu_x * mu_y + c1) * (2 * cov + c2)
    den = (mu_x * mu_x + mu_y * mu_y + c1) * (var_x + var_y + c2)
    # Crop the window-radius border where the filter sees padding.
    pad = win // 2
    smap = num / den
    if smap.shape[0] > 2 * pad and smap.shape[1] > 2 * pad:
        smap = smap[pad:-pad, pad:-pad]
    return float(smap.mean())


def ssim(
    original: np.ndarray,
    decompressed: np.ndarray,
    window: int = 7,
    data_range: float | None = None,
) -> float:
    """SSIM between two fields; 1.0 means structurally identical.

    Parameters
    ----------
    original, decompressed:
        1D (treated as a single row), 2D, or 3D arrays of equal shape.
    window:
        Side of the uniform filter window (odd, >= 3).
    data_range:
        ``dmax - dmin`` normalisation; defaults to the original's range
        (1.0 when the original is constant, so SSIM(x, x) stays 1).
    """
    x = np.asarray(original, dtype=np.float64)
    y = np.asarray(decompressed, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch {x.shape} vs {y.shape}")
    if window < 3 or window % 2 == 0:
        raise ValueError("window must be odd and >= 3")
    if data_range is None:
        rng = float(x.max() - x.min()) if x.size else 0.0
        data_range = rng if rng > 0 else 1.0

    if x.ndim == 1:
        x = x[None, :]
        y = y[None, :]
    if x.ndim == 2:
        return _ssim2d(x, y, data_range, window)
    if x.ndim == 3:
        return float(
            np.mean([_ssim2d(x[k], y[k], data_range, window) for k in range(x.shape[0])])
        )
    raise ValueError(f"ssim supports 1D-3D data, got {x.ndim}D")
