"""Autocorrelation of the compression error.

The paper reports ``ACF(error)`` — the lag-1 autocorrelation of the error
field ``d - d'`` — as a fidelity indicator: highly autocorrelated error means
structured artefacts (bad), white error means unbiased loss (good).
"""

from __future__ import annotations

import numpy as np

__all__ = ["error_acf", "acf"]


def acf(series: np.ndarray, lag: int = 1) -> float:
    """Lag-``lag`` autocorrelation of a flattened series.

    Returns 0.0 for degenerate inputs (shorter than ``lag + 2`` or constant),
    matching the convention that white/undefined error has no structure.
    """
    series = np.asarray(series, dtype=np.float64).ravel()
    if lag < 1:
        raise ValueError("lag must be >= 1")
    if series.size < lag + 2:
        return 0.0
    centered = series - series.mean()
    denom = float(np.dot(centered, centered))
    if denom == 0.0:
        return 0.0
    num = float(np.dot(centered[:-lag], centered[lag:]))
    return num / denom


def error_acf(original: np.ndarray, decompressed: np.ndarray, lag: int = 1) -> float:
    """``acf(d - d', lag)`` — the paper's ACF(error)."""
    original = np.asarray(original, dtype=np.float64)
    decompressed = np.asarray(decompressed, dtype=np.float64)
    if original.shape != decompressed.shape:
        raise ValueError("shape mismatch between original and decompressed")
    return acf(original - decompressed, lag=lag)
