"""Compression-quality metrics used in the paper's evaluation (Sec. VI-B4).

* :mod:`repro.metrics.error` — max error, MSE, RMSE, PSNR, value range.
* :mod:`repro.metrics.ssim` — structural similarity on 2D slices.
* :mod:`repro.metrics.acf` — autocorrelation of the compression-error field.
* :mod:`repro.metrics.ratio` — compression ratio and bit rate.

All functions accept arbitrary-dimensional float arrays and are vectorised.
"""

from repro.metrics.acf import error_acf
from repro.metrics.error import max_abs_error, mse, psnr, rmse, value_range
from repro.metrics.ratio import bit_rate, compression_ratio
from repro.metrics.ssim import ssim

__all__ = [
    "bit_rate",
    "compression_ratio",
    "error_acf",
    "max_abs_error",
    "mse",
    "psnr",
    "rmse",
    "ssim",
    "value_range",
]
