"""Pointwise error metrics.

PSNR follows the paper's definition: ``20 * log10((dmax - dmin) / rmse)``
where the range is taken over the *original* data.  Identical inputs give
``inf`` PSNR and zero errors.
"""

from __future__ import annotations

import numpy as np

__all__ = ["max_abs_error", "mse", "rmse", "psnr", "value_range"]


def _pair(original: np.ndarray, decompressed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    original = np.asarray(original, dtype=np.float64)
    decompressed = np.asarray(decompressed, dtype=np.float64)
    if original.shape != decompressed.shape:
        raise ValueError(
            f"shape mismatch: original {original.shape} vs decompressed {decompressed.shape}"
        )
    return original, decompressed


def value_range(data: np.ndarray) -> float:
    """``dmax - dmin`` of a dataset (0 for empty or constant data)."""
    data = np.asarray(data, dtype=np.float64)
    if data.size == 0:
        return 0.0
    return float(data.max() - data.min())


def max_abs_error(original: np.ndarray, decompressed: np.ndarray) -> float:
    """Infinity-norm of the error, the quantity absolute bounds must cap."""
    original, decompressed = _pair(original, decompressed)
    if original.size == 0:
        return 0.0
    return float(np.abs(original - decompressed).max())


def mse(original: np.ndarray, decompressed: np.ndarray) -> float:
    """Mean squared error."""
    original, decompressed = _pair(original, decompressed)
    if original.size == 0:
        return 0.0
    diff = original - decompressed
    return float(np.mean(diff * diff))


def rmse(original: np.ndarray, decompressed: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(original, decompressed)))


def psnr(original: np.ndarray, decompressed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB (paper Sec. VI-B4).

    ``inf`` for an exact reconstruction; ``-inf`` if the original is constant
    but the reconstruction differs (zero range, nonzero error).
    """
    original, decompressed = _pair(original, decompressed)
    err = rmse(original, decompressed)
    if err == 0.0:
        return float("inf")
    rng = value_range(original)
    if rng == 0.0:
        return float("-inf")
    return float(20.0 * np.log10(rng / err))
