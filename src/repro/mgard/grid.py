"""Dyadic grid hierarchy and multilinear upsampling.

Level ``l`` of an ``n``-point axis keeps every ``2**l``-th point, i.e.
``ceil(n / 2**l)`` points — no power-of-two-plus-one restriction.  Fine
points at odd positions are predicted by averaging their two coarse
neighbours (or copying the single neighbour at an even-length boundary);
the prediction stencil's coefficients are convex, so interpolation never
amplifies max-norm error — the property the compressor's additive error
budget relies on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["num_levels", "level_shape", "upsample", "detail_mask"]

MIN_COARSE = 3
MAX_LEVELS = 12


def level_shape(shape: tuple[int, ...], level: int) -> tuple[int, ...]:
    """Shape of the level-``level`` grid (ceil halving per level)."""
    out = tuple(shape)
    for _ in range(level):
        out = tuple(-(-s // 2) for s in out)
    return out


def num_levels(shape: tuple[int, ...], max_levels: int = MAX_LEVELS) -> int:
    """Deepest hierarchy whose coarsest grid keeps >= MIN_COARSE points per axis."""
    levels = 0
    while levels < max_levels:
        nxt = level_shape(shape, levels + 1)
        if any(s < MIN_COARSE for s in nxt):
            break
        levels += 1
    return levels


def _upsample_axis(arr: np.ndarray, new_len: int, axis: int) -> np.ndarray:
    """Insert interpolated odd positions along one axis.

    ``arr`` holds the even positions (``ceil(new_len / 2)`` of them); odd
    position ``2k + 1`` becomes the mean of coarse ``k`` and ``k + 1``, or a
    copy of coarse ``k`` when ``2k + 2 >= new_len`` (boundary).
    """
    if arr.shape[axis] != -(-new_len // 2):
        raise ValueError(
            f"coarse axis {axis} has {arr.shape[axis]} points; "
            f"expected {-(-new_len // 2)} for fine length {new_len}"
        )
    out_shape = list(arr.shape)
    out_shape[axis] = new_len
    out = np.empty(out_shape, dtype=arr.dtype)

    def ax(sl: slice) -> tuple[slice, ...]:
        idx = [slice(None)] * arr.ndim
        idx[axis] = sl
        return tuple(idx)

    out[ax(slice(0, None, 2))] = arr
    n_odd = new_len // 2
    if n_odd:
        left = arr[ax(slice(0, n_odd))]
        # Interior odd points average two neighbours; the trailing odd point
        # of an even-length axis has no right neighbour and copies the left.
        has_right = min(n_odd, arr.shape[axis] - 1)
        odd = left.copy()
        if has_right:
            right = arr[ax(slice(1, has_right + 1))]
            pair = ax(slice(0, has_right))
            odd[pair] = 0.5 * (left[pair] + right)
        out[ax(slice(1, None, 2))] = odd
    return out


def upsample(coarse: np.ndarray, fine_shape: tuple[int, ...]) -> np.ndarray:
    """Multilinear interpolation of a coarse grid onto the fine grid."""
    out = coarse.astype(np.float64, copy=True)
    for axis, new_len in enumerate(fine_shape):
        out = _upsample_axis(out, new_len, axis)
    return out


def detail_mask(fine_shape: tuple[int, ...]) -> np.ndarray:
    """Boolean mask of fine-grid points *not* on the coarse grid."""
    mask = np.zeros(fine_shape, dtype=bool)
    grids = np.indices(fine_shape)
    odd_any = (grids % 2 == 1).any(axis=0)
    mask[:] = odd_any
    return mask
