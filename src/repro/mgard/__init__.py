"""MGARD: multigrid adaptive reduction of data (paper Sec. II-A3).

A from-scratch reimplementation of MGARD's architecture [15]: a dyadic
multilevel decomposition where each level stores *detail coefficients* —
the difference between the grid values and their multilinear interpolation
from the next-coarser grid — plus the coarsest-grid values, all quantised
with per-level error budgets and entropy coded.

The infinity-norm guarantee is computable and simple: multilinear
interpolation is non-expansive in the max norm, so reconstruction error
accumulates additively across levels; budgets ``eb * 2**-(l+1)`` (finest
level first) plus ``eb * 2**-L`` for the coarsest grid telescope to exactly
``eb``.  As in the paper's build, only 2D and 3D data are supported — this
is why MGARD is absent from the HACC and EXAALT results (Fig. 9 d/e).
"""

from repro.mgard.compressor import MGARDCompressor
from repro.pressio.registry import register_compressor

register_compressor("mgard", MGARDCompressor)

__all__ = ["MGARDCompressor"]
