"""MGARD compressor: decompose -> per-level quantize -> Huffman -> dictionary.

Error budgeting (infinity norm / ``abs`` mode): with ``L`` levels, detail
level ``l`` gets bin half-width ``eb * 2**-(l+1)`` and the coarsest grid
``eb * 2**-L``; interpolation is max-norm non-expansive, so errors add
across levels and telescope to at most ``eb``.  A verify-and-patch pass
(as in :mod:`repro.zfp.compressor`) makes the bound unconditional against
storage-dtype rounding.

Out-of-range quantization codes escape to verbatim float64 coefficients
(sentinel symbol), so pathological data cannot overflow the Huffman
alphabet.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

import numpy as np

from repro.codecs.container import Container
from repro.codecs.huffman import HuffmanCodec
from repro.codecs.interface import get_byte_codec
from repro.codecs.varint import decode_uvarints, encode_uvarints, zigzag_decode, zigzag_encode
from repro.mgard.decompose import decompose, detail_sizes, recompose
from repro.mgard.grid import level_shape, num_levels
from repro.pressio.arrayio import decode_array_header, encode_array_header
from repro.pressio.compressor import CompressedField, Compressor

__all__ = ["MGARDCompressor"]


def _level_budgets(eb: float, levels: int) -> tuple[list[float], float]:
    """(per-detail-level half-widths finest-first, coarsest half-width)."""
    detail = [eb * 2.0 ** -(l + 1) for l in range(levels)]
    coarse = eb * 2.0**-levels
    return detail, coarse


@dataclass(frozen=True)
class MGARDCompressor(Compressor):
    """MGARD-style multilevel compressor with an absolute error bound.

    Parameters
    ----------
    error_bound:
        Infinity-norm bound (must be positive at compress time).
    radius:
        Quantization codes outside ``(-radius, radius)`` escape to verbatim
        float64 storage.
    dict_codec:
        Dictionary coder for the entropy-coded payload (``"zlib"``/``"lz77"``).
    max_levels:
        Cap on hierarchy depth.
    """

    error_bound: float = 1e-3
    radius: int = 32768
    dict_codec: str = "zlib"
    max_levels: int = 12
    norm: str = "inf"

    name = "mgard"
    supported_ndims = (2, 3)

    def __post_init__(self) -> None:
        if self.norm not in ("inf", "l2"):
            raise ValueError(f"norm must be 'inf' or 'l2', got {self.norm!r}")

    @property
    def mode(self) -> str:  # type: ignore[override]
        # "abs" = infinity norm (absolute bound); "mse" = L2 norm mode,
        # where ``error_bound`` is the target mean squared error (the
        # paper: "the L2 norm mode can be used to control the MSE").
        return "abs" if self.norm == "inf" else "mse"

    def with_error_bound(self, error_bound: float) -> "MGARDCompressor":
        return replace(self, error_bound=float(error_bound))

    # ------------------------------------------------------------------
    def compress(self, data: np.ndarray) -> CompressedField:
        data = np.asarray(data)
        self.check_supported(data)
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(f"MGARD expects float32/float64 data, got {data.dtype}")
        if not self.error_bound > 0:
            raise ValueError(f"error bound must be positive, got {self.error_bound}")
        if data.size == 0:
            outer = Container()
            outer.add("header", self._header(data, 0, float(self.error_bound)))
            return CompressedField(outer.tobytes(), data.nbytes)

        if self.norm == "inf":
            return self._compress_abs(data, float(self.error_bound), patch=True)

        # L2 norm mode: quantization with uniform half-width tau gives
        # per-point error variance ~ tau^2 / 3; start there and verify
        # against the exact decode path, halving until the measured MSE
        # meets the target (a computable guarantee, like the inf mode's
        # patching but in the right norm).
        target_mse = float(self.error_bound)
        tau = float(np.sqrt(3.0 * target_mse))
        field = self._compress_abs(data, tau, patch=False)
        for _ in range(12):
            recon = self.decompress(field)
            diff = recon.astype(np.float64) - data.astype(np.float64)
            if float(np.mean(diff * diff)) <= target_mse:
                break
            tau *= 0.5
            field = self._compress_abs(data, tau, patch=False)
        return field

    def _compress_abs(self, data: np.ndarray, eb: float, patch: bool) -> CompressedField:
        levels = num_levels(data.shape, self.max_levels)
        coarse, details = decompose(data, levels)
        det_eps, coarse_eps = _level_budgets(eb, levels)

        segments = [coarse.ravel()] + details
        epsilons = [coarse_eps] + det_eps
        symbols_parts: list[np.ndarray] = []
        escape_parts: list[np.ndarray] = []
        sentinel = np.int64(self.radius)
        for values, eps in zip(segments, epsilons):
            q = np.rint(values / (2.0 * eps))
            ok = np.abs(q) < self.radius
            symbols_parts.append(np.where(ok, q, float(sentinel)).astype(np.int64))
            escape_parts.append(values[~ok])
        symbols = np.concatenate(symbols_parts)
        escapes = np.concatenate(escape_parts) if escape_parts else np.zeros(0)

        inner = Container()
        inner.add("codes", HuffmanCodec().encode(symbols))
        inner.add("escapes", escapes.astype(np.float64).tobytes())

        if patch:
            # Verify-and-patch against the exact decode path (inf norm).
            recon = self._reconstruct(data.shape, data.dtype, levels, symbols, escapes, eb)
            bad = np.flatnonzero(
                np.abs(recon.astype(np.float64).ravel() - data.astype(np.float64).ravel())
                > eb
            )
        else:
            bad = np.zeros(0, dtype=np.int64)
        inner.add("patch_n", encode_uvarints(np.asarray([bad.size], dtype=np.uint64)))
        inner.add(
            "patch_idx",
            encode_uvarints(zigzag_encode(np.diff(bad, prepend=np.int64(0)))),
        )
        inner.add("patch_val", data.ravel()[bad].tobytes())

        body = get_byte_codec(self.dict_codec).compress(inner.tobytes())
        outer = Container()
        outer.add("header", self._header(data, levels, eb))
        outer.add("body", body)
        return CompressedField(outer.tobytes(), data.nbytes)

    def _header(self, data: np.ndarray, levels: int, applied_bound: float) -> bytes:
        # The header carries the absolute half-width actually applied (for
        # L2 mode that is the internal tau, not the MSE target), so the
        # decoder is norm-agnostic.
        codec_name = self.dict_codec.encode("utf-8")
        return (
            encode_array_header(data)
            + struct.pack("<d", applied_bound)
            + encode_uvarints(
                np.asarray([levels, self.radius, len(codec_name)], dtype=np.uint64)
            )
            + codec_name
        )

    # ------------------------------------------------------------------
    def decompress(self, field: CompressedField | bytes) -> np.ndarray:
        payload = field.payload if isinstance(field, CompressedField) else field
        outer = Container.frombytes(payload)
        header = outer.get("header")
        dtype, shape, off = decode_array_header(header)
        (eb,) = struct.unpack_from("<d", header, off)
        off += 8
        (levels, radius, codec_len), off = decode_uvarints(header, 3, off)
        codec_name = header[off : off + int(codec_len)].decode("utf-8")

        if int(np.prod(shape)) == 0:
            return np.zeros(shape, dtype=dtype)

        inner = Container.frombytes(get_byte_codec(codec_name).decompress(outer.get("body")))
        symbols = HuffmanCodec().decode(inner.get("codes"))
        escapes = np.frombuffer(inner.get("escapes"), dtype=np.float64)

        recon = self._reconstruct(shape, dtype, int(levels), symbols, escapes, float(eb))

        (n_patch,), _ = decode_uvarints(inner.get("patch_n"), 1, 0)
        if int(n_patch):
            deltas, _ = decode_uvarints(inner.get("patch_idx"), int(n_patch), 0)
            idx = np.cumsum(zigzag_decode(deltas))
            values = np.frombuffer(inner.get("patch_val"), dtype=dtype)
            flat = recon.ravel()
            flat[idx] = values
            recon = flat.reshape(shape)
        return recon

    def _reconstruct(
        self,
        shape: tuple[int, ...],
        dtype: np.dtype,
        levels: int,
        symbols: np.ndarray,
        escapes: np.ndarray,
        eb: float,
    ) -> np.ndarray:
        """Dequantize segments and recompose; shared by both directions."""
        det_eps, coarse_eps = _level_budgets(eb, levels)
        coarse_shape = level_shape(shape, levels)
        sizes = [int(np.prod(coarse_shape))] + detail_sizes(shape, levels)
        epsilons = [coarse_eps] + det_eps

        boundaries = np.cumsum(sizes)
        if symbols.size != boundaries[-1]:
            raise ValueError("MGARD payload symbol count mismatch")
        parts = np.split(symbols, boundaries[:-1])

        esc_mask_all = symbols == self.radius
        esc_counts = [int(esc_mask_all[b - s : b].sum()) for s, b in zip(sizes, boundaries)]
        esc_bounds = np.cumsum(esc_counts)
        esc_parts = np.split(escapes, esc_bounds[:-1])

        values: list[np.ndarray] = []
        for part, eps, esc in zip(parts, epsilons, esc_parts):
            v = part.astype(np.float64) * (2.0 * eps)
            mask = part == self.radius
            v[mask] = esc
            values.append(v)

        coarse = values[0].reshape(coarse_shape)
        recon = recompose(coarse, values[1:], shape, levels)
        return recon.astype(dtype)
