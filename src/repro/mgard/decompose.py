"""Multilevel decomposition and recomposition.

``decompose`` peels levels finest-first: at each level the detail
coefficients are the grid values minus their interpolation from the
next-coarser grid; the coarse grid then recurses.  ``recompose`` replays
the same interpolation with (de)quantised inputs — both sides perform
identical float64 arithmetic, so reconstruction is deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.mgard.grid import detail_mask, level_shape, upsample

__all__ = ["decompose", "recompose", "detail_sizes"]


def decompose(data: np.ndarray, levels: int) -> tuple[np.ndarray, list[np.ndarray]]:
    """Split ``data`` into (coarsest grid values, per-level detail vectors).

    ``details[0]`` belongs to the finest level.  All outputs are float64.
    """
    v = np.asarray(data, dtype=np.float64)
    ndim = v.ndim
    details: list[np.ndarray] = []
    for _ in range(levels):
        coarse = v[(slice(None, None, 2),) * ndim].copy()
        pred = upsample(coarse, v.shape)
        details.append((v - pred)[detail_mask(v.shape)])
        v = coarse
    return v, details


def recompose(
    coarse: np.ndarray, details: list[np.ndarray], shape: tuple[int, ...], levels: int
) -> np.ndarray:
    """Inverse of :func:`decompose` (given possibly-quantised inputs)."""
    v = np.asarray(coarse, dtype=np.float64)
    for l in range(levels - 1, -1, -1):
        fine_shape = level_shape(shape, l)
        pred = upsample(v, fine_shape)
        pred[detail_mask(fine_shape)] += details[l]
        v = pred
    return v


def detail_sizes(shape: tuple[int, ...], levels: int) -> list[int]:
    """Number of detail coefficients per level (finest first)."""
    sizes = []
    for l in range(levels):
        fine = level_shape(shape, l)
        coarse = level_shape(shape, l + 1)
        sizes.append(int(np.prod(fine)) - int(np.prod(coarse)))
    return sizes
