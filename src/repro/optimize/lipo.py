"""MaxLIPO-style candidate selection.

Given evaluations ``(x_i, y_i)`` of an unknown function with (estimated)
Lipschitz constant ``k``, the piecewise-linear *lower* bound

    L(x) = max_i ( y_i - k * |x - x_i| )

is the tightest bound consistent with the data.  The next probe should go
where ``L`` is smallest — the point that could improve on the incumbent the
most.  Following the practical MaxLIPO recipe, ``k`` is estimated from the
data itself (the steepest observed secant slope, inflated slightly), and
candidates are scored over a dense deterministic grid plus random jitter so
plateaus in step-like objectives (exactly what compressor ratio curves look
like — Fig. 4) are still explored.
"""

from __future__ import annotations

import numpy as np

__all__ = ["estimate_lipschitz", "lower_bound", "propose"]

_K_INFLATION = 1.1
_CANDIDATES = 256


def estimate_lipschitz(xs: np.ndarray, ys: np.ndarray) -> float:
    """Steepest pairwise secant slope, slightly inflated; >= tiny positive."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.size < 2:
        return 1.0
    dx = np.abs(xs[:, None] - xs[None, :])
    dy = np.abs(ys[:, None] - ys[None, :])
    with np.errstate(divide="ignore", invalid="ignore"):
        slopes = np.where(dx > 0, dy / dx, 0.0)
    k = float(slopes.max())
    return max(k * _K_INFLATION, 1e-12)


def lower_bound(x: np.ndarray, xs: np.ndarray, ys: np.ndarray, k: float) -> np.ndarray:
    """``L(x)`` evaluated at each candidate in ``x`` (vectorised)."""
    x = np.asarray(x, dtype=np.float64)
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    return (ys[None, :] - k * np.abs(x[:, None] - xs[None, :])).max(axis=1)


def propose(
    xs: np.ndarray,
    ys: np.ndarray,
    lower: float,
    upper: float,
    rng: np.random.Generator,
) -> float:
    """Next probe location by minimum lower bound.

    Candidates are a uniform grid over ``[lower, upper]`` with per-call
    random jitter; ties in the bound (plateaus) break toward the candidate
    farthest from existing samples, which keeps exploration moving across
    the steps of a staircase objective.
    """
    span = upper - lower
    if span <= 0:
        return lower
    base = np.linspace(lower, upper, _CANDIDATES)
    jitter = rng.uniform(-0.5, 0.5, _CANDIDATES) * (span / _CANDIDATES)
    cand = np.clip(base + jitter, lower, upper)
    t_xs = np.asarray(xs, dtype=np.float64)

    k = estimate_lipschitz(t_xs, ys)
    bound = lower_bound(cand, t_xs, ys, k)
    # Distance to nearest sample (tie-break toward unexplored space).
    dist = np.abs(cand[:, None] - t_xs[None, :]).min(axis=1)
    # Normalise both terms so the bound dominates and distance only breaks ties.
    bound_range = bound.max() - bound.min()
    if bound_range <= 0:
        score = -dist
    else:
        score = (bound - bound.min()) / bound_range - 1e-3 * dist / max(span, 1e-300)
    return float(cand[int(np.argmin(score))])
