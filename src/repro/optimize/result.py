"""Result records for the global optimizer."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Evaluation", "OptimizationResult"]


@dataclass(frozen=True)
class Evaluation:
    """One probe of the objective."""

    x: float
    fx: float


@dataclass
class OptimizationResult:
    """Outcome of :func:`repro.optimize.find_global_min`.

    Attributes
    ----------
    x_best, f_best:
        Argument and value of the best (lowest) evaluation.
    n_calls:
        Number of objective evaluations performed.
    hit_cutoff:
        True when the search stopped early because ``f_best <= cutoff``.
    history:
        Every evaluation in probe order.
    """

    x_best: float
    f_best: float
    n_calls: int
    hit_cutoff: bool
    history: list[Evaluation] = field(default_factory=list)
