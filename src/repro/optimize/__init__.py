"""Derivative-free global minimisation (the Dlib ``find_global_min`` analog).

FRaZ's autotuner is built on Davis King's global optimizer [8], which
alternates two models:

* **MaxLIPO** (Malherbe & Vayatis [40]) — a piecewise-linear *lower* bound
  on the objective built from a data-driven Lipschitz estimate; the next
  probe goes where the bound still admits an improvement over the incumbent
  (:mod:`repro.optimize.lipo`);
* **trust-region quadratic refinement** (Powell's NEWUOA idea [41]) — a
  parabola through the best point's bracket, polishing the lowest valley
  (:mod:`repro.optimize.trust_region`).

:func:`repro.optimize.find_global_min` adds the paper's modification: a
**global cutoff** — the search stops as soon as the objective value falls
below a user threshold (FRaZ uses ``(eps * rho_t)**2``), which is what makes
fixed-ratio tuning cheap in the common feasible case.
"""

from repro.optimize.global_search import find_global_min
from repro.optimize.result import Evaluation, OptimizationResult

__all__ = ["Evaluation", "OptimizationResult", "find_global_min"]
