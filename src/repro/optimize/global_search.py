"""``find_global_min``: the alternating LIPO / trust-region driver.

Mirrors Dlib's global optimizer with FRaZ's modification:

* evaluations alternate between a MaxLIPO exploration proposal and a
  quadratic trust-region refinement of the best valley;
* the **cutoff** terminates the search as soon as the best value drops to
  the user's acceptance threshold (Sec. V-B3: stop once the loss is within
  ``[0, (eps * rho_t)**2]``), trading exactness for speed;
* the function is treated as deterministic and expensive — every proposal
  is deduplicated against previous probes before being evaluated.

Scale handling: compressor error bounds are *scale* parameters — a ratio
curve's structure concentrates in the lowest decades of a wide interval.
When ``upper / lower`` spans more than three decades the entire search
(seeding, LIPO bounds, quadratic refinement) runs in log-space, where such
objectives are far closer to uniformly Lipschitz.  Results are reported in
the original coordinates.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.optimize.lipo import propose
from repro.optimize.result import Evaluation, OptimizationResult
from repro.optimize.trust_region import refine, v_refine

__all__ = ["find_global_min"]

_LOG_SPAN_THRESHOLD = 1e3


def find_global_min(
    func: Callable[[float], float],
    lower: float,
    upper: float,
    max_calls: int = 40,
    cutoff: float | None = None,
    seed: int = 0,
    initial_points: Iterable[float] = (),
) -> OptimizationResult:
    """Minimise a scalar black-box function over ``[lower, upper]``.

    Parameters
    ----------
    func:
        Deterministic objective (FRaZ passes the clamped-square ratio loss).
    lower, upper:
        Search interval; every probe stays inside it.
    max_calls:
        Hard budget on objective evaluations.
    cutoff:
        Early-termination threshold: stop as soon as ``f(x) <= cutoff``.
    seed:
        Seed for the (deterministic) candidate jitter.
    initial_points:
        Extra probes to evaluate first — FRaZ seeds the previous time-step's
        error bound here.  Never trimmed by the seeding budget.

    Returns
    -------
    OptimizationResult
        Best probe, call count, cutoff flag and the full history (all in the
        original, untransformed coordinates).
    """
    if not upper > lower:
        raise ValueError(f"need upper > lower, got [{lower}, {upper}]")
    if max_calls < 1:
        raise ValueError("max_calls must be >= 1")

    span = upper - lower
    use_log = lower > 0 and upper / lower > _LOG_SPAN_THRESHOLD

    if use_log:
        t_lower, t_upper = float(np.log(lower)), float(np.log(upper))

        def to_t(x: float) -> float:
            return float(np.log(np.clip(x, lower, upper)))

        def from_t(t: float) -> float:
            # Clip in x-space too: exp(log(upper)) can overshoot by one ULP.
            return float(np.clip(np.exp(np.clip(t, t_lower, t_upper)), lower, upper))

    else:
        t_lower, t_upper = float(lower), float(upper)

        def to_t(x: float) -> float:
            return float(np.clip(x, lower, upper))

        def from_t(t: float) -> float:
            return float(np.clip(t, lower, upper))

    rng = np.random.default_rng(seed)
    history: list[Evaluation] = []
    t_seen: list[float] = []
    seen_x: set[float] = set()

    def evaluate(t: float) -> float:
        x = from_t(t)
        fx = float(func(x))
        history.append(Evaluation(x, fx))
        t_seen.append(t)
        seen_x.add(x)
        return fx

    def done() -> bool:
        if cutoff is not None and history and min(h.fx for h in history) <= cutoff:
            return True
        return len(history) >= max_calls

    # Seed probes in t-space: user points first (never trimmed), then the
    # interval ends and interior quantiles, capped at half the budget so
    # the optimizer proper keeps its share of probes.
    user_seeds = [to_t(float(p)) for p in initial_points]
    t_span = t_upper - t_lower
    generic = [
        t_lower,
        t_upper,
        t_lower + 0.5 * t_span,
        t_lower + 0.25 * t_span,
        t_lower + 0.75 * t_span,
        t_lower + 0.61803398875 * t_span,
    ]
    budget = max(3, max_calls // 2)
    seeds = user_seeds + generic[: max(budget - len(user_seeds), 2)]
    for t in seeds:
        if done():
            break
        if from_t(t) not in seen_x:
            evaluate(t)

    # Adaptive alternation (Dlib-style): exploit the incumbent valley while
    # it keeps improving the best value; fall back to one MaxLIPO
    # exploration probe whenever exploitation stalls.  Exploitation leads
    # with the sqrt-loss secant/V step — exact for FRaZ's squared-distance
    # objective — and uses the quadratic trust region only when that step
    # has no fresh proposal (the parabola's vertex is easily dragged off
    # target by the tall far wall of an asymmetric valley).
    explore_next = False
    while not done():
        ts = np.asarray(t_seen)
        ys = np.asarray([h.fx for h in history])
        best_before = float(ys.min())
        exploring = explore_next
        if exploring:
            t_next = propose(ts, ys, t_lower, t_upper, rng)
            explore_next = False
        else:
            t_next = v_refine(ts, ys, t_lower, t_upper)
            if t_next is None:
                t_next = refine(ts, ys, t_lower, t_upper)
        if t_next is None or from_t(t_next) in seen_x:
            # Degenerate proposal: fall back to a random unexplored probe.
            for _ in range(16):
                t_next = float(rng.uniform(t_lower, t_upper))
                if from_t(t_next) not in seen_x:
                    break
            else:
                break
        fx = evaluate(t_next)
        if not exploring and fx >= best_before:
            # Exploitation stalled: spend the next probe exploring.  An
            # exploration probe always hands back to exploitation, whatever
            # it finds — otherwise a dry spell would explore forever.
            explore_next = True

    best = min(history, key=lambda h: h.fx)
    hit = cutoff is not None and best.fx <= cutoff
    return OptimizationResult(
        x_best=best.x,
        f_best=best.fx,
        n_calls=len(history),
        hit_cutoff=hit,
        history=history,
    )
