"""Quadratic (trust-region) refinement of the best valley.

Mirrors the second half of Dlib's alternation: fit a parabola through the
incumbent best point and its nearest evaluated neighbours on either side and
jump to the parabola's vertex when it is a proper interior minimum;
otherwise bisect the widest flank of the bracket.  This converges fast once
LIPO has located the right step of the objective.

:func:`v_refine` is a FRaZ-specific third proposal: the ratio loss is a
*squared distance* ``(rho(e) - rho_t)**2``, so between the incumbent and a
much-higher neighbour the objective is locally V-shaped in ``sqrt(y)``.
Interpolating the V's tip (regula falsi on ``sqrt(y)``) homes in on the
band crossing geometrically — exactly the move a parabola fit fumbles when
one wall of the bracket is orders of magnitude taller than the other.
"""

from __future__ import annotations

import numpy as np

__all__ = ["refine", "v_refine"]


def refine(
    xs: np.ndarray,
    ys: np.ndarray,
    lower: float,
    upper: float,
) -> float | None:
    """Propose a refinement point near the incumbent minimum.

    Returns ``None`` when no useful proposal exists (degenerate bracket or
    the vertex collides with an existing sample).
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    order = np.argsort(xs)
    xs_sorted = xs[order]
    ys_sorted = ys[order]
    i_best = int(np.argmin(ys_sorted))

    # Bracket around the best point.
    left = i_best - 1 if i_best > 0 else None
    right = i_best + 1 if i_best < xs_sorted.size - 1 else None

    if left is None and right is None:
        return None
    if left is None or right is None:
        # Best point on the hull: bisect toward the boundary beyond it.
        x_b = xs_sorted[i_best]
        target = lower if left is None else upper
        mid = 0.5 * (x_b + target)
        return _accept(mid, xs_sorted, lower, upper)

    x0, x1, x2 = xs_sorted[left], xs_sorted[i_best], xs_sorted[right]
    y0, y1, y2 = ys_sorted[left], ys_sorted[i_best], ys_sorted[right]
    denom = (x0 - x1) * (x0 - x2) * (x1 - x2)
    if denom == 0:
        return None
    a = (x2 * (y1 - y0) + x1 * (y0 - y2) + x0 * (y2 - y1)) / denom
    b = (x2**2 * (y0 - y1) + x1**2 * (y2 - y0) + x0**2 * (y1 - y2)) / denom
    if a > 0:
        vertex = -b / (2 * a)
        if x0 < vertex < x2:
            return _accept(vertex, xs_sorted, lower, upper)
    # Concave or exterior vertex: bisect the wider flank.
    if (x1 - x0) >= (x2 - x1):
        return _accept(0.5 * (x0 + x1), xs_sorted, lower, upper)
    return _accept(0.5 * (x1 + x2), xs_sorted, lower, upper)


def v_refine(
    xs: np.ndarray,
    ys: np.ndarray,
    lower: float,
    upper: float,
) -> float | None:
    """Secant step on ``sqrt(y)`` toward the distance valley's zero.

    ``sqrt`` of a squared-distance objective is locally linear on either
    branch of the V; extrapolating the line through the best point and its
    nearest neighbour to ``sqrt(y) = 0`` is a regula-falsi/secant move that
    converges geometrically on the band crossing — including when both
    samples sit on the *same* branch, where interpolating against a distant
    far wall would crawl.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    order = np.argsort(xs)
    xs_sorted = xs[order]
    r = np.sqrt(np.maximum(ys[order], 0.0))  # distance values
    i = int(np.argmin(r))
    n = xs_sorted.size

    def tip(a: int, b: int) -> float | None:
        # Opposite-branch pairs straddle the crossing: the weighted V-tip
        # interpolation is exact there.
        if r[a] + r[b] <= 0:
            return None
        return float((r[b] * xs_sorted[a] + r[a] * xs_sorted[b]) / (r[a] + r[b]))

    def secant(a: int, b: int) -> float | None:
        # Same-branch pairs: extrapolate the line through them to r = 0.
        if r[a] == r[b]:
            return None
        ta, tb = xs_sorted[a], xs_sorted[b]
        return float(tb - r[b] * (tb - ta) / (r[b] - r[a]))

    # A straddling pair and a same-branch pair are indistinguishable from
    # two samples alone (both readings fit any two (x, r) points), so the
    # ordering is heuristic: interior incumbents try the bounded tips
    # first; an incumbent on the hull tries the outward secant first, but
    # only when its root lands beyond the edge *inside* the interval — a
    # root past the boundary means the same-branch reading is implausible
    # and the tip is used instead.  A wrong first guess costs one probe;
    # the new sample disambiguates the next call.
    candidates: list[float | None] = []
    if 0 < i < n - 1:
        candidates += [tip(i, i + 1), tip(i - 1, i), secant(i - 1, i), secant(i, i + 1)]
    elif i == n - 1 and n >= 2:
        root = secant(i - 1, i)
        if root is not None and xs_sorted[i] < root <= upper:
            candidates.append(root)
        candidates.append(tip(i - 1, i))
    elif i == 0 and n >= 2:
        root = secant(i, i + 1)
        if root is not None and lower <= root < xs_sorted[i]:
            candidates.append(root)
        candidates.append(tip(i, i + 1))
    for cand in candidates:
        if cand is None:
            continue
        accepted = _accept(cand, xs_sorted, lower, upper)
        if accepted is not None:
            return accepted
    return None


def _accept(x: float, xs_sorted: np.ndarray, lower: float, upper: float) -> float | None:
    """Clamp and reject proposals too close to an existing sample.

    The rejection radius is deliberately coarse (0.1% of the interval): a
    proposal that near-duplicates a sample gains almost no information, and
    rejecting it makes the caller fall through to its next candidate
    (e.g. from the right-flank V-tip to the left-flank bracket) instead of
    micro-stepping around a stale point.
    """
    x = float(np.clip(x, lower, upper))
    span = max(upper - lower, 1e-300)
    if np.abs(xs_sorted - x).min() < 1e-3 * span:
        return None
    return x
