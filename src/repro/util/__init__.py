"""Small shared utilities with no dependencies on the rest of the package.

Currently just :mod:`repro.util.concurrency` — the ``guarded_by``
annotation that declares which lock protects which attributes, read at
lint time by ``repro check`` (see ``docs/STATIC_ANALYSIS.md``).
"""

from repro.util.concurrency import guarded_by

__all__ = ["guarded_by"]
