"""Concurrency annotations for the threaded subsystems.

The service tier keeps its invariants with plain ``threading`` locks and
a naming convention; this module makes the convention *machine-checkable*
without adding any runtime cost:

* :func:`guarded_by` declares, on the class, which lock attribute guards
  which instance attributes.  By default the decorator only records
  metadata (``__guarded_fields__`` / ``__guard_locks__``) — it installs
  no wrappers, so annotated classes behave exactly as before.
* The ``repro check`` lock-discipline checker (``LOCK001``/``LOCK002``,
  see ``docs/STATIC_ANALYSIS.md``) reads the same declaration from the
  AST and verifies every access to a guarded attribute happens inside
  ``with self.<lock>:`` or a ``*_locked`` method (whose name promises
  the caller already holds the lock).
* With ``REPRO_SANITIZE=1`` in the environment (opt-in; test-only), the
  same declaration additionally installs the runtime concurrency
  sanitizer from :mod:`repro.analysis.sanitizer`: data descriptors that
  assert the declared lock is held on every guarded access and record
  the observed lock-order graph.  See docs/STATIC_ANALYSIS.md.

Conventions the checker understands:

* ``__init__``/``__setstate__``/``__del__`` are exempt — the object is
  not shared yet (or no longer).
* Methods named ``*_locked`` are exempt bodies, but *calling* one
  without holding a class lock is itself a finding.
* A class may declare several locks by stacking decorators::

      @guarded_by("_lock", "_executor", "crashes")
      @guarded_by("_count_lock", "tasks_submitted")
      class ProcessJobPool: ...
"""

from __future__ import annotations

__all__ = ["guarded_by"]


def guarded_by(lock: str, *fields: str):
    """Class decorator: declare that ``lock`` guards ``fields``.

    Purely declarative — the returned class is the input class with two
    metadata attributes merged in:

    * ``__guarded_fields__``: ``{field_name: lock_name}``
    * ``__guard_locks__``: tuple of declared lock attribute names

    Stacking multiple ``guarded_by`` decorators merges the maps, so one
    class can partition its state across several locks.
    """
    if not lock.isidentifier():
        raise ValueError(f"lock must be an attribute name, got {lock!r}")
    for field in fields:
        if not field.isidentifier():
            raise ValueError(f"guarded field must be an attribute name, got {field!r}")

    def decorate(cls):
        guards = dict(getattr(cls, "__guarded_fields__", {}))
        for field in fields:
            guards[field] = lock
        cls.__guarded_fields__ = guards
        locks = tuple(getattr(cls, "__guard_locks__", ()))
        if lock not in locks:
            cls.__guard_locks__ = locks + (lock,)
        if _sanitizer_active():
            from repro.analysis.sanitizer import instrument_class
            instrument_class(cls, lock, fields)
        return cls

    return decorate


def _sanitizer_active() -> bool:
    """Lazy check so the sanitizer import cost is only paid when opted in."""
    import sys

    runtime = sys.modules.get("repro.analysis.sanitizer.runtime")
    if runtime is not None:
        return runtime.is_active()
    import os

    if os.environ.get("REPRO_SANITIZE", "").strip() in ("", "0", "false"):
        return False
    from repro.analysis.sanitizer import runtime as _runtime

    return _runtime.is_active()
