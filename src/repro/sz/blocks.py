"""Block decomposition helpers for SZ's per-block predictor selection.

SZ splits the dataset into consecutive non-overlapping blocks (6^d by
default) and picks a predictor per block.  Full (interior) blocks can be
reshaped into a dense ``(nblocks, B**d)`` view for vectorised per-block math;
ragged edge blocks always fall back to the Lorenzo predictor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlockGrid"]


@dataclass(frozen=True)
class BlockGrid:
    """Geometry of the block decomposition of an array shape."""

    shape: tuple[int, ...]
    block: int

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def counts(self) -> tuple[int, ...]:
        """Number of blocks along each axis (ceil division)."""
        return tuple(-(-s // self.block) for s in self.shape)

    @property
    def full_counts(self) -> tuple[int, ...]:
        """Number of *full* blocks along each axis."""
        return tuple(s // self.block for s in self.shape)

    @property
    def n_blocks(self) -> int:
        return int(np.prod(self.counts))

    @property
    def n_full_blocks(self) -> int:
        return int(np.prod(self.full_counts))

    def full_region(self) -> tuple[slice, ...]:
        """Slices selecting the region covered by full blocks."""
        return tuple(slice(0, c * self.block) for c in self.full_counts)

    def full_block_view(self, data: np.ndarray) -> np.ndarray:
        """Dense ``(n_full_blocks, block**ndim)`` view of the full-block region.

        The returned array is a reshaped copy-free view when possible; blocks
        are ordered C-style over the full-block grid, matching
        :meth:`full_block_ids`.
        """
        if data.shape != self.shape:
            raise ValueError(f"expected array of shape {self.shape}, got {data.shape}")
        b = self.block
        region = data[self.full_region()]
        fc = self.full_counts
        # (n0, b, n1, b, ...) -> (n0, n1, ..., b, b, ...)
        interleaved = region.reshape(
            tuple(x for c in fc for x in (c, b))
        )
        axes = tuple(range(0, 2 * self.ndim, 2)) + tuple(range(1, 2 * self.ndim, 2))
        return interleaved.transpose(axes).reshape(self.n_full_blocks, b**self.ndim)

    def scatter_full_blocks(self, block_values: np.ndarray, out: np.ndarray) -> None:
        """Inverse of :meth:`full_block_view`: write per-block data back."""
        b = self.block
        fc = self.full_counts
        axes = tuple(range(0, 2 * self.ndim, 2)) + tuple(range(1, 2 * self.ndim, 2))
        inverse_axes = np.argsort(axes)
        shaped = block_values.reshape(fc + (b,) * self.ndim).transpose(inverse_axes)
        out[self.full_region()] = shaped.reshape(tuple(c * b for c in fc))

    def full_block_mask(self, selected: np.ndarray) -> np.ndarray:
        """Boolean point mask for a boolean per-full-block selection."""
        mask_blocks = np.zeros(self.n_full_blocks, dtype=bool)
        mask_blocks[:] = selected
        point_mask = np.zeros(self.shape, dtype=bool)
        expanded = np.repeat(
            mask_blocks.astype(np.uint8)[:, None], self.block**self.ndim, axis=1
        )
        self.scatter_full_blocks(expanded, point_mask.view(np.uint8).reshape(self.shape))
        return point_mask

    def block_coords(self) -> np.ndarray:
        """Local coordinates inside a full block: ``(ndim, block**ndim)``."""
        return np.indices((self.block,) * self.ndim).reshape(self.ndim, -1)
