"""Point-wise relative error bounds via log-domain transform.

SZ's ``PW_REL`` mode guarantees ``|d_i - d'_i| <= rel * |d_i|`` for every
point — the bound the paper's reference [9] (Liang et al., CLUSTER'18)
obtains with "an efficient transformation scheme": compress ``log2|d|``
under an *absolute* bound of ``log2(1 + rel)``, store signs separately,
and exponentiate on reconstruction.  Cosmology users favour it because
particle coordinates span magnitudes (halo cores vs voids) that no single
absolute bound serves.

:class:`SZPointwiseRelative` composes the stock :class:`SZCompressor` on
the transformed field:

* ``sign`` bits and a ``zero`` mask travel as dictionary-coded bitmaps;
* values with ``|d| <= zero_threshold`` reconstruct as exactly 0 (a
  relative bound is meaningless at 0; the threshold is the standard
  practical floor, and it is recorded in the payload);
* a verify-and-patch pass stores any point whose *relative* error exceeds
  the bound after the float cast, making the guarantee unconditional.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

import numpy as np

from repro.codecs.container import Container
from repro.codecs.interface import get_byte_codec
from repro.codecs.varint import decode_uvarints, encode_uvarints, zigzag_decode, zigzag_encode
from repro.pressio.arrayio import decode_array_header, encode_array_header
from repro.pressio.compressor import CompressedField, Compressor
from repro.sz.compressor import SZCompressor

__all__ = ["SZPointwiseRelative"]

DEFAULT_ZERO_THRESHOLD = 1e-35


@dataclass(frozen=True)
class SZPointwiseRelative(Compressor):
    """SZ with a point-wise relative error bound.

    Parameters
    ----------
    error_bound:
        Relative tolerance ``rel``: every reconstructed value satisfies
        ``|d - d'| <= rel * |d|`` (points below ``zero_threshold`` become
        exactly 0 instead).
    zero_threshold:
        Magnitude floor under which values are treated as zero.
    dict_codec:
        Dictionary backend for the sign/zero bitmaps and the inner SZ.
    """

    error_bound: float = 1e-3
    zero_threshold: float = DEFAULT_ZERO_THRESHOLD
    dict_codec: str = "zlib"

    name = "sz-pwrel"
    mode = "pwrel"
    supported_ndims = (1, 2, 3)

    def with_error_bound(self, error_bound: float) -> "SZPointwiseRelative":
        return replace(self, error_bound=float(error_bound))

    def default_bound_range(self, data: np.ndarray) -> tuple[float, float]:
        """Relative bounds from one part per billion to 50%."""
        return (1e-9, 0.5)

    def _inner(self) -> SZCompressor:
        # log2(1 + rel) in the log domain gives exactly the multiplicative
        # band [1/(1+rel), 1+rel] around each value.
        log_bound = float(np.log2(1.0 + self.error_bound))
        return SZCompressor(error_bound=log_bound, dict_codec=self.dict_codec)

    # ------------------------------------------------------------------
    def compress(self, data: np.ndarray) -> CompressedField:
        data = np.asarray(data)
        self.check_supported(data)
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(f"sz-pwrel expects float32/float64 data, got {data.dtype}")
        if not 0 < self.error_bound:
            raise ValueError(f"relative bound must be positive, got {self.error_bound}")
        if not np.isfinite(data).all():
            raise ValueError("sz-pwrel does not support NaN/Inf values")

        flat = data.astype(np.float64).ravel()
        zero_mask = np.abs(flat) <= self.zero_threshold
        sign_mask = flat < 0

        logs = np.zeros_like(flat)
        nz = ~zero_mask
        logs[nz] = np.log2(np.abs(flat[nz]))
        # Zero positions carry a filler value so they do not distort the
        # inner compressor's statistics more than necessary.
        if nz.any():
            logs[zero_mask] = logs[nz].min()
        log_field = self._inner().compress(logs.reshape(data.shape))

        # Verify in the *relative* metric and patch violators verbatim
        # (float casts and the log/exp roundtrip can graze the bound).
        recon = self._reconstruct(
            data.shape, data.dtype, log_field.payload, zero_mask, sign_mask
        ).ravel()
        rel_err = np.zeros_like(flat)
        rel_err[nz] = np.abs(recon.astype(np.float64)[nz] - flat[nz]) / np.abs(flat[nz])
        bad = np.flatnonzero(rel_err > self.error_bound)

        outer = Container()
        outer.add(
            "header",
            encode_array_header(data)
            + struct.pack("<dd", self.error_bound, self.zero_threshold)
            + encode_uvarints(np.asarray([len(self.dict_codec)], dtype=np.uint64))
            + self.dict_codec.encode(),
        )
        codec = get_byte_codec(self.dict_codec)
        outer.add("signs", codec.compress(np.packbits(sign_mask).tobytes()))
        outer.add("zeros", codec.compress(np.packbits(zero_mask).tobytes()))
        outer.add("logs", log_field.payload)
        outer.add("patch_n", encode_uvarints(np.asarray([bad.size], dtype=np.uint64)))
        outer.add(
            "patch_idx",
            encode_uvarints(zigzag_encode(np.diff(bad, prepend=np.int64(0)))),
        )
        outer.add("patch_val", data.ravel()[bad].tobytes())
        return CompressedField(payload=outer.tobytes(), original_nbytes=data.nbytes)

    # ------------------------------------------------------------------
    def decompress(self, field: CompressedField | bytes) -> np.ndarray:
        payload = field.payload if isinstance(field, CompressedField) else field
        outer = Container.frombytes(payload)
        header = outer.get("header")
        dtype, shape, off = decode_array_header(header)
        _, _ = struct.unpack_from("<dd", header, off)
        off += 16
        (codec_len,), off = decode_uvarints(header, 1, off)
        codec = get_byte_codec(header[off : off + int(codec_len)].decode())

        n = int(np.prod(shape))
        sign_mask = np.unpackbits(
            np.frombuffer(codec.decompress(outer.get("signs")), dtype=np.uint8), count=n
        ).astype(bool)
        zero_mask = np.unpackbits(
            np.frombuffer(codec.decompress(outer.get("zeros")), dtype=np.uint8), count=n
        ).astype(bool)

        recon = self._reconstruct(shape, dtype, outer.get("logs"), zero_mask, sign_mask)

        (n_patch,), _ = decode_uvarints(outer.get("patch_n"), 1, 0)
        if int(n_patch):
            deltas, _ = decode_uvarints(outer.get("patch_idx"), int(n_patch), 0)
            idx = np.cumsum(zigzag_decode(deltas))
            values = np.frombuffer(outer.get("patch_val"), dtype=dtype)
            flat = recon.ravel()
            flat[idx] = values
            recon = flat.reshape(shape)
        return recon

    def _reconstruct(
        self,
        shape: tuple[int, ...],
        dtype: np.dtype,
        log_payload: bytes,
        zero_mask: np.ndarray,
        sign_mask: np.ndarray,
    ) -> np.ndarray:
        logs = self._inner().decompress(log_payload).astype(np.float64).ravel()
        out = np.exp2(logs)
        out[sign_mask] *= -1.0
        out[zero_mask] = 0.0
        return out.astype(dtype).reshape(shape)
