"""Per-block linear regression predictor (SZ 2.x's second predictor).

Each full ``B**d`` block is fit with an affine model
``d(c) ~ beta0 + sum_k beta_k * c_k`` over its local coordinates ``c``.
Because the coordinates form a regular product grid, the design matrix is
orthogonal after centering, so the least-squares solution is closed-form and
vectorises across all blocks at once:

    beta_k = sum((c_k - mean(c_k)) * d) / sum((c_k - mean(c_k))**2)
    beta0  = mean(d) - sum_k beta_k * mean(c_k)

Coefficients are stored as float32 (SZ quantises them similarly); prediction
on both sides of the codec uses the *stored* float32 values so compressor
and decompressor agree bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.sz.blocks import BlockGrid

__all__ = ["fit_full_blocks", "predict_full_blocks"]


def fit_full_blocks(grid: BlockGrid, block_values: np.ndarray) -> np.ndarray:
    """Fit the affine model per block.

    Parameters
    ----------
    grid:
        Block geometry.
    block_values:
        ``(n_full_blocks, B**d)`` array from :meth:`BlockGrid.full_block_view`.

    Returns
    -------
    numpy.ndarray
        float32 coefficients of shape ``(n_full_blocks, ndim + 1)`` laid out
        as ``[beta0, beta_1..beta_ndim]``.
    """
    coords = grid.block_coords().astype(np.float64)  # (ndim, B**d)
    centered = coords - coords.mean(axis=1, keepdims=True)
    denom = (centered**2).sum(axis=1)  # (ndim,)
    values = block_values.astype(np.float64, copy=False)

    # slopes[b, k] = sum_i centered[k, i] * values[b, i] / denom[k]
    slopes = values @ centered.T / denom  # (nblocks, ndim)
    intercept = values.mean(axis=1) - slopes @ coords.mean(axis=1)
    coeffs = np.concatenate([intercept[:, None], slopes], axis=1)
    return coeffs.astype(np.float32)


def predict_full_blocks(grid: BlockGrid, coeffs: np.ndarray) -> np.ndarray:
    """Evaluate stored coefficients over each block's local grid.

    Returns float64 predictions of shape ``(n_blocks_given, B**d)``.
    """
    coords = grid.block_coords().astype(np.float64)  # (ndim, B**d)
    coeffs64 = coeffs.astype(np.float64, copy=False)
    return coeffs64[:, :1] + coeffs64[:, 1:] @ coords
