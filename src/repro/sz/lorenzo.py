"""1-layer Lorenzo predictor with wavefront vectorisation.

The Lorenzo predictor [22] estimates each point from its already-processed
neighbours: in 3D,

    pred[i,j,k] = + f[i-1,j,k] + f[i,j-1,k] + f[i,j,k-1]
                  - f[i-1,j-1,k] - f[i-1,j,k-1] - f[i,j-1,k-1]
                  + f[i-1,j-1,k-1]

(inclusion-exclusion over the corner hypercube; out-of-bounds neighbours
count as 0).  SZ evaluates it on *decompressed* values so compressor and
decompressor stay in lockstep — which serialises the scan order.  The points
on the anti-diagonal hyperplane ``i + j + ... = s`` only reference planes
``< s``, so we precompute, per array shape, the flat indices of every plane
(:class:`WavefrontPlan`, cached) and process one plane per iteration with
batched gathers.  For a ``64x64x32`` field that is ~160 vectorised steps
instead of 131k Python-level point updates.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import product

import numpy as np

__all__ = ["lorenzo_offsets", "WavefrontPlan", "wavefront_plan", "lorenzo_predict_full"]


def lorenzo_offsets(ndim: int) -> list[tuple[tuple[int, ...], int]]:
    """Neighbour offsets and inclusion-exclusion signs for the predictor.

    Returns every nonzero 0/1 offset vector ``o`` with sign
    ``(-1)**(sum(o) + 1)``; e.g. in 2D: ``(1,0):+1, (0,1):+1, (1,1):-1``.
    """
    if ndim < 1:
        raise ValueError("ndim must be >= 1")
    out = []
    for offset in product((0, 1), repeat=ndim):
        weight = sum(offset)
        if weight == 0:
            continue
        out.append((offset, 1 if weight % 2 == 1 else -1))
    return out


class WavefrontPlan:
    """Per-shape wavefront schedule for Lorenzo processing.

    Attributes
    ----------
    planes:
        List of int64 arrays; ``planes[s]`` holds the flat (C-order) indices
        of the points with coordinate sum ``s``, in ascending flat order.
    coords:
        ``ndim``-row int64 array, ``coords[:, flat]`` = the point's
        coordinates (indexed by flat position).
    strides:
        Element (not byte) strides of the C-order layout.
    """

    def __init__(self, shape: tuple[int, ...]) -> None:
        self.shape = tuple(int(s) for s in shape)
        ndim = len(self.shape)
        n = int(np.prod(self.shape))
        # Plans are lru_cached per shape and index arrays dominate their
        # footprint; int32 indices halve it (fields with 2**31+ elements per
        # chunk are far past the streaming layer's chunk sizes).
        itype = np.int32 if n < 2**31 else np.int64
        idx = np.indices(self.shape).reshape(ndim, n).astype(itype, copy=False)
        self.coords = idx
        plane_of = idx.sum(axis=0, dtype=itype)
        order = np.argsort(plane_of, kind="stable").astype(itype, copy=False)
        sorted_planes = plane_of[order]
        boundaries = np.searchsorted(
            sorted_planes, np.arange(int(sorted_planes[-1]) + 2 if n else 1)
        )
        self.planes: list[np.ndarray] = [
            np.sort(order[boundaries[s] : boundaries[s + 1]])
            for s in range(len(boundaries) - 1)
        ]
        strides = np.ones(ndim, dtype=np.int64)
        for d in range(ndim - 2, -1, -1):
            strides[d] = strides[d + 1] * self.shape[d + 1]
        self.strides = strides
        self.offsets = lorenzo_offsets(ndim)
        # Pre-resolve per-offset flat deltas.
        self._deltas = [
            (np.asarray(off, dtype=itype), int(np.dot(off, strides)), sign)
            for off, sign in self.offsets
        ]

    def predict_plane(self, recon_flat: np.ndarray, plane: np.ndarray) -> np.ndarray:
        """Lorenzo predictions for one wavefront plane.

        ``recon_flat`` is the flattened reconstruction-so-far; out-of-bounds
        neighbours contribute 0.  Returns float64 predictions aligned with
        ``plane``.
        """
        coords = self.coords[:, plane]
        pred = np.zeros(plane.size, dtype=np.float64)
        for off_vec, delta, sign in self._deltas:
            valid = np.all(coords >= off_vec[:, None], axis=0)
            if not valid.any():
                continue
            vals = recon_flat[plane[valid] - delta].astype(np.float64, copy=False)
            if sign == 1:
                pred[valid] += vals
            else:
                pred[valid] -= vals
        return pred


@lru_cache(maxsize=32)
def wavefront_plan(shape: tuple[int, ...]) -> WavefrontPlan:
    """Cached :class:`WavefrontPlan` for a shape."""
    return WavefrontPlan(shape)


def lorenzo_predict_full(data: np.ndarray) -> np.ndarray:
    """Lorenzo prediction of every point from *original* neighbours.

    This is not usable for coding (the decompressor lacks originals) but is
    the cheap vectorised proxy SZ-style predictor selection uses to compare
    Lorenzo against regression per block: one shifted-add per offset.
    """
    data = np.asarray(data, dtype=np.float64)
    pred = np.zeros_like(data)
    for offset, sign in lorenzo_offsets(data.ndim):
        shifted = np.zeros_like(data)
        src = tuple(slice(0, s - o) for s, o in zip(data.shape, offset))
        dst = tuple(slice(o, None) for o in offset)
        shifted[dst] = data[src]
        pred += sign * shifted
    return pred
