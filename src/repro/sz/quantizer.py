"""Linear-scaling quantization (SZ stage 2).

Residuals ``d - pred`` are mapped to integer codes with bin width
``2 * error_bound``; reconstruction ``pred + 2 * eb * q`` is then within
``error_bound`` of the original *by construction* — provided the code fits
the radius and the cast back to the storage dtype does not push the value
over the bound.  Points violating either condition become *unpredictable*
and are stored verbatim (exact, zero error).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["quantize", "dequantize"]


@dataclass(frozen=True)
class QuantizeResult:
    """Vectorised quantization outcome for a batch of points."""

    codes: np.ndarray  # int64, valid only where ``ok``
    recon: np.ndarray  # storage-dtype reconstruction, valid only where ``ok``
    ok: np.ndarray  # bool; False -> store the original value verbatim


def quantize(
    values: np.ndarray,
    pred: np.ndarray,
    error_bound: float,
    radius: int,
    dtype: np.dtype,
) -> QuantizeResult:
    """Quantize a batch of residuals.

    Parameters
    ----------
    values:
        Original float64 values.
    pred:
        Predictions (float64), same shape.
    error_bound:
        Absolute bound ``eb > 0``.
    radius:
        Codes are kept in ``(-radius, radius)`` exclusive; outliers are
        marked unpredictable.  Clamped outlier codes never reach
        ``±radius`` either, so no entry of ``codes`` can collide with an
        encoder's literal sentinel (``radius``).
    dtype:
        Storage dtype; the bound is verified *after* casting so float32
        round-off cannot break the guarantee.
    """
    two_eb = 2.0 * error_bound
    with np.errstate(invalid="ignore", over="ignore"):
        q = np.rint((values - pred) / two_eb)
        in_range = np.abs(q) < radius
        # NaN/Inf inputs produce non-finite codes and huge residuals overflow
        # the int64 cast; clamp both — the ``ok`` mask already excludes them.
        # The clamp stays strictly inside (-radius, radius): encoders use
        # ``radius`` itself as the literal sentinel, so a clipped outlier
        # that kept the value ``radius`` could masquerade as that sentinel
        # (and an in-range code on decode) if a caller ever consumed
        # ``codes`` without applying ``ok`` first.
        q = np.where(np.isfinite(q), q, 0.0)
        q = np.clip(q, -float(radius - 1), float(radius - 1))
        recon = (pred + two_eb * q).astype(dtype)
        within = np.abs(recon.astype(np.float64) - values) <= error_bound
    ok = in_range & within
    return QuantizeResult(codes=q.astype(np.int64), recon=recon, ok=ok)


def dequantize(
    codes: np.ndarray,
    pred: np.ndarray,
    error_bound: float,
    dtype: np.dtype,
) -> np.ndarray:
    """Inverse mapping: ``pred + 2 * eb * q`` cast to the storage dtype."""
    return (pred + 2.0 * error_bound * codes.astype(np.float64)).astype(dtype)
