"""SZ3-style multilevel interpolation compressor.

The successor to the paper's SZ 2.x replaces the block hybrid predictor
with dyadic **interpolation prediction** (Zhao et al., ICDE'21): anchor
points on a coarse grid are coded first, then each refinement level
predicts the new points by linear interpolation from already-*reconstructed*
neighbours, one axis at a time, quantizing immediately so later passes feed
on decompressed values (the same feedback discipline as Lorenzo, hence the
same non-monotonic ratio curves FRaZ is built to tolerate).

Vectorisation: within one ``(level, axis)`` pass every target point is
independent — its neighbours were reconstructed in earlier passes — so each
pass is a handful of strided-view operations; there is no per-point loop.
The anchor grid is coded with the existing wavefront Lorenzo machinery.

Pipeline after prediction matches SZ: linear-scaling quantization with
verbatim literals, Huffman, dictionary stage.  Absolute bound enforced
per point (property-tested).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

import numpy as np

from repro.codecs.container import Container
from repro.codecs.huffman import HuffmanCodec
from repro.codecs.interface import get_byte_codec
from repro.codecs.varint import decode_uvarints, encode_uvarints
from repro.pressio.arrayio import decode_array_header, encode_array_header
from repro.pressio.compressor import CompressedField, Compressor
from repro.sz.lorenzo import wavefront_plan
from repro.sz.quantizer import dequantize, quantize

__all__ = ["SZInterpolationCompressor"]

_MAX_LEVELS = 6
_MIN_ANCHOR_POINTS = 4


def _num_levels(shape: tuple[int, ...], max_levels: int = _MAX_LEVELS) -> int:
    """Deepest dyadic hierarchy keeping >= _MIN_ANCHOR_POINTS anchors per axis."""
    levels = 0
    while levels < max_levels:
        stride = 2 ** (levels + 1)
        if any(-(-dim // stride) < _MIN_ANCHOR_POINTS for dim in shape):
            break
        levels += 1
    return levels


def _pass_slicers(
    shape: tuple[int, ...], stride: int, axis: int
) -> tuple[tuple[slice, ...], tuple[slice, ...], tuple[slice, ...]] | None:
    """(target, left, right) strided views for one interpolation pass.

    Targets sit at odd multiples of ``half = stride // 2`` along ``axis``;
    axes before ``axis`` are already refined to ``half`` resolution, axes
    after it are still at ``stride``.  ``right`` may be shorter than the
    target along ``axis`` (boundary targets have no right neighbour).
    """
    half = stride // 2
    if half < 1 or shape[axis] <= half:
        return None
    target, left, right = [], [], []
    for d, dim in enumerate(shape):
        if d < axis:
            target.append(slice(0, None, half))
            left.append(slice(0, None, half))
            right.append(slice(0, None, half))
        elif d == axis:
            target.append(slice(half, None, stride))
            left.append(slice(0, dim - half, stride))
            right.append(slice(stride, None, stride))
        else:
            target.append(slice(0, None, stride))
            left.append(slice(0, None, stride))
            right.append(slice(0, None, stride))
    return tuple(target), tuple(left), tuple(right)


def _interp_pred(recon: np.ndarray, slicers) -> np.ndarray:
    """Linear interpolation prediction for one pass (float64).

    Boundary targets lacking a right neighbour copy the left one (the
    standard dyadic convention, also used by :mod:`repro.mgard.grid`).
    """
    _, left_sl, right_sl = slicers
    left = recon[left_sl].astype(np.float64)
    right = recon[right_sl].astype(np.float64)
    if left.shape == right.shape:
        return 0.5 * (left + right)
    pred = left.copy()
    d = _diff_axis(left.shape, right.shape)
    sl = [slice(None)] * left.ndim
    sl[d] = slice(0, right.shape[d])
    pred[tuple(sl)] = 0.5 * (left[tuple(sl)] + right)
    return pred


def _diff_axis(a: tuple[int, ...], b: tuple[int, ...]) -> int:
    for d, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return d
    return 0


@dataclass(frozen=True)
class SZInterpolationCompressor(Compressor):
    """Interpolation-predicted error-bounded compressor (SZ3 style).

    Parameters mirror :class:`repro.sz.compressor.SZCompressor`; there is
    no block size (prediction is global/dyadic) and no regression stage.
    """

    error_bound: float = 1e-3
    radius: int = 32768
    dict_codec: str = "zlib"
    max_levels: int = _MAX_LEVELS

    name = "sz-interp"
    mode = "abs"
    supported_ndims = (1, 2, 3)

    def with_error_bound(self, error_bound: float) -> "SZInterpolationCompressor":
        return replace(self, error_bound=float(error_bound))

    # -- shared pass schedule -------------------------------------------
    def _passes(self, shape: tuple[int, ...]) -> list[tuple[int, int]]:
        """(stride, axis) pairs in coding order, finest last."""
        levels = _num_levels(shape, self.max_levels)
        out = []
        for level in range(levels, 0, -1):
            stride = 2**level
            for axis in range(len(shape)):
                out.append((stride, axis))
        return out

    # -- compression ------------------------------------------------------
    def compress(self, data: np.ndarray) -> CompressedField:
        data = np.asarray(data)
        self.check_supported(data)
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(f"sz-interp expects float32/float64 data, got {data.dtype}")
        if not self.error_bound > 0:
            raise ValueError(f"error bound must be positive, got {self.error_bound}")
        if data.size == 0:
            outer = Container()
            outer.add("header", self._header(data, 0))
            outer.add("body", b"")
            return CompressedField(outer.tobytes(), data.nbytes)

        eb = float(self.error_bound)
        dtype = data.dtype
        shape = data.shape
        data64 = data.astype(np.float64)
        levels = _num_levels(shape, self.max_levels)
        anchor_stride = 2**levels

        recon = np.zeros(shape, dtype=dtype)
        symbols: list[np.ndarray] = []
        literals: list[np.ndarray] = []
        sentinel = np.int64(self.radius)

        # Anchor grid: wavefront Lorenzo on the strided view.
        anchor_sel = (slice(0, None, anchor_stride),) * data.ndim
        anchors = np.ascontiguousarray(data64[anchor_sel])
        anchors_store = np.ascontiguousarray(data[anchor_sel])
        plan = wavefront_plan(anchors.shape)
        a_flat64 = anchors.ravel()
        a_recon = np.zeros(a_flat64.size, dtype=dtype)
        a_codes = np.zeros(a_flat64.size, dtype=np.int64)
        a_lit = np.zeros(a_flat64.size, dtype=bool)
        for plane in plan.planes:
            pred = plan.predict_plane(a_recon, plane)
            qr = quantize(a_flat64[plane], pred, eb, self.radius, dtype)
            a_codes[plane] = qr.codes
            a_lit[plane] = ~qr.ok
            a_recon[plane] = np.where(qr.ok, qr.recon, anchors_store.ravel()[plane])
        symbols.append(np.where(a_lit, sentinel, a_codes))
        literals.append(anchors_store.ravel()[a_lit])
        recon[anchor_sel] = a_recon.reshape(anchors.shape)

        # Refinement passes, finest last, with reconstruction feedback.
        for stride, axis in self._passes(shape):
            slicers = _pass_slicers(shape, stride, axis)
            if slicers is None:
                continue
            target_sl = slicers[0]
            values = data64[target_sl]
            if values.size == 0:
                continue
            pred = _interp_pred(recon, slicers)
            qr = quantize(values.ravel(), pred.ravel(), eb, self.radius, dtype)
            store_vals = data[target_sl].ravel()
            recon[target_sl] = np.where(
                qr.ok, qr.recon, store_vals
            ).reshape(values.shape)
            symbols.append(np.where(qr.ok, qr.codes, sentinel))
            literals.append(store_vals[~qr.ok])

        all_symbols = np.concatenate(symbols)
        all_literals = (
            np.concatenate(literals) if literals else np.zeros(0, dtype=dtype)
        )
        inner = Container()
        inner.add("codes", HuffmanCodec().encode(all_symbols))
        inner.add("literals", all_literals.tobytes())
        body = get_byte_codec(self.dict_codec).compress(inner.tobytes())

        outer = Container()
        outer.add("header", self._header(data, levels))
        outer.add("body", body)
        return CompressedField(outer.tobytes(), data.nbytes)

    def _header(self, data: np.ndarray, levels: int) -> bytes:
        codec = self.dict_codec.encode()
        return (
            encode_array_header(data)
            + struct.pack("<d", self.error_bound)
            + encode_uvarints(
                np.asarray([levels, self.radius, len(codec)], dtype=np.uint64)
            )
            + codec
        )

    # -- decompression ------------------------------------------------------
    def decompress(self, field: CompressedField | bytes) -> np.ndarray:
        payload = field.payload if isinstance(field, CompressedField) else field
        outer = Container.frombytes(payload)
        header = outer.get("header")
        dtype, shape, off = decode_array_header(header)
        (eb,) = struct.unpack_from("<d", header, off)
        off += 8
        (levels, radius, codec_len), off = decode_uvarints(header, 3, off)
        codec = header[off : off + int(codec_len)].decode()

        if int(np.prod(shape)) == 0:
            return np.zeros(shape, dtype=dtype)

        inner = Container.frombytes(get_byte_codec(codec).decompress(outer.get("body")))
        all_symbols = HuffmanCodec().decode(inner.get("codes"))
        all_literals = np.frombuffer(inner.get("literals"), dtype=dtype)

        recon = np.zeros(shape, dtype=dtype)
        sym_pos = 0
        lit_pos = 0
        anchor_stride = 2 ** int(levels)
        eb = float(eb)

        # Anchors.
        anchor_sel = (slice(0, None, anchor_stride),) * len(shape)
        anchor_shape = tuple(-(-dim // anchor_stride) for dim in shape)
        n_anchor = int(np.prod(anchor_shape))
        seg = all_symbols[sym_pos : sym_pos + n_anchor]
        sym_pos += n_anchor
        lit_mask = seg == int(radius)
        n_lit = int(lit_mask.sum())
        seg_lit = all_literals[lit_pos : lit_pos + n_lit]
        lit_pos += n_lit
        plan = wavefront_plan(anchor_shape)
        a_recon = np.zeros(n_anchor, dtype=dtype)
        lit_values = np.zeros(n_anchor, dtype=dtype)
        lit_values[lit_mask] = seg_lit
        a_recon[lit_mask] = seg_lit
        for plane in plan.planes:
            pred = plan.predict_plane(a_recon, plane)
            keep = ~lit_mask[plane]
            a_recon[plane[keep]] = dequantize(seg[plane[keep]], pred[keep], eb, dtype)
        recon[anchor_sel] = a_recon.reshape(anchor_shape)

        # Refinement passes in the identical order.
        for stride, axis in self._passes(shape):
            slicers = _pass_slicers(shape, stride, axis)
            if slicers is None:
                continue
            target_sl = slicers[0]
            view_shape = recon[target_sl].shape
            count = int(np.prod(view_shape))
            if count == 0:
                continue
            seg = all_symbols[sym_pos : sym_pos + count]
            sym_pos += count
            lit_mask = seg == int(radius)
            n_lit = int(lit_mask.sum())
            seg_lit = all_literals[lit_pos : lit_pos + n_lit]
            lit_pos += n_lit
            pred = _interp_pred(recon, slicers).ravel()
            out = np.empty(count, dtype=dtype)
            out[lit_mask] = seg_lit
            keep = ~lit_mask
            out[keep] = dequantize(seg[keep], pred[keep], eb, dtype)
            recon[target_sl] = out.reshape(view_shape)

        if sym_pos != all_symbols.size:
            raise ValueError("sz-interp payload symbol count mismatch")
        return recon
