"""The SZ compression pipeline (prediction -> quantization -> Huffman -> dictionary).

Payload layout: an outer :class:`~repro.codecs.container.Container` with a
plain-text ``header`` section (shape, dtype, bound, block geometry, codec
name) and a ``body`` section holding a dictionary-coded *inner* container
(predictor selection bits, regression coefficients, Huffman-coded
quantization codes, verbatim literals).

Determinism contract: the decompressor replays exactly the arithmetic the
compressor used — float32 regression coefficients, float64 prediction math,
storage-dtype reconstruction casts — so reconstruction is bit-identical and
the absolute error bound holds for every point (property-tested).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

import numpy as np

from repro.codecs.container import Container
from repro.codecs.huffman import HuffmanCodec
from repro.codecs.interface import get_byte_codec
from repro.codecs.varint import decode_uvarints, encode_uvarints
from repro.pressio.arrayio import decode_array_header, encode_array_header
from repro.pressio.compressor import CompressedField, Compressor
from repro.sz.blocks import BlockGrid
from repro.sz.lorenzo import lorenzo_predict_full, wavefront_plan
from repro.sz.quantizer import dequantize, quantize
from repro.sz.regression import fit_full_blocks, predict_full_blocks

__all__ = ["SZCompressor"]

_REGRESSION_BIAS = 0.9
# Regression must beat Lorenzo by 10% (covers its coefficient storage cost).


@dataclass(frozen=True)
class SZCompressor(Compressor):
    """SZ 2.x-style error-bounded compressor.

    Parameters
    ----------
    error_bound:
        Absolute error bound (must be positive at compress time).
    block_size:
        Side of the predictor-selection blocks (paper: 6 for 3D).
    radius:
        Quantization code radius: codes live in ``(-radius, radius)``;
        out-of-range points are stored verbatim.  SZ's default corresponds
        to 65536 bins.
    dict_codec:
        Stage-4 dictionary coder: ``"zlib"`` (DEFLATE, default) or
        ``"lz77"`` (the from-scratch reference coder).
    use_regression:
        Enable the per-block regression predictor (SZ 2.x hybrid); with
        ``False`` this degrades to pure Lorenzo (SZ 1.4-style).
    """

    error_bound: float = 1e-3
    block_size: int = 6
    radius: int = 32768
    dict_codec: str = "zlib"
    use_regression: bool = True
    bound_mode: str = "abs"

    name = "sz"
    supported_ndims = (1, 2, 3)

    def __post_init__(self) -> None:
        if self.bound_mode not in ("abs", "rel"):
            raise ValueError(f"bound_mode must be 'abs' or 'rel', got {self.bound_mode!r}")

    @property
    def mode(self) -> str:  # type: ignore[override]
        return self.bound_mode

    def with_error_bound(self, error_bound: float) -> "SZCompressor":
        return replace(self, error_bound=float(error_bound))

    def _effective_bound(self, data: np.ndarray) -> float:
        """Resolve the configured bound to an absolute one.

        SZ's REL mode (value-range relative bound) scales by ``max - min``
        of the input, exactly as SZ 2.x does; for constant data the range
        is treated as 1 so REL degrades gracefully.
        """
        if self.bound_mode == "abs":
            return float(self.error_bound)
        span = float(data.max() - data.min()) if data.size else 1.0
        if span <= 0.0:
            span = 1.0
        return float(self.error_bound) * span

    def default_bound_range(self, data: np.ndarray) -> tuple[float, float]:
        if self.bound_mode == "rel":
            return (1e-9, 1.0)
        return super().default_bound_range(data)

    # ------------------------------------------------------------------
    # compression
    # ------------------------------------------------------------------
    def compress(self, data: np.ndarray) -> CompressedField:
        data = np.asarray(data)
        self.check_supported(data)
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(f"SZ expects float32/float64 data, got {data.dtype}")
        if not self.error_bound > 0:
            raise ValueError(f"error bound must be positive, got {self.error_bound}")
        if data.size == 0:
            return self._compress_empty(data)

        eb = self._effective_bound(data)
        dtype = data.dtype
        shape = data.shape
        n = data.size
        flat64 = data.astype(np.float64).ravel()
        flat_store = data.ravel()

        grid = BlockGrid(shape, self.block_size)
        select = np.zeros(grid.n_full_blocks, dtype=bool)
        coeffs_all = np.zeros((grid.n_full_blocks, data.ndim + 1), dtype=np.float32)
        if self.use_regression and grid.n_full_blocks > 0:
            data64 = flat64.reshape(shape)
            block_values = grid.full_block_view(data64)
            coeffs_all = fit_full_blocks(grid, block_values)
            pred_reg = predict_full_blocks(grid, coeffs_all)
            reg_err = np.abs(pred_reg - block_values).sum(axis=1)
            lor_abs = np.abs(lorenzo_predict_full(data64) - data64)
            lor_err = grid.full_block_view(lor_abs).sum(axis=1)
            select = reg_err < _REGRESSION_BIAS * lor_err

        codes_flat = np.zeros(n, dtype=np.int64)
        literal_mask = np.zeros(n, dtype=bool)
        recon_flat = np.zeros(n, dtype=dtype)

        # --- stage 1a/2: regression blocks, fully vectorised --------------
        reg_point_mask = np.zeros(n, dtype=bool)
        if select.any():
            flat_ids = grid.full_block_view(np.arange(n).reshape(shape))
            sel_ids = flat_ids[select]  # (nsel, B**d)
            preds = predict_full_blocks(grid, coeffs_all[select])
            qr = quantize(flat64[sel_ids], preds, eb, self.radius, dtype)
            idx = sel_ids.ravel()
            ok = qr.ok.ravel()
            codes_flat[idx] = qr.codes.ravel()
            literal_mask[idx[~ok]] = True
            recon_flat[idx] = np.where(ok, qr.recon.ravel(), flat_store[idx])
            reg_point_mask[idx] = True

        # --- stage 1b/2: Lorenzo wavefront over the remaining points ------
        plan = wavefront_plan(shape)
        for plane in plan.planes:
            pts = plane[~reg_point_mask[plane]]
            if pts.size == 0:
                continue
            pred = plan.predict_plane(recon_flat, pts)
            qr = quantize(flat64[pts], pred, eb, self.radius, dtype)
            codes_flat[pts] = qr.codes
            literal_mask[pts[~qr.ok]] = True
            recon_flat[pts] = np.where(qr.ok, qr.recon, flat_store[pts])

        # --- stages 3/4: entropy + dictionary coding ----------------------
        symbols = np.where(literal_mask, np.int64(self.radius), codes_flat)
        literals = flat_store[literal_mask]

        inner = Container()
        inner.add("select", np.packbits(select).tobytes())
        inner.add("coeffs", coeffs_all[select].tobytes())
        inner.add("codes", HuffmanCodec().encode(symbols))
        inner.add("literals", literals.tobytes())
        body = get_byte_codec(self.dict_codec).compress(inner.tobytes())

        outer = Container()
        outer.add("header", self._header(data, eb))
        outer.add("body", body)
        return CompressedField(payload=outer.tobytes(), original_nbytes=data.nbytes)

    def _header(self, data: np.ndarray, effective_bound: float) -> bytes:
        # The header always carries the *absolute* bound actually applied,
        # so decompression is mode-agnostic (REL resolves at compress time).
        codec_name = self.dict_codec.encode("utf-8")
        return (
            encode_array_header(data)
            + struct.pack("<d", effective_bound)
            + encode_uvarints(
                np.asarray(
                    [self.block_size, self.radius, int(self.use_regression), len(codec_name)],
                    dtype=np.uint64,
                )
            )
            + codec_name
        )

    def _compress_empty(self, data: np.ndarray) -> CompressedField:
        outer = Container()
        outer.add("header", self._header(data, float(self.error_bound)))
        outer.add("body", b"")
        return CompressedField(payload=outer.tobytes(), original_nbytes=data.nbytes)

    # ------------------------------------------------------------------
    # decompression
    # ------------------------------------------------------------------
    def decompress(self, field: CompressedField | bytes) -> np.ndarray:
        payload = field.payload if isinstance(field, CompressedField) else field
        outer = Container.frombytes(payload)
        header = outer.get("header")
        dtype, shape, off = decode_array_header(header)
        (eb,) = struct.unpack_from("<d", header, off)
        off += 8
        (block_size, radius, use_reg, codec_len), off = decode_uvarints(header, 4, off)
        codec_name = header[off : off + int(codec_len)].decode("utf-8")

        n = int(np.prod(shape)) if shape else 1
        if n == 0 or len(shape) == 0:
            return np.zeros(shape, dtype=dtype)

        inner = Container.frombytes(get_byte_codec(codec_name).decompress(outer.get("body")))
        grid = BlockGrid(shape, int(block_size))
        select = (
            np.unpackbits(
                np.frombuffer(inner.get("select"), dtype=np.uint8),
                count=grid.n_full_blocks,
            ).astype(bool)
            if grid.n_full_blocks
            else np.zeros(0, dtype=bool)
        )
        coeffs = np.frombuffer(inner.get("coeffs"), dtype=np.float32).reshape(
            -1, len(shape) + 1
        )
        symbols = HuffmanCodec().decode(inner.get("codes"))
        literal_mask = symbols == int(radius)
        literals = np.frombuffer(inner.get("literals"), dtype=dtype)

        recon_flat = np.zeros(n, dtype=dtype)
        recon_flat[literal_mask] = literals

        reg_point_mask = np.zeros(n, dtype=bool)
        if select.any():
            flat_ids = grid.full_block_view(np.arange(n).reshape(shape))
            sel_ids = flat_ids[select]
            preds = predict_full_blocks(grid, coeffs)
            idx = sel_ids.ravel()
            keep = ~literal_mask[idx]
            recon_flat[idx[keep]] = dequantize(
                symbols[idx[keep]], preds.ravel()[keep], float(eb), dtype
            )
            reg_point_mask[idx] = True

        plan = wavefront_plan(tuple(shape))
        for plane in plan.planes:
            pts = plane[~reg_point_mask[plane]]
            if pts.size == 0:
                continue
            pred = plan.predict_plane(recon_flat, pts)
            keep = ~literal_mask[pts]
            recon_flat[pts[keep]] = dequantize(
                symbols[pts[keep]], pred[keep], float(eb), dtype
            )
        return recon_flat.reshape(shape)
