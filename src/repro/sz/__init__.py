"""SZ: prediction-based error-bounded lossy compressor (paper Sec. II-A1).

A from-scratch reimplementation of the SZ 2.x architecture the paper
evaluates:

1. **data prediction** — a hybrid of a 1-layer Lorenzo predictor (using
   *decompressed* neighbour values, as the real SZ does — the source of the
   non-monotonic ratio/bound relationship in Fig. 3) and a per-block linear
   regression predictor, selected block by block;
2. **linear-scaling quantization** — residuals quantised to integer codes
   with bin width ``2 * error_bound``, out-of-range points stored verbatim;
3. **entropy encoding** — canonical Huffman over the quantization codes
   (:mod:`repro.codecs.huffman`);
4. **dictionary encoding** — a DEFLATE/LZ77 pass over the entropy-coded
   payload (:mod:`repro.codecs.zlib_codec` / :mod:`repro.codecs.lz77`).

The Lorenzo stage is wavefront-vectorised: points on the hyperplane
``i + j + k = s`` depend only on planes ``< s``, so each plane is one batch
of NumPy gathers instead of a per-point Python loop.
"""

from repro.pressio.registry import register_compressor
from repro.sz.compressor import SZCompressor
from repro.sz.interpolation import SZInterpolationCompressor
from repro.sz.pwrel import SZPointwiseRelative

register_compressor("sz", SZCompressor)
register_compressor("sz-pwrel", SZPointwiseRelative)
register_compressor("sz-interp", SZInterpolationCompressor)

__all__ = ["SZCompressor", "SZInterpolationCompressor", "SZPointwiseRelative"]
