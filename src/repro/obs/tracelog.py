"""Structured logging that correlates with traces.

One tiny abstraction: :class:`TraceLogger.event` emits a single log
record, either as a human-readable line (default, matches the service's
historical ``--verbose`` output) or — under ``repro serve --log-json`` —
as one JSON object per line with a fixed envelope::

    {"ts": ..., "level": "info", "event": "job_finished",
     "service": "node", "node_id": "n0",
     "trace_id": "4bf9...", "job_id": "j000007", ...fields}

The envelope keys are the correlation contract: every line a node or
gateway prints about a job carries the same ``trace_id`` the span tree
uses, so ``grep trace_id logs | jq`` and ``repro trace <job-id>`` are
two views of the same request.  Stdlib-only, no ``logging`` module —
the service's needs are one formatter, one stream, zero configuration
surface, and ``logging``'s global state is a liability in tests that
spin up many servers per process.
"""

from __future__ import annotations

import json
import sys
import threading
import time

from repro.util.concurrency import guarded_by

__all__ = ["TraceLogger"]


@guarded_by("_lock", "_stream")
class TraceLogger:
    """Line-oriented logger with a fixed correlation envelope.

    ``service`` names the emitting tier (``node`` / ``gateway``);
    ``node_id`` is stamped late (the agent learns it at registration).
    ``enabled=False`` short-circuits everything — the default for
    embedded/test servers, matching the old ``verbose=False`` silence.
    """

    def __init__(self, service: str, *, node_id: str | None = None,
                 json_lines: bool = False, enabled: bool = True,
                 stream=None) -> None:
        self.service = service
        self.node_id = node_id
        self.json_lines = bool(json_lines)
        self.enabled = bool(enabled)
        self._stream = stream
        self._lock = threading.Lock()

    def event(self, event: str, *, level: str = "info",
              trace_id: str | None = None, job_id: str | None = None,
              **fields) -> None:
        """Emit one record; ``fields`` must be JSON-serialisable."""
        if not self.enabled:
            return
        if self.json_lines:
            record = {"ts": round(time.time(), 6), "level": level,
                      "event": event, "service": self.service}
            if self.node_id is not None:
                record["node_id"] = self.node_id
            if trace_id is not None:
                record["trace_id"] = trace_id
            if job_id is not None:
                record["job_id"] = job_id
            record.update(fields)
            line = json.dumps(record, sort_keys=False, default=str)
        else:
            parts = [f"[{self.service}"]
            if self.node_id is not None:
                parts[0] += f":{self.node_id}"
            parts[0] += "]"
            parts.append(event)
            if job_id is not None:
                parts.append(f"job={job_id}")
            if trace_id is not None:
                parts.append(f"trace={trace_id}")
            parts.extend(f"{k}={v}" for k, v in fields.items())
            line = " ".join(parts)
        with self._lock:
            # Resolve the stream under the lock: reconfiguration must
            # never race a half-written record onto the old stream.
            stream = self._stream if self._stream is not None else sys.stderr
            print(line, file=stream, flush=True)

    def error(self, event: str, **kwargs) -> None:
        self.event(event, level="error", **kwargs)
