"""Dependency-free distributed tracing: spans, context propagation, storage.

PR 6's metrics answer "how is the fleet doing on aggregate"; this module
answers "where did *this* job spend its time".  A :class:`Span` is one
timed operation; spans link into a tree by parent id; every span in one
request's tree shares a ``trace_id`` that travels across process and
host boundaries in a W3C-``traceparent``-style HTTP header
(:meth:`TraceContext.to_traceparent`).  For the FRaZ workload the tree
bottoms out in one span **per search iteration**, tagged with the probed
bound and observed ratio — a trace of a tune job reads as the paper's
convergence log (Fig. 6) for that exact request.

Clock discipline mirrors :mod:`repro.serve.jobs`: span *start* times are
wall clock (``time.time()`` — the only clock that aligns across
processes and hosts), span *durations* are ``time.perf_counter()``
deltas measured inside one process (wall clocks step under NTP; a
duration must never cross a step).  Waterfall offsets computed from wall
starts are therefore honest to NTP skew, while widths are exact.

Three pieces:

* :class:`Tracer` — creates spans, owns the head-based sampling decision
  (made once at trace start; an unsampled trace costs one
  :class:`NullSpan` allocation and nothing else), and records finished
  spans into its store.  The *ambient* API (:func:`span`,
  :func:`current_span`, :meth:`Tracer.activate`) uses ``contextvars`` so
  deep code — the ratio closure, the stage executors — can open child
  spans without threading a tracer through every signature.
* :class:`SpanStore` — bounded in-memory per-trace assembly, with
  slowest-N *exemplar* retention: the worst traces are protected from
  eviction and surfaced in ``/stats`` so a latency regression always
  comes with a trace to read.
* :func:`collect_spans` / :func:`install_collector` — the process-pool
  boundary: a worker process installs a private collecting tracer from a
  pickled :class:`TraceContext`, runs the job, and ships the finished
  span dicts back with the result (see
  :class:`repro.parallel.executor.ProcessJobPool`).

Everything here is stdlib-only on purpose: :mod:`repro.pressio.closures`
sits at the bottom of the dependency graph and must be able to import
the ambient helpers without dragging in the service stack.
"""

from __future__ import annotations

import contextvars
import os
import random
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.util.concurrency import guarded_by

__all__ = [
    "TRACEPARENT_HEADER",
    "TraceContext",
    "Span",
    "NullSpan",
    "SpanStore",
    "Tracer",
    "span",
    "current_span",
    "current_context",
    "install_collector",
    "collect_spans",
    "render_waterfall",
]

#: The HTTP header spans ride in (W3C Trace Context wire format:
#: ``00-<32 hex trace id>-<16 hex span id>-<2 hex flags>``).
TRACEPARENT_HEADER = "traceparent"

_FLAG_SAMPLED = 0x01


def _new_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


def new_trace_id() -> str:
    """A fresh 128-bit trace id (32 hex chars)."""
    return _new_id(16)


def new_span_id() -> str:
    """A fresh 64-bit span id (16 hex chars)."""
    return _new_id(8)


def _is_hex(s: str, length: int) -> bool:
    if len(s) != length:
        return False
    try:
        int(s, 16)
        return True
    except ValueError:
        return False


@dataclass(frozen=True)
class TraceContext:
    """What crosses a boundary: trace identity + the sampling decision."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_traceparent(self) -> str:
        """Serialise to the ``traceparent`` header value."""
        flags = _FLAG_SAMPLED if self.sampled else 0
        return f"00-{self.trace_id}-{self.span_id}-{flags:02x}"

    @classmethod
    def from_traceparent(cls, header: str | None) -> "TraceContext | None":
        """Parse a ``traceparent`` header; ``None`` on anything malformed.

        Tolerant by design: a bad header from a foreign client must
        degrade to "start a fresh trace", never to a 500.
        """
        if not header:
            return None
        parts = header.strip().split("-")
        if len(parts) != 4:
            return None
        version, trace_id, span_id, flags = parts
        if not (_is_hex(version, 2) and _is_hex(trace_id, 32)
                and _is_hex(span_id, 16) and _is_hex(flags, 2)):
            return None
        if trace_id == "0" * 32 or span_id == "0" * 16:
            return None
        return cls(trace_id=trace_id, span_id=span_id,
                   sampled=bool(int(flags, 16) & _FLAG_SAMPLED))

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "sampled": self.sampled}

    @classmethod
    def from_dict(cls, payload: dict | None) -> "TraceContext | None":
        if not isinstance(payload, dict) or "trace_id" not in payload:
            return None
        return cls(trace_id=str(payload["trace_id"]),
                   span_id=str(payload.get("span_id") or new_span_id()),
                   sampled=bool(payload.get("sampled", True)))


class Span:
    """One timed operation in a trace tree.

    Start is wall clock, duration is a ``perf_counter`` delta — see the
    module docstring for why the two clocks split.  Spans are not
    thread-safe; one span belongs to the thread (or worker process) that
    opened it.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start",
                 "duration", "attrs", "status", "error", "node_id", "_t0")

    is_recording = True

    def __init__(self, name: str, trace_id: str, parent_id: str | None = None,
                 attrs: dict | None = None, node_id: str | None = None) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.start = time.time()
        self.duration: float | None = None
        self.attrs: dict = dict(attrs) if attrs else {}
        self.status = "ok"
        self.error: str | None = None
        self.node_id = node_id
        self._t0 = time.perf_counter()

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id, sampled=True)

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def record_error(self, error: BaseException | str) -> None:
        self.status = "error"
        if isinstance(error, BaseException):
            self.error = f"{type(error).__name__}: {error}"
        else:
            self.error = str(error)

    def end(self) -> None:
        if self.duration is None:
            self.duration = time.perf_counter() - self._t0

    def to_dict(self) -> dict:
        out = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": round(self.start, 6),
            "duration": round(self.duration, 6) if self.duration is not None else None,
            "status": self.status,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        if self.error is not None:
            out["error"] = self.error
        if self.node_id is not None:
            out["node_id"] = self.node_id
        return out


class NullSpan:
    """The no-op stand-in for an unsampled trace.

    Carries the (unsampled) :class:`TraceContext` so propagation still
    works — downstream hops must *also* decide not to record — but every
    mutation is a no-op, which is what makes ``--trace-sample 0``
    indistinguishable from tracing-not-built on the hot path.
    """

    __slots__ = ("_context",)

    is_recording = False
    status = "ok"
    error = None
    duration = None
    attrs: dict = {}

    def __init__(self, context: TraceContext | None = None) -> None:
        self._context = context

    @property
    def context(self) -> TraceContext:
        if self._context is None:
            return TraceContext(new_trace_id(), new_span_id(), sampled=False)
        return self._context

    @property
    def trace_id(self) -> str | None:
        return self._context.trace_id if self._context is not None else None

    @property
    def span_id(self) -> str | None:
        return self._context.span_id if self._context is not None else None

    def set_attr(self, key: str, value) -> None:
        pass

    def record_error(self, error) -> None:
        pass

    def end(self) -> None:
        pass

    def to_dict(self) -> dict:  # pragma: no cover - never stored
        return {}


@guarded_by("_lock", "_traces", "_exemplars", "_dropped")
class SpanStore:
    """Bounded per-trace span assembly with slow-trace exemplar retention.

    Traces evict oldest-first once ``max_traces`` is exceeded — except
    the current slowest-``exemplars`` traces, which are pinned until a
    slower trace displaces them.  That way ``/trace/<id>`` keeps
    answering for exactly the jobs an operator most wants to read.
    """

    def __init__(self, max_traces: int = 256, max_spans_per_trace: int = 2048,
                 exemplars: int = 5) -> None:
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.max_traces = int(max_traces)
        self.max_spans_per_trace = int(max_spans_per_trace)
        self.exemplar_limit = max(0, int(exemplars))
        self._traces: OrderedDict[str, list[dict]] = OrderedDict()
        #: trace_id -> {"trace_id", "job_id", "seconds"} for the slowest N.
        self._exemplars: dict[str, dict] = {}
        self._dropped = 0
        self._lock = threading.Lock()

    def add(self, span_dict: dict) -> None:
        """Record one finished span (idempotent per span id)."""
        trace_id = span_dict.get("trace_id")
        if not trace_id:
            return
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                spans = self._traces[trace_id] = []
            if len(spans) >= self.max_spans_per_trace:
                self._dropped += 1
                return
            spans.append(span_dict)
            self._evict_locked()

    def add_many(self, span_dicts) -> None:
        for span_dict in span_dicts or []:
            self.add(span_dict)

    def get(self, trace_id: str) -> list[dict] | None:
        """Every recorded span of a trace (insertion order), or ``None``."""
        with self._lock:
            spans = self._traces.get(trace_id)
            return list(spans) if spans is not None else None

    def finish_trace(self, trace_id: str, seconds: float | None,
                     job_id: str | None = None) -> None:
        """Mark a trace complete and enter it in the exemplar contest."""
        if seconds is None or self.exemplar_limit == 0:
            return
        with self._lock:
            if trace_id not in self._traces:
                return
            current = self._exemplars.get(trace_id)
            if current is not None:
                if seconds > current["seconds"]:
                    current["seconds"] = round(seconds, 6)
                return
            if len(self._exemplars) < self.exemplar_limit:
                self._exemplars[trace_id] = {
                    "trace_id": trace_id, "job_id": job_id,
                    "seconds": round(seconds, 6)}
                return
            slowest_floor = min(self._exemplars.values(),
                                key=lambda e: e["seconds"])
            if seconds > slowest_floor["seconds"]:
                del self._exemplars[slowest_floor["trace_id"]]
                self._exemplars[trace_id] = {
                    "trace_id": trace_id, "job_id": job_id,
                    "seconds": round(seconds, 6)}
            self._evict_locked()

    def exemplars(self) -> list[dict]:
        """Slowest retained traces, slowest first (the ``/stats`` block)."""
        with self._lock:
            return sorted((dict(e) for e in self._exemplars.values()),
                          key=lambda e: -e["seconds"])

    def _evict_locked(self) -> None:
        while len(self._traces) > self.max_traces:
            for trace_id in self._traces:
                if trace_id not in self._exemplars:
                    del self._traces[trace_id]
                    self._dropped += 1
                    break
            else:
                # Everything left is an exemplar: allow the overflow
                # rather than evicting the traces we promised to keep.
                return

    def stats_dict(self) -> dict:
        with self._lock:
            return {
                "traces": len(self._traces),
                "max_traces": self.max_traces,
                "dropped_spans": self._dropped,
                "exemplars": sorted(
                    (dict(e) for e in self._exemplars.values()),
                    key=lambda e: -e["seconds"]),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


# ---------------------------------------------------------------------------
# Ambient context: one contextvar shared by every tracer in the process.
# contextvars are per-thread (and copied into tasks), so dispatcher
# threads trace concurrently without seeing each other's spans.
# ---------------------------------------------------------------------------

_CURRENT: contextvars.ContextVar[tuple["Tracer", Span | NullSpan] | None] = (
    contextvars.ContextVar("repro_trace_current", default=None))


def current_span() -> Span | NullSpan | None:
    """The ambient span of this thread/context, if a tracer is active."""
    state = _CURRENT.get()
    return state[1] if state is not None else None


def current_context() -> TraceContext | None:
    """The ambient span's propagation context, if any."""
    sp = current_span()
    return sp.context if sp is not None else None


class _AmbientSpan:
    """Context manager for :func:`span` — no-op when nothing is active."""

    __slots__ = ("name", "attrs", "_span", "_token")

    def __init__(self, name: str, attrs: dict | None) -> None:
        self.name = name
        self.attrs = attrs
        self._span: Span | NullSpan | None = None
        self._token = None

    def __enter__(self) -> Span | NullSpan:
        state = _CURRENT.get()
        if state is None:
            self._span = NullSpan()
            return self._span
        tracer, parent = state
        self._span = tracer.start_span(self.name, parent=parent, attrs=self.attrs)
        self._token = _CURRENT.set((tracer, self._span))
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
        sp = self._span
        if sp is None or not sp.is_recording:
            return
        if exc is not None:
            sp.record_error(exc)
        state = _CURRENT.get()
        tracer = state[0] if state is not None else None
        if tracer is not None:
            tracer.finish_span(sp)


def span(name: str, attrs: dict | None = None) -> _AmbientSpan:
    """Open a child of the ambient span (no-op without an active tracer).

    This is the hook deep code uses::

        with span("search_iteration") as sp:
            ratio = probe(bound)
            sp.set_attr("bound", bound)
            sp.set_attr("ratio", ratio)
    """
    return _AmbientSpan(name, attrs)


class _Activation:
    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", sp: Span | NullSpan) -> None:
        self._tracer = tracer
        self._span = sp
        self._token = None

    def __enter__(self) -> Span | NullSpan:
        self._token = _CURRENT.set((self._tracer, self._span))
        return self._span

    def __exit__(self, *exc) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)


class Tracer:
    """Creates spans, owns sampling, records finished spans into a store.

    ``sample_rate`` drives the *head-based* decision: made exactly once,
    when a trace starts with no incoming context.  A trace arriving with
    a ``traceparent`` header inherits the caller's decision — the whole
    point of propagating the flag is that a tree is recorded everywhere
    or nowhere.
    """

    def __init__(self, store: SpanStore | None = None, sample_rate: float = 1.0,
                 node_id: str | None = None, seed: int | None = None) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate!r}")
        self.store = store if store is not None else SpanStore()
        self.sample_rate = float(sample_rate)
        self.node_id = node_id
        self._rng = random.Random(seed)
        self.started = 0
        self.sampled = 0

    # -- sampling ----------------------------------------------------------
    def _decide(self) -> bool:
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return self._rng.random() < self.sample_rate

    # -- span lifecycle ----------------------------------------------------
    def start_trace(self, name: str, context: TraceContext | None = None,
                    attrs: dict | None = None) -> Span | NullSpan:
        """Open a trace-root span (locally rooted, or continuing ``context``).

        With an incoming context the new span becomes a *child* of the
        remote span and follows its sampling flag; without one, this
        tracer makes the head decision.
        """
        self.started += 1
        if context is not None:
            sampled = context.sampled
            trace_id, parent_id = context.trace_id, context.span_id
        else:
            sampled = self._decide()
            trace_id, parent_id = new_trace_id(), None
        if not sampled:
            return NullSpan(TraceContext(trace_id, parent_id or new_span_id(),
                                         sampled=False))
        self.sampled += 1
        return Span(name, trace_id, parent_id=parent_id, attrs=attrs,
                    node_id=self.node_id)

    def start_span(self, name: str, parent: Span | NullSpan,
                   attrs: dict | None = None) -> Span | NullSpan:
        """Open a child span (a :class:`NullSpan` parent begets null children)."""
        if not parent.is_recording:
            return parent if isinstance(parent, NullSpan) else NullSpan()
        return Span(name, parent.trace_id, parent_id=parent.span_id,
                    attrs=attrs, node_id=self.node_id)

    def finish_span(self, sp: Span | NullSpan) -> None:
        """End a span and record it (no-op for null spans)."""
        if not sp.is_recording:
            return
        sp.end()
        self.store.add(sp.to_dict())

    def record_span(self, name: str, *, trace_id: str,
                    parent_id: str | None = None, start: float | None = None,
                    duration: float | None = None, attrs: dict | None = None,
                    status: str = "ok", error: str | None = None) -> dict:
        """Record an already-measured span (retro-spans: queue waits,
        durations measured by other clocks, forced error exemplars).

        Bypasses sampling deliberately — this is how *always sample on
        error* works: the caller records a minimal span for a trace the
        head decision skipped.
        """
        span_dict = {
            "trace_id": trace_id,
            "span_id": new_span_id(),
            "parent_id": parent_id,
            "name": name,
            "start": round(start if start is not None else time.time(), 6),
            "duration": round(duration, 6) if duration is not None else None,
            "status": status,
        }
        if attrs:
            span_dict["attrs"] = attrs
        if error is not None:
            span_dict["error"] = error
        if self.node_id is not None:
            span_dict["node_id"] = self.node_id
        self.store.add(span_dict)
        return span_dict

    # -- ambient installation ----------------------------------------------
    def activate(self, sp: Span | NullSpan) -> _Activation:
        """Make ``sp`` the ambient span for a ``with`` block (this thread)."""
        return _Activation(self, sp)

    def span(self, name: str, parent: Span | NullSpan | None = None,
             attrs: dict | None = None) -> "_TracerSpan":
        """Context manager: open/close a child of ``parent`` (or of the
        ambient span).  With neither, the span is a no-op — roots are
        only ever created deliberately via :meth:`start_trace`."""
        return _TracerSpan(self, name, parent, attrs)

    def stats_dict(self) -> dict:
        return {"started": self.started, "sampled": self.sampled,
                "sample_rate": self.sample_rate, **self.store.stats_dict()}


class _TracerSpan:
    __slots__ = ("_tracer", "_name", "_parent", "_attrs", "_span", "_token")

    def __init__(self, tracer: Tracer, name: str,
                 parent: Span | NullSpan | None, attrs: dict | None) -> None:
        self._tracer = tracer
        self._name = name
        self._parent = parent
        self._attrs = attrs
        self._span: Span | NullSpan | None = None
        self._token = None

    def __enter__(self) -> Span | NullSpan:
        parent = self._parent if self._parent is not None else current_span()
        if parent is None:
            self._span = NullSpan()
        else:
            self._span = self._tracer.start_span(self._name, parent,
                                                 attrs=self._attrs)
        self._token = _CURRENT.set((self._tracer, self._span))
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
        if self._span is not None:
            if exc is not None and self._span.is_recording:
                self._span.record_error(exc)
            self._tracer.finish_span(self._span)


# ---------------------------------------------------------------------------
# Process-pool boundary helpers
# ---------------------------------------------------------------------------

def install_collector(context_dict: dict | None) -> tuple[Tracer, Span | NullSpan,
                                                          contextvars.Token]:
    """Install an ambient collecting tracer in a worker process.

    ``context_dict`` is a pickled :meth:`TraceContext.to_dict`.  Returns
    ``(tracer, root span, reset token)``; pair with :func:`collect_spans`.
    """
    ctx = TraceContext.from_dict(context_dict)
    tracer = Tracer(store=SpanStore(max_traces=4))
    root = tracer.start_trace("worker", context=ctx)
    token = _CURRENT.set((tracer, root))
    return tracer, root, token


def collect_spans(tracer: Tracer, root: Span | NullSpan,
                  token: contextvars.Token,
                  error: BaseException | None = None) -> list[dict]:
    """Finish the collector's root span and return every recorded span."""
    _CURRENT.reset(token)
    if error is not None and root.is_recording:
        root.record_error(error)
    tracer.finish_span(root)
    if root.trace_id is None:
        return []
    return tracer.store.get(root.trace_id) or []


# ---------------------------------------------------------------------------
# Waterfall rendering (the `repro trace` CLI body)
# ---------------------------------------------------------------------------

def render_waterfall(spans: list[dict], width: int = 32) -> str:
    """Render a span list as an indented waterfall tree with self-times.

    Offsets come from wall-clock starts (the only cross-process axis),
    widths from measured durations.  *Self* time is a span's duration
    minus its direct children's — the classic "where did the time
    actually go" column.
    """
    if not spans:
        return "(no spans)"
    by_id = {s["span_id"]: s for s in spans}
    children: dict[str | None, list[dict]] = {}
    for s in spans:
        parent = s.get("parent_id")
        if parent is not None and parent not in by_id:
            parent = None  # orphan (e.g. remote parent not stitched in)
        children.setdefault(parent, []).append(s)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.get("start") or 0.0)

    t0 = min(s.get("start") or 0.0 for s in spans)
    horizon = max((s.get("start") or 0.0) + (s.get("duration") or 0.0)
                  for s in spans)
    total = max(horizon - t0, 1e-9)

    lines = [f"trace {spans[0].get('trace_id', '?')} "
             f"({len(spans)} spans, {total * 1000:.1f} ms)"]

    def emit(s: dict, depth: int) -> None:
        start = (s.get("start") or 0.0) - t0
        duration = s.get("duration") or 0.0
        kids = children.get(s["span_id"], [])
        self_time = max(0.0, duration - sum(k.get("duration") or 0.0
                                            for k in kids))
        lo = min(width - 1, int(width * start / total))
        hi = min(width, max(lo + 1, int(width * (start + duration) / total)))
        bar = " " * lo + "#" * (hi - lo) + " " * (width - hi)
        name = "  " * depth + s.get("name", "?")
        node = f" @{s['node_id']}" if s.get("node_id") else ""
        status = " !" + (s.get("error") or "error") if s.get("status") == "error" else ""
        attrs = s.get("attrs") or {}
        tag = ""
        if attrs:
            inner = ", ".join(f"{k}={_fmt_attr(v)}" for k, v in sorted(attrs.items()))
            tag = f" [{inner}]"
        lines.append(f"  |{bar}| {duration * 1000:8.1f} ms "
                     f"(self {self_time * 1000:7.1f} ms)  {name}{node}{tag}{status}")
        for kid in kids:
            emit(kid, depth + 1)

    for root in children.get(None, []):
        emit(root, 0)
    return "\n".join(lines)


def _fmt_attr(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
