"""Open-loop load harness with SLO gating for the compression service.

The harness replays a recorded :class:`~repro.api.request.CompressionRequest`
mix against a live service at a target request rate and reports what a
client population would have felt: submit-to-result latency quantiles,
sustained jobs/second, error and rejection counts, plus the service's own
view (coalesce rate, queue high-water mark, per-stage latencies) scraped
from ``/stats`` and ``/metrics`` after the run.

**Open loop** means submissions happen *on schedule* — request ``i``
leaves at ``t0 + i/rps`` whether or not earlier requests have completed.
A closed loop (submit, wait, submit) measures the service at whatever
rate the service itself sets, which hides overload entirely; the open
loop is what reveals queue growth, backpressure and latency collapse at
the offered rate (the coordinated-omission argument).

Results are written as **diffable snapshots** (``BENCH_serve.json``,
``BENCH_throughput.json``): stable key order, no timestamps, no absolute
paths — so committing them records the performance trajectory of the
repo and a regression shows up as a reviewable diff.

SLO thresholds live in ``benchmarks/slo.json``; :func:`check_slo` turns
a run summary plus thresholds into a list of violations, and the CLI
exits non-zero on any — that is the CI gate.

The request mix (``benchmarks/load_mix.json``) describes synthetic
payloads rather than shipping arrays: each entry is a job-spec template
plus a ``data`` block (shape, seed, generator, variants) the harness
materialises deterministically before the run starts, so the mix file
stays a few hundred bytes and the generated traffic is reproducible.

A profile may set ``"topology": "gateway"`` (plus ``"nodes": N``): the
embedded endpoint is then a :class:`~repro.gateway.GatewayServer`
fronting N agent-registered worker nodes instead of a single
:class:`~repro.serve.server.ServiceServer`, so the SLO gate also covers
the routed path — the extra hop, consistent-hash stickiness and the
heartbeat/ack result plumbing — and a latency regression in the gateway
shows up next to the direct-serve numbers it is compared against.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import random
import sys
import tempfile
import threading
import time
from pathlib import Path

__all__ = [
    "load_mix",
    "materialize_mix",
    "run_load",
    "check_slo",
    "write_bench",
    "main",
]

#: In-flight ceiling: beyond it, scheduled submissions are recorded as
#: ``dropped`` instead of spawning unbounded threads.  Hitting it means
#: the service is in latency collapse at the offered rate — exactly the
#: overload signal the open loop exists to surface.
MAX_INFLIGHT = 512


# ---------------------------------------------------------------------------
# Mix: load, validate, materialise
# ---------------------------------------------------------------------------

def load_mix(path: str | Path) -> dict:
    """Read and validate a mix file; returns the parsed dict."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or not isinstance(payload.get("requests"), list):
        raise ValueError(f"mix file {path} must be an object with a 'requests' list")
    if not payload["requests"]:
        raise ValueError(f"mix file {path} has no requests")
    for i, entry in enumerate(payload["requests"]):
        if not isinstance(entry, dict) or "kind" not in entry:
            raise ValueError(f"mix entry {i} must be an object with a 'kind'")
        if not isinstance(entry.get("data"), dict) or "shape" not in entry["data"]:
            raise ValueError(f"mix entry {i} needs a data block with a shape")
        if entry.get("weight", 1) <= 0:
            raise ValueError(f"mix entry {i} has non-positive weight")
    return payload


def _make_array(shape: tuple[int, ...], seed: int, generator: str):
    import numpy as np

    rng = np.random.default_rng(seed)
    if generator == "noise":
        return rng.normal(size=shape).astype(np.float32)
    if generator == "smooth":
        from repro.datasets.base import fourier_field

        return fourier_field(tuple(shape), 1, rng)[0]
    raise ValueError(f"unknown data generator {generator!r} (try smooth, noise)")


def materialize_mix(mix: dict, out_dir: str | Path) -> tuple[list[dict], list[int]]:
    """Turn mix entries into submittable job-spec bodies.

    Each entry expands into ``data.variants`` bodies (default 1), one per
    distinct synthetic array — variants with the same template but
    different seeds stop the whole run from coalescing into one job.
    Entries with ``"output": true`` get a per-variant path under
    ``out_dir``.  Returns ``(bodies, weights)`` aligned by index, ready
    for weighted sampling.
    """
    from repro.serve.jobs import JobSpec

    out_dir = Path(out_dir)
    bodies: list[dict] = []
    weights: list[int] = []
    for i, entry in enumerate(mix["requests"]):
        entry = dict(entry)
        data = dict(entry.pop("data"))
        weight = int(entry.pop("weight", 1))
        wants_output = bool(entry.pop("output", False))
        shape = tuple(int(s) for s in data.get("shape"))
        base_seed = int(data.get("seed", i))
        generator = data.get("generator", "smooth")
        for variant in range(int(data.get("variants", 1))):
            array = _make_array(shape, base_seed + variant, generator)
            body = dict(entry)
            body["data_b64"] = JobSpec.encode_array(array)
            if wants_output:
                body["output"] = str(out_dir / f"mix{i:02d}_v{variant}.frz")
            bodies.append(body)
            weights.append(weight)
    return bodies, weights


# ---------------------------------------------------------------------------
# The open loop
# ---------------------------------------------------------------------------

def _percentile(ordered: list[float], q: float) -> float:
    """Exact linear-interpolation percentile of pre-sorted samples."""
    if not ordered:
        raise ValueError("no samples")
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * (pos - lo)


def run_load(
    url: str,
    bodies: list[dict],
    weights: list[int] | None = None,
    *,
    rps: float,
    duration: float,
    timeout: float = 120.0,
    seed: int = 0,
    max_inflight: int = MAX_INFLIGHT,
) -> dict:
    """Replay ``bodies`` open-loop at ``rps`` for ``duration`` seconds.

    Returns the JSON-ready run summary (latency quantiles over the
    submit-to-result round trip, throughput, outcome counts, and the
    service's post-run ``/stats``/``/metrics`` view).
    """
    from repro.serve.client import BackpressureError, ServiceClient, ServiceError

    if rps <= 0 or duration <= 0:
        raise ValueError("rps and duration must be positive")
    n_requests = max(1, round(rps * duration))
    rng = random.Random(seed)
    plan = rng.choices(range(len(bodies)), weights=weights, k=n_requests)

    client = ServiceClient(url, timeout=min(30.0, timeout),
                           backpressure_wait=0.0, poll_interval=0.01)
    lock = threading.Lock()
    latencies: list[float] = []
    outcomes = {"submitted": 0, "completed": 0, "coalesced": 0,
                "failed": 0, "rejected": 0, "dropped": 0, "errors": 0}
    inflight = threading.Semaphore(max_inflight)

    def one(body: dict) -> None:
        try:
            t_send = time.monotonic()
            try:
                ticket = client.submit(body)
            except BackpressureError:
                with lock:
                    outcomes["rejected"] += 1
                return
            with lock:
                outcomes["submitted"] += 1
                if ticket.get("coalesced_into"):
                    outcomes["coalesced"] += 1
            try:
                client.result(ticket["job_id"], timeout=timeout)
            except (ServiceError, TimeoutError):
                with lock:
                    outcomes["failed"] += 1
                return
            latency = time.monotonic() - t_send
            with lock:
                outcomes["completed"] += 1
                latencies.append(latency)
        except Exception:  # noqa: BLE001 - a worker must never kill the loop
            with lock:
                outcomes["errors"] += 1
        finally:
            inflight.release()

    threads: list[threading.Thread] = []
    t0 = time.monotonic()
    for i, choice in enumerate(plan):
        delay = t0 + i / rps - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        if not inflight.acquire(blocking=False):
            with lock:
                outcomes["dropped"] += 1
            continue
        t = threading.Thread(target=one, args=(bodies[choice],), daemon=True)
        t.start()
        threads.append(t)
    for t in threads:
        t.join(timeout + duration)
    wall = time.monotonic() - t0

    ordered = sorted(latencies)
    latency: dict = {"count": len(ordered)}
    if ordered:
        latency.update(
            min=round(ordered[0], 6),
            max=round(ordered[-1], 6),
            mean=round(sum(ordered) / len(ordered), 6),
            p50=round(_percentile(ordered, 0.50), 6),
            p90=round(_percentile(ordered, 0.90), 6),
            p99=round(_percentile(ordered, 0.99), 6),
        )
    summary = {
        "schema": 1,
        "config": {
            "rps": rps,
            "duration_seconds": duration,
            "requests": n_requests,
            "distinct_bodies": len(bodies),
            "seed": seed,
        },
        "latency_seconds": latency,
        "throughput": {
            "wall_seconds": round(wall, 3),
            "jobs_per_second": round(outcomes["completed"] / wall, 3) if wall else 0.0,
            "offered_rps": rps,
        },
        "outcomes": outcomes,
        "service": _scrape_service(client),
    }
    return summary


def _scrape_service(client) -> dict:
    """The service's own post-run numbers (best effort — never raises)."""
    try:
        stats = client.stats()
    except Exception:  # noqa: BLE001 - the summary survives a dead service
        return {}
    jobs = stats.get("jobs", {})
    queue = stats.get("queue", {})
    submitted = jobs.get("submitted", 0)
    view = {
        "jobs": jobs,
        "queue_max_depth": queue.get("max_depth"),
        "queue_rejected": queue.get("rejected"),
        "coalesce_rate": round(jobs.get("coalesced", 0) / submitted, 4)
        if submitted else 0.0,
    }
    trace = stats.get("trace")
    if isinstance(trace, dict):
        # Slowest-request exemplars: the job ids an operator would feed
        # to `repro trace`.  Sorted (not slowest-first) and without the
        # raw seconds/trace ids so the BENCH snapshot stays diffable.
        exemplars = trace.get("exemplars") or []
        view["trace_exemplars"] = {
            "count": len(exemplars),
            "job_ids": sorted(str(e["job_id"]) for e in exemplars
                              if e.get("job_id")),
        }
    metrics = stats.get("metrics") or {}
    stages = {}
    for key, snap in metrics.items():
        if key.startswith("repro_stage_seconds{") and isinstance(snap, dict):
            stage = key.split('stage="')[1].rstrip('"}')
            stages[stage] = {k: snap[k] for k in ("count", "p50", "p99")
                             if k in snap}
    if stages:
        view["stages"] = stages
    fleet = stats.get("fleet")
    if isinstance(fleet, dict):  # the endpoint was a gateway, not a node
        view["gateway"] = {
            "node_counts": fleet.get("counts"),
            "reroutes": jobs.get("reroutes"),
            "requeued": jobs.get("requeued"),
            "node_failures": jobs.get("node_failures"),
            "no_capacity": jobs.get("no_capacity"),
        }
    return view


# ---------------------------------------------------------------------------
# SLO gating and snapshot persistence
# ---------------------------------------------------------------------------

def check_slo(summary: dict, thresholds: dict, relax: float = 1.0) -> list[str]:
    """Compare a run summary against SLO thresholds; returns violations.

    ``relax > 1`` loosens every threshold by that factor (latency bounds
    multiply, throughput floors divide) — CI machines are slower and
    noisier than the numbers a developer records locally.
    """
    if relax <= 0:
        raise ValueError("relax must be positive")
    violations: list[str] = []
    latency = summary.get("latency_seconds", {})
    for key in ("p50_seconds", "p90_seconds", "p99_seconds", "max_seconds"):
        if key not in thresholds:
            continue
        stat = "max" if key == "max_seconds" else key.split("_")[0]
        observed = latency.get(stat)
        bound = thresholds[key] * relax
        if observed is None:
            violations.append(f"{key}: no completed requests to measure")
        elif observed > bound:
            violations.append(f"{key}: {observed:.4f}s exceeds {bound:.4f}s")
    if "min_jobs_per_second" in thresholds:
        floor = thresholds["min_jobs_per_second"] / relax
        observed = summary["throughput"]["jobs_per_second"]
        if observed < floor:
            violations.append(
                f"min_jobs_per_second: {observed:.3f} below {floor:.3f}")
    if "max_error_rate" in thresholds:
        out = summary["outcomes"]
        attempts = out["submitted"] + out["rejected"] + out["dropped"]
        bad = out["failed"] + out["errors"] + out["dropped"]
        rate = bad / attempts if attempts else 0.0
        if rate > thresholds["max_error_rate"]:
            violations.append(
                f"max_error_rate: {rate:.4f} exceeds "
                f"{thresholds['max_error_rate']:.4f}")
    return violations


def write_bench(path: str | Path, summary: dict) -> None:
    """Persist a diffable snapshot (sorted keys, trailing newline)."""
    Path(path).write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# Embedded endpoints
# ---------------------------------------------------------------------------

@contextlib.contextmanager
def embedded_endpoint(topology: str, *, workers: int, executor: str,
                      nodes: int = 2, trace_sample: float = 1.0):
    """Start an in-process service endpoint for a load run; yields its URL.

    ``topology="serve"`` is a single :class:`ServiceServer`;
    ``topology="gateway"`` is a :class:`GatewayServer` fronting ``nodes``
    agent-registered workers (each with ``workers`` threads/processes),
    torn down nodes-first so agents unregister cleanly.  ``trace_sample``
    reaches every tier, so a run can measure tracing fully on (1.0,
    the default — the SLO gate then covers tracing overhead) or off (0).
    """
    from repro.serve.server import ServiceServer

    if topology == "serve":
        with ServiceServer(port=0, workers=workers, executor=executor,
                           trace_sample=trace_sample) as server:
            yield server.url
        return
    if topology != "gateway":
        raise ValueError(f"unknown topology {topology!r} (try serve, gateway)")
    if nodes < 1:
        raise ValueError("gateway topology needs at least one node")

    from repro.gateway import GatewayServer

    gateway = GatewayServer(port=0, heartbeat_interval=0.25,
                            dead_after=5.0, check_interval=0.1,
                            trace_sample=trace_sample).start()
    fleet: list[ServiceServer] = []
    try:
        for i in range(nodes):
            fleet.append(ServiceServer(
                port=0, workers=workers, executor=executor,
                trace_sample=trace_sample,
                register=gateway.url, node_id=f"load-n{i}").start())
        deadline = time.monotonic() + 30.0
        while gateway.router.registry.counts()["active"] < nodes:
            if time.monotonic() > deadline:
                raise TimeoutError("load fleet never finished registering")
            time.sleep(0.02)
        yield gateway.url
    finally:
        for node in fleet:
            node.shutdown()
        gateway.shutdown()


# ---------------------------------------------------------------------------
# CLI (shared by `repro load` and tools/load_harness.py)
# ---------------------------------------------------------------------------

def _default_file(name: str) -> str:
    """Default mix/SLO path: ``benchmarks/<name>`` under the CWD when it
    exists there (a checkout being worked in), else under the repo this
    module was loaded from — so ``tools/load_harness.py`` works from any
    directory."""
    local = Path("benchmarks") / name
    if local.exists():
        return str(local)
    return str(Path(__file__).resolve().parents[3] / "benchmarks" / name)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--url", default=None,
                        help="a running service endpoint; omitted, the harness "
                             "starts an embedded server for the run")
    parser.add_argument("--mix", default=_default_file("load_mix.json"),
                        help="request-mix file (default benchmarks/load_mix.json)")
    parser.add_argument("--slo", default=_default_file("slo.json"),
                        help="SLO threshold file (default benchmarks/slo.json)")
    parser.add_argument("--profile", default="serve",
                        help="named profile in the SLO file (default serve); "
                             "'all' runs every profile")
    parser.add_argument("--rps", type=float, default=None,
                        help="override the profile's request rate")
    parser.add_argument("--duration", type=float, default=None,
                        help="override the profile's duration in seconds")
    parser.add_argument("--relax", type=float, default=1.0,
                        help="loosen SLO thresholds by this factor (CI uses >1)")
    parser.add_argument("--seed", type=int, default=0,
                        help="request-schedule seed (default 0)")
    parser.add_argument("--executor", choices=("auto", "thread", "process"),
                        default="thread",
                        help="embedded server backend (default thread)")
    parser.add_argument("--workers", type=int, default=2,
                        help="embedded server workers (default 2)")
    parser.add_argument("--topology", choices=("serve", "gateway"),
                        default=None,
                        help="embedded endpoint shape: a single server or a "
                             "gateway fronting registered nodes (default: "
                             "whatever the profile says, else serve)")
    parser.add_argument("--nodes", type=int, default=None,
                        help="worker nodes behind an embedded gateway "
                             "(default: the profile's 'nodes', else 2)")
    parser.add_argument("--trace-sample", type=float, default=1.0,
                        help="embedded endpoint's trace sampling rate "
                             "(default 1.0: the SLO gate measures the "
                             "service with tracing fully on; 0 disables)")
    parser.add_argument("--out-dir", default=".",
                        help="where BENCH_<profile>.json snapshots land "
                             "(default: current directory)")
    parser.add_argument("--no-bench", action="store_true",
                        help="skip writing BENCH snapshots (check SLOs only)")
    parser.add_argument("--json", action="store_true",
                        help="print the full run summary as JSON")


def run_from_args(args: argparse.Namespace) -> int:
    try:
        mix = load_mix(args.mix)
        slo = json.loads(Path(args.slo).read_text())
    except FileNotFoundError as exc:
        print(f"error: {exc.filename}: no such file (see --mix/--slo)",
              file=sys.stderr)
        return 2
    if args.rps is not None and args.rps <= 0:
        print("error: --rps must be positive", file=sys.stderr)
        return 2
    if args.duration is not None and args.duration <= 0:
        print("error: --duration must be positive", file=sys.stderr)
        return 2
    if args.relax <= 0:
        print("error: --relax must be positive", file=sys.stderr)
        return 2
    if args.profile == "all":
        profiles = list(slo)
    elif args.profile in slo:
        profiles = [args.profile]
    else:
        print(f"error: profile {args.profile!r} not in {args.slo} "
              f"(have: {', '.join(sorted(slo))})", file=sys.stderr)
        return 2

    failed = False
    for name in profiles:
        profile = slo[name]
        rps = args.rps if args.rps is not None else profile["rps"]
        duration = (args.duration if args.duration is not None
                    else profile["duration_seconds"])
        topology = args.topology or profile.get("topology", "serve")
        nodes = args.nodes if args.nodes is not None else profile.get("nodes", 2)
        with tempfile.TemporaryDirectory(prefix="repro-load-") as tmp:
            bodies, weights = materialize_mix(mix, tmp)
            if args.url is None:
                with embedded_endpoint(topology, workers=args.workers,
                                       executor=args.executor, nodes=nodes,
                                       trace_sample=args.trace_sample) as url:
                    summary = run_load(url, bodies, weights, rps=rps,
                                       duration=duration, seed=args.seed)
                summary["config"]["topology"] = topology
                summary["config"]["trace_sample"] = args.trace_sample
                if topology == "gateway":
                    summary["config"]["nodes"] = nodes
            else:
                summary = run_load(args.url, bodies, weights, rps=rps,
                                   duration=duration, seed=args.seed)
        thresholds = profile.get("thresholds", {})
        violations = check_slo(summary, thresholds, relax=args.relax)
        summary["slo"] = {
            "profile": name,
            "thresholds": thresholds,
            "relax": args.relax,
            "violations": violations,
            "pass": not violations,
        }
        # With --json, stdout carries only the JSON (pipeable to jq);
        # the human progress lines move to stderr.
        human = sys.stderr if args.json else sys.stdout
        if not args.no_bench:
            out_dir = Path(args.out_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            out = out_dir / f"BENCH_{name}.json"
            write_bench(out, summary)
            print(f"wrote {out}", file=human)
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        lat = summary["latency_seconds"]
        thr = summary["throughput"]
        print(f"{name}: {lat.get('count', 0)} completed at "
              f"{thr['jobs_per_second']:.2f} jobs/s "
              f"(p50 {lat.get('p50', float('nan')):.4f}s, "
              f"p99 {lat.get('p99', float('nan')):.4f}s)", file=human)
        for violation in violations:
            print(f"SLO VIOLATION [{name}]: {violation}", file=sys.stderr)
        failed = failed or bool(violations)
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="load_harness",
        description="Open-loop load harness for the repro compression "
                    "service, with SLO gating (see docs/OBSERVABILITY.md).",
    )
    add_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
