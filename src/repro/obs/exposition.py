"""Prometheus text exposition: render a registry, parse it back.

:func:`render_prometheus` produces the version-0.0.4 text format — the
one every Prometheus-compatible scraper (Prometheus itself, VictoriaMetrics,
Grafana Agent, ``promtool``) understands:

* ``# HELP``/``# TYPE`` header per family;
* one ``name{labels} value`` sample line per child;
* histograms expand to cumulative ``_bucket{le="..."}`` series plus
  ``_sum`` and ``_count``, with the mandatory ``le="+Inf"`` bucket.

:func:`parse_prometheus` is the inverse for the subset this package
emits.  It exists so the test suite can assert the endpoint's output is
well-formed *by parsing it*, and so the load harness can scrape a live
service without pulling in a client library.  It understands the full
label-value escaping rules of the format (``\\``, ``\"``, ``\n`` —
including commas and braces inside quoted values) and rejects anything
that doesn't scan, duplicate ``# TYPE`` declarations included; it is
still not a general Prometheus parser (no exemplars, no timestamps).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

__all__ = ["CONTENT_TYPE", "render_prometheus", "parse_prometheus", "MetricSample"]

#: The Content-Type a scraper expects from a ``/metrics`` endpoint.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _fmt(value: float) -> str:
    """Prometheus number formatting: integers bare, floats repr-stable."""
    if value != value:  # NaN: int(value) would raise, and repr says "nan"
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_int = int(value)
    return str(as_int) if as_int == value else repr(float(value))


def _escape_label_value(value: str) -> str:
    """Exposition-format label escaping: ``\\``, ``\"``, ``\n``."""
    return (value.replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _labels(pairs: list[tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(str(value))}"'
                    for name, value in pairs)
    return "{" + body + "}"


def render_prometheus(registry: "MetricsRegistry") -> str:
    """Render every family in ``registry`` to exposition text."""
    from repro.obs.metrics import Histogram  # local: avoid import cycle

    lines: list[str] = []
    for family in registry.families():
        help_text = family.help.replace("\\", r"\\").replace("\n", r"\n")
        lines.append(f"# HELP {family.name} {help_text}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labelvalues, child in family.children():
            base = list(zip(family.labelnames, labelvalues))
            if isinstance(child, Histogram):
                cumulative = child.cumulative_counts()
                for bound, acc in zip(child.bounds, cumulative):
                    sample_labels = _labels(base + [("le", _fmt(bound))])
                    lines.append(f"{family.name}_bucket{sample_labels} {acc}")
                inf_labels = _labels(base + [("le", "+Inf")])
                lines.append(f"{family.name}_bucket{inf_labels} {cumulative[-1]}")
                lines.append(f"{family.name}_sum{_labels(base)} {_fmt(child.sum)}")
                lines.append(f"{family.name}_count{_labels(base)} {child.count}")
            else:
                lines.append(f"{family.name}{_labels(base)} {_fmt(child.value())}")
    return "\n".join(lines) + "\n"


@dataclass
class MetricSample:
    """One parsed sample line: name, labels, value."""

    name: str
    labels: dict[str, str] = field(default_factory=dict)
    value: float = 0.0


_NAME_RE = re.compile(r"[A-Za-z_:][A-Za-z0-9_:]*")
_LABEL_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_ESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


def _parse_labels(line: str, pos: int, lineno: int) -> tuple[dict[str, str], int]:
    """Scan a ``{...}`` label block starting at ``line[pos] == "{"``.

    A character scanner rather than a regex because quoted values may
    contain anything — commas, ``}``, escaped quotes — and only the
    escaping rules decide where the value ends.  Returns the parsed
    labels and the index just past the closing ``}``.
    """
    labels: dict[str, str] = {}
    pos += 1  # past "{"
    while True:
        if pos >= len(line):
            raise ValueError(f"line {lineno}: unterminated label block")
        if line[pos] == "}":  # also accepts the empty block "{}"
            return labels, pos + 1
        m = _LABEL_NAME_RE.match(line, pos)
        if m is None:
            raise ValueError(
                f"line {lineno}: malformed label name at column {pos + 1}")
        name = m.group(0)
        pos = m.end()
        if not line.startswith('="', pos):
            raise ValueError(
                f"line {lineno}: expected '=\"' after label {name!r}")
        pos += 2
        chars: list[str] = []
        while True:
            if pos >= len(line):
                raise ValueError(
                    f"line {lineno}: unterminated value for label {name!r}")
            ch = line[pos]
            if ch == '"':
                pos += 1
                break
            if ch == "\\":
                if pos + 1 >= len(line) or line[pos + 1] not in _ESCAPES:
                    raise ValueError(
                        f"line {lineno}: bad escape in label {name!r}")
                chars.append(_ESCAPES[line[pos + 1]])
                pos += 2
                continue
            chars.append(ch)
            pos += 1
        labels[name] = "".join(chars)
        if pos < len(line) and line[pos] == ",":
            pos += 1  # next pair (trailing comma before "}" also scans)


def parse_prometheus(text: str) -> dict[str, list[MetricSample]]:
    """Parse exposition text into ``{family/sample name: [samples]}``.

    Also returns the declared types under the reserved key ``"__types__"``
    as a single pseudo-sample list (``labels={"type": ...}`` per family),
    so callers can assert a name was declared a counter/gauge/histogram.
    Raises :class:`ValueError` on any line that does not scan — the test
    suite uses that to prove the endpoint emits only well-formed text —
    and on a family whose ``# TYPE`` is declared twice (the exposition
    format requires one block per family).
    """
    samples: dict[str, list[MetricSample]] = {}
    types: list[MetricSample] = []
    declared: set[str] = set()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {raw!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                    raise ValueError(f"line {lineno}: malformed TYPE {raw!r}")
                if parts[2] in declared:
                    raise ValueError(
                        f"line {lineno}: duplicate TYPE for metric {parts[2]!r}")
                declared.add(parts[2])
                types.append(MetricSample(parts[2], {"type": parts[3]}))
            continue
        m = _NAME_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        name = m.group(0)
        pos = m.end()
        labels: dict[str, str] = {}
        if pos < len(line) and line[pos] == "{":
            labels, pos = _parse_labels(line, pos, lineno)
        rest = line[pos:]
        if not rest or not rest[0].isspace():
            raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        value_text = rest.strip()
        if not value_text or len(value_text.split()) != 1:
            raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        try:
            value = float("inf") if value_text == "+Inf" else float(value_text)
        except ValueError:
            raise ValueError(
                f"line {lineno}: malformed value {value_text!r}"
            ) from None
        samples.setdefault(name, []).append(MetricSample(name, labels, value))
    samples["__types__"] = types
    return samples
