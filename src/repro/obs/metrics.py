"""Dependency-free metrics primitives: counters, gauges, histograms.

The service's value proposition is quantitative — convergence
iterations, compressor calls, jobs per second — so the runtime needs an
instrument panel that costs nothing to keep on.  This module is that
panel's core: three metric kinds plus a :class:`MetricsRegistry` that
owns them, all stdlib, all thread-safe, all cheap enough to leave
enabled in production (an :meth:`Histogram.observe` is a bisect plus
three float updates under a lock).

Design points, in the idiom of the Prometheus client libraries but
without the dependency:

* **Families and labels** — ``registry.counter("jobs_total",
  labels=("state",))`` returns a family; ``family.labels(state="done")``
  returns (creating on first use) the child counter for that label set.
  A family declared with no label names *is* its only child: ``inc``/
  ``set``/``observe`` act on it directly.
* **Callback metrics** — a counter or gauge may be declared with a
  ``callback`` reading an existing number (a scheduler stat, a queue
  depth) at render time instead of double-booking every increment.
  Mirroring the single source of truth this way means ``/metrics`` and
  ``/stats`` can never drift apart.
* **Fixed-bucket histograms** — latency distributions use a fixed,
  shared bucket ladder (:data:`DEFAULT_LATENCY_BUCKETS`), so histograms
  from different workers, shards or runs :meth:`~Histogram.merge` by
  adding bucket counts.  Quantiles (p50/p90/p99) are estimated by linear
  interpolation inside the owning bucket and clamped to the observed
  ``[min, max]`` — the estimate error is bounded by the bucket width,
  which is the standard trade for mergeable histograms.

Rendering to the Prometheus text exposition format lives in
:mod:`repro.obs.exposition`; this module is pure bookkeeping.
"""

from __future__ import annotations

import math
import threading

from repro.util.concurrency import guarded_by
from bisect import bisect_left
from typing import Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_QUANTILES",
]

#: Latency bucket upper bounds in seconds: a ~2.5x geometric ladder from
#: 1 ms to 60 s.  Sub-millisecond work all lands in the first bucket
#: (its quantiles clamp to the observed min/max, so tiny jobs still
#: report honest numbers), and anything over a minute is effectively an
#: outage, not a latency.  The ``+Inf`` bucket is implicit.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: The quantiles summarised into ``/stats`` and ``BENCH_*`` snapshots.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)


@guarded_by("_lock", "_value")
class Counter:
    """Monotonically increasing count.

    With ``callback`` the counter is read-only: :meth:`value` returns
    whatever the callback reports (the callback owner must only ever
    increase it), and :meth:`inc` is a programming error.
    """

    def __init__(self, callback: Callable[[], float] | None = None) -> None:
        self._callback = callback
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if self._callback is not None:
            raise RuntimeError("callback counters are read-only")
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount!r}")
        with self._lock:
            self._value += amount

    def value(self) -> float:
        if self._callback is not None:
            value = self._callback()
            # Preserve int-ness: JSON snapshots of integer stats should
            # not grow a spurious ".0".
            return value if isinstance(value, (int, float)) else float(value)
        with self._lock:
            return self._value


@guarded_by("_lock", "_value")
class Gauge:
    """A value that goes up and down (or is sampled via ``callback``)."""

    def __init__(self, callback: Callable[[], float] | None = None) -> None:
        self._callback = callback
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if self._callback is not None:
            raise RuntimeError("callback gauges are read-only")
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._callback is not None:
            raise RuntimeError("callback gauges are read-only")
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def value(self) -> float:
        if self._callback is not None:
            value = self._callback()
            return value if isinstance(value, (int, float)) else float(value)
        with self._lock:
            return self._value


@guarded_by("_lock", "_counts", "_sum", "_count", "_min", "_max")
class Histogram:
    """Fixed-bucket histogram with mergeable counts and quantile estimates.

    ``buckets`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches the overflow.  An observation lands
    in the first bucket whose bound is ``>= value`` (Prometheus ``le``
    semantics).
    """

    def __init__(self, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"buckets must be strictly increasing, got {bounds!r}")
        if not all(math.isfinite(b) for b in bounds):
            raise ValueError("buckets must be finite (+Inf is implicit)")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------
    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s observations in (bucket ladders must match)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.bounds!r} vs {other.bounds!r}"
            )
        counts, total, subtotal, lo, hi = other._atomic_snapshot()
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._sum += subtotal
            self._count += total
            self._min = min(self._min, lo)
            self._max = max(self._max, hi)

    def _atomic_snapshot(self) -> tuple[list[int], int, float, float, float]:
        with self._lock:
            return list(self._counts), self._count, self._sum, self._min, self._max

    # -- reading -----------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def min(self) -> float | None:
        with self._lock:
            return None if self._count == 0 else self._min

    @property
    def max(self) -> float | None:
        with self._lock:
            return None if self._count == 0 else self._max

    def bucket_counts(self) -> list[int]:
        """Per-bucket counts, aligned with ``bounds`` plus a final +Inf slot."""
        with self._lock:
            return list(self._counts)

    def cumulative_counts(self) -> list[int]:
        """Prometheus-style cumulative ``le`` counts (last equals ``count``)."""
        out, acc = [], 0
        for c in self.bucket_counts():
            acc += c
            out.append(acc)
        return out

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q`` quantile (``0 <= q <= 1``); ``None`` when empty.

        Linear interpolation inside the owning bucket, clamped to the
        observed ``[min, max]`` so estimates never leave the data's
        range — the error is bounded by the bucket width.  Monotone in
        ``q`` by construction (cumulative counts are non-decreasing and
        clamping preserves order).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        counts, total, _, lo, hi = self._atomic_snapshot()
        if total == 0:
            return None
        rank = q * total
        acc = 0
        for idx, c in enumerate(counts):
            acc += c
            if acc >= rank and c > 0:
                lower = self.bounds[idx - 1] if idx > 0 else lo
                upper = self.bounds[idx] if idx < len(self.bounds) else hi
                # Position of the rank inside this bucket's run of samples.
                frac = (rank - (acc - c)) / c
                est = lower + (upper - lower) * max(0.0, min(1.0, frac))
                return min(max(est, lo), hi)
        return hi  # pragma: no cover - rank <= total always lands above

    def snapshot(self, quantiles: Iterable[float] = DEFAULT_QUANTILES) -> dict:
        """JSON-ready summary (the ``/stats`` shape for one histogram)."""
        counts, total, subtotal, lo, hi = self._atomic_snapshot()
        out = {
            "count": total,
            "sum": round(subtotal, 6),
            "min": round(lo, 6) if total else None,
            "max": round(hi, 6) if total else None,
        }
        for q in quantiles:
            est = self.quantile(q)
            out[f"p{round(q * 100):d}"] = round(est, 6) if est is not None else None
        return out


@guarded_by("_lock", "_children")
class MetricFamily:
    """One named metric plus its labelled children.

    ``labels(**kv)`` resolves (creating on first use) the child for a
    label set; a family with no declared label names is its own single
    child, so callers use the family object directly.
    """

    def __init__(
        self,
        name: str,
        help: str,  # noqa: A002 - prometheus vocabulary
        kind: str,
        labelnames: tuple[str, ...] = (),
        factory: Callable[[], Counter | Gauge | Histogram] | None = None,
    ) -> None:
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._factory = factory
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()
        if not self.labelnames:
            self._children[()] = factory()

    def labels(self, **kv: str) -> Counter | Gauge | Histogram:
        if sorted(kv) != sorted(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes labels {self.labelnames}, got {sorted(kv)}"
            )
        key = tuple(str(kv[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._factory()
            return child

    def children(self) -> list[tuple[tuple[str, ...], Counter | Gauge | Histogram]]:
        """(label values, child) pairs in insertion order."""
        with self._lock:
            return list(self._children.items())

    # -- unlabelled convenience (the family IS the child) ------------------
    def _solo(self) -> Counter | Gauge | Histogram:
        if self.labelnames:
            raise ValueError(f"metric {self.name} requires labels {self.labelnames}")
        with self._lock:
            return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    def value(self) -> float:
        return self._solo().value()

    def quantile(self, q: float) -> float | None:
        return self._solo().quantile(q)


_NAME_OK = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name.lower()) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")
    return name


@guarded_by("_lock", "_families")
class MetricsRegistry:
    """Owns a set of metric families; the unit ``/metrics`` renders.

    ``namespace`` prefixes every metric name (``repro_`` by default), so
    the exposition never collides with other exporters on the host.
    Registration is idempotent by name *and* signature: asking for an
    existing name with the same kind returns the existing family, with a
    different kind raises.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = _check_name(namespace) if namespace else ""
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _full_name(self, name: str) -> str:
        _check_name(name)
        return f"{self.namespace}_{name}" if self.namespace else name

    def _register(self, name: str, help: str, kind: str,  # noqa: A002
                  labelnames: tuple[str, ...], factory) -> MetricFamily:
        full = self._full_name(name)
        with self._lock:
            family = self._families.get(full)
            if family is not None:
                if family.kind != kind or family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {full} already registered as {family.kind}"
                        f"{family.labelnames}"
                    )
                return family
            family = MetricFamily(full, help, kind, tuple(labelnames), factory)
            self._families[full] = family
            return family

    def counter(self, name: str, help: str = "",  # noqa: A002
                labels: tuple[str, ...] = (),
                callback: Callable[[], float] | None = None) -> MetricFamily:
        if callback is not None and labels:
            raise ValueError("callback metrics cannot be labelled")
        return self._register(name, help, "counter", labels,
                              lambda: Counter(callback))

    def gauge(self, name: str, help: str = "",  # noqa: A002
              labels: tuple[str, ...] = (),
              callback: Callable[[], float] | None = None) -> MetricFamily:
        if callback is not None and labels:
            raise ValueError("callback metrics cannot be labelled")
        return self._register(name, help, "gauge", labels,
                              lambda: Gauge(callback))

    def histogram(self, name: str, help: str = "",  # noqa: A002
                  labels: tuple[str, ...] = (),
                  buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS) -> MetricFamily:
        bounds = tuple(buckets)
        return self._register(name, help, "histogram", labels,
                              lambda: Histogram(bounds))

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    def get(self, name: str) -> MetricFamily | None:
        """Look a family up by its full (namespaced) or short name."""
        with self._lock:
            return self._families.get(name) or self._families.get(self._full_name(name))

    def render(self) -> str:
        """The Prometheus text exposition of every family."""
        from repro.obs.exposition import render_prometheus  # local: no cycle at import

        return render_prometheus(self)

    def snapshot(self) -> dict:
        """JSON-ready dump of every metric (the ``/stats`` ``metrics`` block).

        Counters and gauges report their value; histograms report count,
        sum, min/max and the :data:`DEFAULT_QUANTILES`.  Labelled
        children nest under a ``"name{label=value}"``-style key built
        from the label values, matching the exposition's identity.
        """
        out: dict = {}
        for family in self.families():
            for labelvalues, child in family.children():
                if labelvalues:
                    pairs = ",".join(
                        f'{n}="{v}"' for n, v in zip(family.labelnames, labelvalues)
                    )
                    key = f"{family.name}{{{pairs}}}"
                else:
                    key = family.name
                if isinstance(child, Histogram):
                    out[key] = child.snapshot()
                else:
                    value = child.value()
                    out[key] = round(value, 6) if isinstance(value, float) else value
        return out
