"""Observability layer: metrics registry, exposition, load harness.

Dependency-free instrumentation for the resident service — counters,
gauges and mergeable fixed-bucket latency histograms
(:mod:`repro.obs.metrics`), the Prometheus text exposition and its
parser (:mod:`repro.obs.exposition`), and an open-loop load harness
with SLO gating (:mod:`repro.obs.load`).
"""

from repro.obs.exposition import (
    CONTENT_TYPE,
    MetricSample,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_QUANTILES",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricSample",
    "MetricsRegistry",
    "parse_prometheus",
    "render_prometheus",
]
