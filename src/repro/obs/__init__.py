"""Observability layer: metrics, tracing, exposition, load harness.

Dependency-free instrumentation for the resident service — counters,
gauges and mergeable fixed-bucket latency histograms
(:mod:`repro.obs.metrics`), the Prometheus text exposition and its
parser (:mod:`repro.obs.exposition`), distributed tracing with
W3C-``traceparent`` propagation (:mod:`repro.obs.trace`), correlated
structured logging (:mod:`repro.obs.tracelog`), and an open-loop load
harness with SLO gating (:mod:`repro.obs.load`).
"""

from repro.obs.exposition import (
    CONTENT_TYPE,
    MetricSample,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.trace import (
    TRACEPARENT_HEADER,
    NullSpan,
    Span,
    SpanStore,
    TraceContext,
    Tracer,
    current_context,
    current_span,
    render_waterfall,
    span,
)
from repro.obs.tracelog import TraceLogger

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_QUANTILES",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricSample",
    "MetricsRegistry",
    "NullSpan",
    "Span",
    "SpanStore",
    "TRACEPARENT_HEADER",
    "TraceContext",
    "TraceLogger",
    "Tracer",
    "current_context",
    "current_span",
    "parse_prometheus",
    "render_prometheus",
    "render_waterfall",
    "span",
]
