"""Typed exception hierarchy for the public service surface.

Every error a *public* entry point in ``repro.serve``, ``repro.gateway``
or ``repro.api`` can raise derives from :class:`ReproError` — the
``EXC001`` static checker (see ``docs/STATIC_ANALYSIS.md``) enforces
this, so callers can catch one root type instead of guessing which
stdlib exception a given failure mode maps to.

Backwards compatibility is kept through multiple inheritance: each
typed error also subclasses the stdlib exception the call site raised
historically (``RequestError`` is still a ``ValueError``,
``JobTimeoutError`` still a ``TimeoutError``, ...), so existing
``except ValueError`` / ``pytest.raises(TimeoutError)`` code keeps
working unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "RequestError",
    "StateError",
    "SchedulerStoppedError",
    "UnknownJobError",
    "JobTimeoutError",
]


class ReproError(Exception):
    """Root of every typed error raised by public service entry points."""


class RequestError(ReproError, ValueError):
    """A request payload or argument failed validation.

    Also a ``ValueError`` so pre-existing validation call sites keep
    their historical contract.
    """


class StateError(ReproError, RuntimeError):
    """An operation was invoked in a state that cannot serve it."""


class SchedulerStoppedError(StateError):
    """Submission refused because the scheduler has been stopped."""

    def __init__(self, message: str = "scheduler is stopped") -> None:
        super().__init__(message)


class UnknownJobError(ReproError, KeyError):
    """A job id that the service does not (or no longer does) track."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return Exception.__str__(self)


class JobTimeoutError(ReproError, TimeoutError):
    """A wait on a job (or a drain) exceeded its deadline."""
