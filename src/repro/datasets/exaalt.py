"""EXAALT analog: 1D molecular-dynamics coordinates, 82 time-steps, 3 fields.

EXAALT snapshots are per-atom x/y/z coordinate arrays from large-scale MD.
Atoms sit near lattice sites and vibrate thermally; stored in atom-id order
the arrays are locally smooth (neighbouring ids are spatial neighbours in
the initial build), punctuated by lattice-row jumps — a sawtooth-like
signal that 1D Lorenzo prediction handles well at loose bounds.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, FieldSeries

__all__ = ["make_exaalt"]


def make_exaalt(
    n_atoms: int = 43904,  # 28 * 28 * 56 lattice cells worth of sites
    n_steps: int = 82,
    seed: int = 17,
    lattice_constant: float = 3.52,
    thermal_sigma: float = 0.08,
) -> Dataset:
    """Build the EXAALT analog dataset."""
    rng = np.random.default_rng(seed)
    ds = Dataset(name="Exaalt", domain="Molecular Dyn.")

    # Cubic-ish lattice enumerated in row-major atom-id order.
    nz = round(n_atoms ** (1 / 3))
    ny = nz
    nx = -(-n_atoms // (ny * nz))
    grid = np.indices((nx, ny, nz)).reshape(3, -1).T[:n_atoms]
    sites = grid.astype(np.float64) * lattice_constant

    disp = thermal_sigma * rng.standard_normal((n_atoms, 3))
    steps_xyz: list[np.ndarray] = []
    for _ in range(n_steps):
        # Ornstein-Uhlenbeck-ish thermal motion: decay + kick.
        disp = 0.9 * disp + thermal_sigma * 0.45 * rng.standard_normal((n_atoms, 3))
        steps_xyz.append((sites + disp).astype(np.float32))

    for axis, name in enumerate(("x", "y", "z")):
        ds.add(FieldSeries(name, [s[:, axis].copy() for s in steps_xyz]))
    return ds
