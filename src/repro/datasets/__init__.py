"""Synthetic SDRBench-analog datasets (paper Table III).

The paper evaluates on five real datasets from the Scientific Data
Reduction Benchmark [16].  Those total ~150 GB and are not available here,
so each dataset is *simulated*: a seeded generator reproducing the
properties FRaZ's behaviour depends on — dimensionality, field count,
multi-time-step evolution, and value character (docs/BENCHMARKS.md records
how the analogs compare to the paper's originals):

* :mod:`repro.datasets.hurricane` — 3D meteorology; smooth multi-scale
  dynamics plus sparse log-scaled cloud/moisture fields (``QCLOUDf.log10``
  drives the Fig. 3 non-monotonicity);
* :mod:`repro.datasets.hacc` — 1D cosmology particles (clustered positions,
  Maxwellian velocities);
* :mod:`repro.datasets.cesm` — 2D climate fields;
* :mod:`repro.datasets.exaalt` — 1D molecular-dynamics coordinates;
* :mod:`repro.datasets.nyx` — 3D cosmology (lognormal density, temperature).

All generators are deterministic in their seed, emit float32 (as SDRBench
does), and evolve gradually across time-steps so the time-step reuse
optimisation behaves as in the paper.
"""

from repro.datasets.base import Dataset, FieldSeries, fourier_field
from repro.datasets.registry import DATASET_NAMES, dataset_summaries, load_dataset

__all__ = [
    "DATASET_NAMES",
    "Dataset",
    "FieldSeries",
    "dataset_summaries",
    "fourier_field",
    "load_dataset",
]
