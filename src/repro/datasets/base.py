"""Dataset containers and shared field synthesis.

:func:`fourier_field` is the workhorse: a band-limited random Fourier
series over the grid, evolving smoothly in time through per-mode phase
drift.  It produces fields with realistic spatial correlation (what
prediction-based compressors exploit) whose time-steps differ gradually
(what the time-step-reuse optimisation exploits).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FieldSeries", "Dataset", "fourier_field"]


@dataclass
class FieldSeries:
    """One named field across time-steps."""

    name: str
    steps: list[np.ndarray]

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.steps[0].shape if self.steps else ()

    @property
    def nbytes(self) -> int:
        return sum(s.nbytes for s in self.steps)


@dataclass
class Dataset:
    """A named collection of field series (one SDRBench application)."""

    name: str
    domain: str
    fields: dict[str, FieldSeries] = field(default_factory=dict)

    def add(self, series: FieldSeries) -> None:
        if series.name in self.fields:
            raise KeyError(f"duplicate field {series.name!r}")
        self.fields[series.name] = series

    @property
    def n_fields(self) -> int:
        return len(self.fields)

    @property
    def n_steps(self) -> int:
        return max((f.n_steps for f in self.fields.values()), default=0)

    @property
    def ndim(self) -> int:
        for f in self.fields.values():
            return len(f.shape)
        return 0

    @property
    def nbytes(self) -> int:
        return sum(f.nbytes for f in self.fields.values())

    def field_arrays(self) -> dict[str, list[np.ndarray]]:
        """Plain dict-of-lists view used by :func:`repro.core.tune_fields`."""
        return {name: series.steps for name, series in self.fields.items()}

    def summary_row(self) -> str:
        """Table III-style row: name, domain, steps, dim, fields, size."""
        return (
            f"{self.name:<10} {self.domain:<15} {self.n_steps:>5} "
            f"{self.ndim:>3}D {self.n_fields:>7} {self.nbytes / 1e6:>9.1f} MB"
        )


def fourier_field(
    shape: tuple[int, ...],
    n_steps: int,
    rng: np.random.Generator,
    n_modes: int = 24,
    max_wavenumber: float = 4.0,
    drift: float = 0.05,
    noise: float = 0.0,
    amplitude_decay: float = 1.5,
) -> list[np.ndarray]:
    """Band-limited random Fourier series, evolving by phase drift.

    Parameters
    ----------
    shape:
        Grid shape (1D-3D).
    n_steps:
        Number of time-steps to synthesise.
    rng:
        Seeded generator (determinism contract).
    n_modes:
        Number of random Fourier modes.
    max_wavenumber:
        Band limit in cycles across the domain; smaller = smoother.
    drift:
        Per-step phase drift (radians) — controls how much consecutive
        steps differ, hence how often FRaZ retrains.
    noise:
        Optional white-noise amplitude added per step (compressor stress).
    amplitude_decay:
        Spectral slope: mode amplitude ``~ |k|**-amplitude_decay``.

    Returns
    -------
    list of float32 arrays, one per step.
    """
    ndim = len(shape)
    axes = np.meshgrid(
        *(np.linspace(0.0, 1.0, s, endpoint=False) for s in shape), indexing="ij"
    )
    k = rng.uniform(-max_wavenumber, max_wavenumber, size=(n_modes, ndim))
    knorm = np.maximum(np.linalg.norm(k, axis=1), 0.5)
    amp = knorm**-amplitude_decay
    amp /= amp.max()
    phase0 = rng.uniform(0, 2 * np.pi, n_modes)
    omega = rng.uniform(0.5, 1.5, n_modes) * drift * 2 * np.pi

    # phase_grid[m] = 2*pi * k_m . x, evaluated once.
    phase_grid = np.zeros((n_modes,) + tuple(shape))
    for m in range(n_modes):
        acc = np.zeros(shape)
        for d in range(ndim):
            acc = acc + k[m, d] * axes[d]
        phase_grid[m] = 2 * np.pi * acc

    steps: list[np.ndarray] = []
    for t in range(n_steps):
        field_t = np.tensordot(
            amp, np.sin(phase_grid + (phase0 + omega * t)[(slice(None),) + (None,) * ndim]),
            axes=1,
        )
        if noise > 0:
            field_t = field_t + noise * rng.standard_normal(shape)
        steps.append(field_t.astype(np.float32))
    return steps
