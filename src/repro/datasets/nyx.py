"""NYX analog: 3D cosmology grids, 8 time-steps, 5 fields.

NYX (AMReX) outputs uniform-grid baryon fields.  The key characters:
``temperature`` and ``baryon_density`` are *lognormal* — smooth in log
space with a heavy high tail (filaments/halos) — while the three velocity
components are smooth and signed.  Fig. 9(b) and Fig. 10 use
``temperature``; the heavy tail is what separates the compressors' PSNR
there.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, FieldSeries, fourier_field

__all__ = ["make_nyx"]


def make_nyx(
    shape: tuple[int, int, int] = (48, 48, 48),
    n_steps: int = 8,
    seed: int = 19,
) -> Dataset:
    """Build the NYX analog dataset."""
    rng = np.random.default_rng(seed)
    ds = Dataset(name="NYX", domain="Cosmology")

    # Temperature spans ~2 decades and is smooth (shock-heated gas on a
    # coarse grid); density is the heavy-tailed field with a much wider
    # lognormal spread and finer filamentary structure.
    for name, scale, sigma, kmax, decay in (
        ("temperature", 1.0e4, 0.8, 3.0, 1.6),
        ("baryon_density", 1.0, 1.6, 5.0, 1.2),
    ):
        base = fourier_field(
            shape, n_steps, rng, n_modes=24, max_wavenumber=kmax, drift=0.08,
            amplitude_decay=decay,
        )
        series = [
            (np.float32(scale) * np.exp(np.float32(sigma) * s)).astype(np.float32)
            for s in base
        ]
        ds.add(FieldSeries(name, series))

    for name in ("velocity_x", "velocity_y", "velocity_z"):
        base = fourier_field(
            shape, n_steps, rng, n_modes=24, max_wavenumber=4.0, drift=0.08, noise=0.005
        )
        ds.add(FieldSeries(name, [(np.float32(2.0e7) * s).astype(np.float32) for s in base]))
    return ds
