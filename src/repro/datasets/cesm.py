"""CESM-ATM analog: 2D climate fields, 62 time-steps, 6 fields.

The paper uses the six representative CESM atmosphere fields CLDHGH,
CLDLOW, CLOUD, FLDSC, FREQSH, PHIS ("other fields exhibit similar results
with one of them").  Real CESM fields are 1800x3600 lat-lon grids; we
synthesise 96x192 analogs: cloud-fraction fields are bounded in [0, 1] with
banded zonal structure, FLDSC/PHIS are smooth with strong meridional
gradients, and PHIS (surface geopotential) is *static* across time — as in
the real data, where only a limited number of fields carry multi-step
series (Table III's footnote).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, FieldSeries, fourier_field

__all__ = ["make_cesm"]


def make_cesm(
    shape: tuple[int, int] = (96, 192),
    n_steps: int = 62,
    seed: int = 13,
) -> Dataset:
    """Build the CESM-ATM analog dataset."""
    rng = np.random.default_rng(seed)
    ds = Dataset(name="CESM", domain="Climate")

    lat = np.linspace(-np.pi / 2, np.pi / 2, shape[0])[:, None]

    for name in ("CLDHGH", "CLDLOW", "CLOUD"):
        base = fourier_field(shape, n_steps, rng, n_modes=32, max_wavenumber=6.0, drift=0.05)
        zonal = (0.3 + 0.2 * np.cos(3 * lat)).astype(np.float32)
        series = [
            np.clip(zonal + 0.35 * s + 0.5, 0.0, 1.0).astype(np.float32) for s in base
        ]
        ds.add(FieldSeries(name, series))

    for name in ("FLDSC", "FREQSH"):
        base = fourier_field(shape, n_steps, rng, n_modes=24, max_wavenumber=4.0, drift=0.04)
        grad = (200.0 * np.cos(lat) ** 2).astype(np.float32)
        series = [(grad + np.float32(40.0) * s).astype(np.float32) for s in base]
        ds.add(FieldSeries(name, series))

    # PHIS: static orography — identical across steps.
    oro = fourier_field(shape, 1, rng, n_modes=48, max_wavenumber=10.0, drift=0.0)[0]
    phis = (np.clip(oro, 0, None) * np.float32(3.0e4)).astype(np.float32)
    ds.add(FieldSeries("PHIS", [phis.copy() for _ in range(n_steps)]))
    return ds
