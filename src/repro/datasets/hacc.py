"""HACC analog: 1D cosmology particle data, 101 time-steps, 6 fields.

HACC snapshots store per-particle positions (x, y, z) and velocities
(vx, vy, vz) as flat 1D arrays.  Positions are *clustered* (particles fall
into halos) but stored in arbitrary particle order, so adjacent array
entries are weakly correlated — the hard case for prediction-based
compressors and the reason Fig. 9(d) shows modest ratios.  Velocities are
Maxwellian around halo bulk motions.  Particles drift under their
velocities across steps, so consecutive snapshots correlate.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, FieldSeries

__all__ = ["make_hacc"]

_BOX = 64.0  # Mpc/h-style box side


def make_hacc(
    n_particles: int = 65536,
    n_steps: int = 101,
    n_halos: int = 48,
    seed: int = 11,
) -> Dataset:
    """Build the HACC analog dataset."""
    rng = np.random.default_rng(seed)
    ds = Dataset(name="HACC", domain="Cosmology")

    centers = rng.uniform(0, _BOX, size=(n_halos, 3))
    halo_sigma = rng.uniform(0.5, 3.0, size=n_halos)
    halo_bulk = rng.normal(0, 100.0, size=(n_halos, 3))
    membership = rng.integers(0, n_halos, size=n_particles)

    pos = centers[membership] + halo_sigma[membership, None] * rng.standard_normal(
        (n_particles, 3)
    )
    vel = halo_bulk[membership] + 50.0 * rng.standard_normal((n_particles, 3))
    # Arbitrary particle order: shuffle once so array neighbours are unrelated.
    order = rng.permutation(n_particles)
    pos, vel = pos[order], vel[order]

    dt = 1e-4
    pos_steps: list[np.ndarray] = []
    vel_steps: list[np.ndarray] = []
    p = pos.copy()
    v = vel.copy()
    for _ in range(n_steps):
        pos_steps.append(np.mod(p, _BOX).astype(np.float32))
        vel_steps.append(v.astype(np.float32))
        p = p + dt * v
        v = v + 0.5 * rng.standard_normal(v.shape)

    for axis, name in enumerate(("x", "y", "z")):
        ds.add(FieldSeries(name, [s[:, axis].copy() for s in pos_steps]))
    for axis, name in enumerate(("vx", "vy", "vz")):
        ds.add(FieldSeries(name, [s[:, axis].copy() for s in vel_steps]))
    return ds
