"""Dataset registry and Table III reproduction.

``load_dataset(name, size=...)`` builds any of the five analogs at three
scales:

* ``"tiny"`` — seconds-fast, for unit tests;
* ``"small"`` — the default benchmark scale (laptop-friendly);
* ``"paper"`` — the paper's time-step and field counts at reduced
  resolution (the full 150 GB originals are out of scope by design).

``dataset_summaries`` prints the Table III analog for whichever scale is
requested.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets.base import Dataset
from repro.datasets.cesm import make_cesm
from repro.datasets.exaalt import make_exaalt
from repro.datasets.hacc import make_hacc
from repro.datasets.hurricane import make_hurricane
from repro.datasets.nyx import make_nyx

__all__ = ["DATASET_NAMES", "load_dataset", "dataset_summaries", "PAPER_TABLE3"]

DATASET_NAMES = ("Hurricane", "HACC", "CESM", "Exaalt", "NYX")

#: The paper's Table III, for side-by-side reporting.
PAPER_TABLE3 = {
    "Hurricane": {"domain": "Meteorology", "steps": 48, "dim": 3, "fields": 13, "size": "59 GB"},
    "HACC": {"domain": "Cosmology", "steps": 101, "dim": 1, "fields": 6, "size": "11 GB"},
    "CESM": {"domain": "Climate", "steps": 62, "dim": 2, "fields": 6, "size": "48 GB"},
    "Exaalt": {"domain": "Molecular Dyn.", "steps": 82, "dim": 1, "fields": 3, "size": "1.1 GB"},
    "NYX": {"domain": "Cosmology", "steps": 8, "dim": 3, "fields": 5, "size": "35 GB"},
}

_SIZES = ("tiny", "small", "paper")

_BUILDERS: dict[str, dict[str, Callable[[int], Dataset]]] = {
    "Hurricane": {
        "tiny": lambda seed: make_hurricane((16, 16, 8), 6, seed),
        "small": lambda seed: make_hurricane((32, 32, 16), 16, seed),
        "paper": lambda seed: make_hurricane((48, 48, 24), 48, seed),
    },
    "HACC": {
        "tiny": lambda seed: make_hacc(4096, 6, seed=seed),
        "small": lambda seed: make_hacc(16384, 16, seed=seed),
        "paper": lambda seed: make_hacc(65536, 101, seed=seed),
    },
    "CESM": {
        "tiny": lambda seed: make_cesm((24, 48), 6, seed),
        "small": lambda seed: make_cesm((48, 96), 16, seed),
        "paper": lambda seed: make_cesm((96, 192), 62, seed),
    },
    "Exaalt": {
        "tiny": lambda seed: make_exaalt(4096, 6, seed=seed),
        "small": lambda seed: make_exaalt(16384, 16, seed=seed),
        "paper": lambda seed: make_exaalt(43904, 82, seed=seed),
    },
    "NYX": {
        "tiny": lambda seed: make_nyx((16, 16, 16), 4, seed),
        "small": lambda seed: make_nyx((32, 32, 32), 8, seed),
        "paper": lambda seed: make_nyx((48, 48, 48), 8, seed),
    },
}


def load_dataset(name: str, size: str = "small", seed: int | None = None) -> Dataset:
    """Build a dataset analog by name at the requested scale."""
    if name not in _BUILDERS:
        raise KeyError(f"unknown dataset {name!r}; available: {DATASET_NAMES}")
    if size not in _SIZES:
        raise ValueError(f"size must be one of {_SIZES}, got {size!r}")
    default_seeds = {"Hurricane": 7, "HACC": 11, "CESM": 13, "Exaalt": 17, "NYX": 19}
    return _BUILDERS[name][size](default_seeds[name] if seed is None else seed)


def dataset_summaries(size: str = "small") -> str:
    """Table III analog: one row per dataset at the given scale."""
    header = (
        f"{'Name':<10} {'Domain':<15} {'Steps':>5} {'Dim':>4} {'Fields':>7} "
        f"{'Total size':>12}"
    )
    rows = [header, "-" * len(header)]
    # Alphabetical, case-insensitive: `repro datasets` output is stable
    # for scripts regardless of registration order.
    for name in sorted(DATASET_NAMES, key=str.lower):
        rows.append(load_dataset(name, size).summary_row())
    return "\n".join(rows)
