"""Hurricane ISABEL analog: 3D meteorology, 48 time-steps, 13 fields.

The real dataset (SDRBench "Hurricane ISABEL") has 100x500x500 grids; we
synthesise the same field inventory at laptop scale.  Field character
matters more than resolution:

* wind components ``Uf/Vf/Wf`` — a translating vortex plus turbulence;
* thermodynamic fields ``TCf/Pf/QVAPORf`` — smooth multi-scale structure
  (``TCf`` is the field Figs. 1 and 9a use);
* cloud/precip fields ``CLOUDf/QCLOUDf/QICEf/QRAINf/QSNOWf/QGRAUPf/PRECIPf``
  — *sparse*: mostly an exact floor value with embedded smooth plumes.
  ``QCLOUDf.log10`` (the log-scaled variant SDRBench ships and Fig. 3
  sweeps) mixes a constant background with high-gradient islands, which is
  precisely what makes SZ's ratio/bound curve spiky.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, FieldSeries, fourier_field

__all__ = ["make_hurricane"]

_SMOOTH_FIELDS = ["TCf", "Pf", "QVAPORf", "Uf", "Vf", "Wf"]
_CLOUD_FIELDS = ["CLOUDf", "QCLOUDf", "QICEf", "QRAINf", "QSNOWf", "QGRAUPf", "PRECIPf"]


def _sparse_cloud(base: np.ndarray, threshold: float, log10: bool) -> np.ndarray:
    """Threshold a smooth field into a sparse, plume-like cloud variable."""
    plume = np.clip(base - threshold, 0.0, None)
    if log10:
        # SDRBench's .log10 fields: log of the positive part, floored.
        out = np.where(plume > 0, np.log10(plume + 1e-6), np.log10(1e-6))
    else:
        out = plume
    return out.astype(np.float32)


def make_hurricane(
    shape: tuple[int, int, int] = (48, 48, 24),
    n_steps: int = 48,
    seed: int = 7,
) -> Dataset:
    """Build the Hurricane analog dataset."""
    rng = np.random.default_rng(seed)
    ds = Dataset(name="Hurricane", domain="Meteorology")

    for name in _SMOOTH_FIELDS:
        noise = 0.01 if name in ("Uf", "Vf", "Wf") else 0.002
        steps = fourier_field(
            shape, n_steps, rng, n_modes=24, max_wavenumber=4.0, drift=0.04, noise=noise
        )
        scale = {"TCf": 25.0, "Pf": 500.0, "QVAPORf": 0.02}.get(name, 30.0)
        offset = {"TCf": 10.0, "Pf": 850.0, "QVAPORf": 0.02}.get(name, 0.0)
        ds.add(
            FieldSeries(
                name, [np.float32(offset) + np.float32(scale) * s for s in steps]
            )
        )

    for name in _CLOUD_FIELDS:
        base = fourier_field(
            shape, n_steps, rng, n_modes=16, max_wavenumber=5.0, drift=0.06
        )
        threshold = float(rng.uniform(0.3, 0.7))
        log10 = name == "QCLOUDf"
        series = [_sparse_cloud(s, threshold, log10) for s in base]
        label = f"{name}.log10" if log10 else name
        ds.add(FieldSeries(label, series))
    return ds
