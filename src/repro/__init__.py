"""FRaZ reproduction: generic high-fidelity fixed-ratio lossy compression.

Reproduction of Underwood, Di, Calhoun & Cappello, *FRaZ: A Generic
High-Fidelity Fixed-Ratio Lossy Compression Framework for Scientific
Floating-point Data* (IPDPS 2020), built entirely from scratch in Python:
the FRaZ autotuner itself plus the SZ / ZFP / MGARD compressors, the
lossless coding substrate, the Dlib-style global optimizer, the libpressio
abstraction layer, the SDRBench-like datasets, and the full benchmark
harness.  See README.md for the system inventory and docs/BENCHMARKS.md for
the paper-vs-measured record.

Quickstart::

    import numpy as np
    from repro import FRaZ

    data = np.random.default_rng(0).standard_normal((64, 64, 32)).astype("float32")
    fraz = FRaZ(compressor="sz", target_ratio=10.0, tolerance=0.1)
    payload, result = fraz.compress(data)
    print(result.ratio, result.error_bound)
    recon = fraz.decompress(payload)
"""

from repro.cache import EvalCache
from repro.core.fraz import FRaZ
from repro.core.results import FieldResult, TimeSeriesResult, TrainingResult
from repro.pressio.evaluation import evaluate
from repro.pressio.registry import available_compressors, make_compressor

__version__ = "1.3.0"

__all__ = [
    "EvalCache",
    "FRaZ",
    "FieldResult",
    "TimeSeriesResult",
    "TrainingResult",
    "available_compressors",
    "evaluate",
    "make_compressor",
    "__version__",
]
