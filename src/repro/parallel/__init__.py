"""Parallel orchestration substrate (the paper's MPI layer, Sec. V-C).

The paper parallelises FRaZ three ways: across error-bound regions (with
first-success cancellation), across fields, and across time-steps.  All
three are task-level fan-outs, which :mod:`concurrent.futures` expresses on
one node; :class:`repro.parallel.executor.BaseExecutor` gives a uniform
cancel-aware interface over serial, thread and process backends.

The 36-416-core strong-scaling study (Fig. 8) cannot be hosted locally;
:mod:`repro.parallel.simulate` replays *measured* single-task durations
through a deterministic list scheduler, computing exactly the quantity the
paper analyses — makespan lower-bounded by the longest field task.
"""

from repro.parallel.executor import (
    BaseExecutor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.parallel.simulate import simulate_makespan, simulate_scaling

__all__ = [
    "BaseExecutor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "make_executor",
    "simulate_makespan",
    "simulate_scaling",
]
