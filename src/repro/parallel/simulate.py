"""Deterministic cluster-replay scheduler for the strong-scaling study.

The paper's Fig. 8 runs FRaZ's task graph (one search task per field and
time-step window) on 36-416 Bebop cores and observes that total runtime
flattens once it equals the longest single task — "the runtime of the
algorithm is lower bounded by the longest running worker task".

We cannot host hundreds of cores, but the quantity plotted is a pure
scheduling outcome of the measured task durations.  ``simulate_makespan``
replays durations through a greedy list scheduler (earliest-free worker,
arrival order — matching the MPI orchestrator's dispatch), and
``simulate_scaling`` sweeps worker counts, reproducing the curve's shape:
steep drops while tasks still queue, then a floor at ``max(duration)``.
"""

from __future__ import annotations

import heapq
from typing import Sequence

__all__ = ["simulate_makespan", "simulate_scaling"]


def simulate_makespan(durations: Sequence[float], workers: int) -> float:
    """Makespan of a greedy list schedule of ``durations`` on ``workers``."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if any(d < 0 for d in durations):
        raise ValueError("durations must be non-negative")
    if not durations:
        return 0.0
    free = [0.0] * min(workers, len(durations))
    heapq.heapify(free)
    for d in durations:
        start = heapq.heappop(free)
        heapq.heappush(free, start + float(d))
    return max(free)


def simulate_scaling(
    durations: Sequence[float], worker_counts: Sequence[int]
) -> dict[int, float]:
    """Makespan per worker count — the Fig. 8 curve."""
    return {int(w): simulate_makespan(durations, int(w)) for w in worker_counts}
