"""Cancel-aware task executors.

The one primitive FRaZ's orchestration needs (Algorithm 2) is: run a batch
of independent tasks, observe completions as they happen, and *cancel
everything not yet started* once a completion satisfies the objective.
:meth:`BaseExecutor.run_cancellable` provides exactly that; passing
``stop_when=None`` degrades to a plain unordered map (used for the
parallel-by-field loop, Algorithm 3).

Backends:

* :class:`SerialExecutor` — in-process, deterministic order; the default.
* :class:`ThreadExecutor` — ``ThreadPoolExecutor``; NumPy-heavy tasks
  release the GIL for part of their runtime.
* :class:`ProcessExecutor` — ``ProcessPoolExecutor``; true parallelism;
  task callables and payloads must be picklable (all compressor
  configurations in this package are frozen dataclasses, by design).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from abc import ABC, abstractmethod
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro.errors import StateError
from repro.util.concurrency import guarded_by

__all__ = [
    "BaseExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ProcessJobPool",
    "TracedResult",
    "WorkerCrashError",
    "make_executor",
    "resolve_workers",
]


class TracedResult:
    """A task's return value plus the spans its worker process recorded.

    Process-pool workers cannot write into the parent's span store, so
    a traced task returns ``TracedResult(value, spans)`` and the caller
    merges ``spans`` (plain span dicts) into its own store.  Callers
    that pass ``trace_context`` to :meth:`ProcessJobPool.submit` must
    unwrap the future's result with an ``isinstance`` check — untraced
    submissions keep returning the bare value.
    """

    __slots__ = ("value", "spans")

    def __init__(self, value: Any, spans: list) -> None:
        self.value = value
        self.spans = spans


def _traced_trampoline(context_dict: dict, fn: Callable[..., Any],
                       *args: Any) -> TracedResult:
    """Module-level (picklable) wrapper that collects spans in a worker.

    Installs an ambient collecting tracer continuing ``context_dict``,
    runs ``fn``, and ships the recorded spans home with the result.  The
    worker's root span is a bookkeeping shim, dropped here so the parent
    (which owns the real ``run`` span) keeps a clean tree; the task's
    own spans are re-parented onto the context the parent sent.
    """
    from repro.obs.trace import collect_spans, install_collector

    tracer, root, token = install_collector(context_dict)
    error: BaseException | None = None
    try:
        value = fn(*args)
    except BaseException as exc:
        error = exc
        raise
    finally:
        spans = collect_spans(tracer, root, token, error=error)
        parent_id = context_dict.get("span_id")
        kept = []
        for span_dict in spans:
            if span_dict.get("span_id") == root.span_id:
                continue
            if span_dict.get("parent_id") == root.span_id:
                span_dict = dict(span_dict, parent_id=parent_id)
            kept.append(span_dict)
    return TracedResult(value, kept)


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count request into a concrete pool size.

    ``None`` and every non-positive integer mean "use all available cores"
    (``os.cpu_count()``, or 1 when the platform cannot report it) — that is
    what long-lived services pass so one config works on any host.  Anything
    that is not an integer is rejected with a clear error rather than being
    truncated or coerced.
    """
    if workers is None:
        return os.cpu_count() or 1
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise TypeError(
            f"workers must be an int or None, got {type(workers).__name__} {workers!r}"
        )
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


class BaseExecutor(ABC):
    """Uniform interface over serial/thread/process execution."""

    #: Whether tasks see the caller's objects (serial/thread) or pickled
    #: copies (process pools).  Orchestrators use this to decide if shared
    #: state — e.g. the evaluation cache — needs an explicit merge step.
    shares_memory: bool = True

    @abstractmethod
    def run_cancellable(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        stop_when: Callable[[Any], bool] | None = None,
    ) -> list[tuple[int, Any]]:
        """Run ``fn`` over all payloads; stop early when a result satisfies
        ``stop_when``.

        Returns ``(index, result)`` pairs for every task that *completed*
        (tasks cancelled before starting are absent).  Exceptions raised by
        tasks propagate.
        """

    def map_all(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> list[Any]:
        """Run everything to completion; results in payload order."""
        pairs = self.run_cancellable(fn, payloads, stop_when=None)
        out: list[Any] = [None] * len(payloads)
        for idx, res in pairs:
            out[idx] = res
        return out


class SerialExecutor(BaseExecutor):
    """In-order, in-process execution (deterministic reference backend)."""

    def run_cancellable(self, fn, payloads, stop_when=None):
        results: list[tuple[int, Any]] = []
        for idx, payload in enumerate(payloads):
            res = fn(payload)
            results.append((idx, res))
            if stop_when is not None and stop_when(res):
                break
        return results


class _PoolExecutor(BaseExecutor):
    """Shared futures-based implementation for thread/process pools."""

    _pool_cls: type

    def __init__(self, workers: int | None = 4) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if not isinstance(workers, int) or isinstance(workers, bool):
            raise TypeError(
                f"workers must be an int or None, got {type(workers).__name__} {workers!r}"
            )
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def run_cancellable(self, fn, payloads, stop_when=None):
        results: list[tuple[int, Any]] = []
        with self._pool_cls(max_workers=self.workers) as pool:
            futures = {pool.submit(fn, p): i for i, p in enumerate(payloads)}
            pending = set(futures)
            satisfied = False
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    res = fut.result()
                    results.append((futures[fut], res))
                    if stop_when is not None and stop_when(res):
                        satisfied = True
                if satisfied:
                    # Cancel everything not yet started; tasks already
                    # running finish and their results are kept.
                    for fut in pending:
                        fut.cancel()
                    still_running = {f for f in pending if not f.cancelled()}
                    for fut in still_running:
                        res = fut.result()
                        results.append((futures[fut], res))
                    break
        results.sort(key=lambda pair: pair[0])
        return results


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend."""

    _pool_cls = ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """Process-pool backend (payloads must be picklable)."""

    _pool_cls = ProcessPoolExecutor
    shares_memory = False


class WorkerCrashError(StateError):
    """A process-pool worker died mid-job (killed, OOM, segfault).

    Distinct from an exception *raised by* the job: the job never got to
    finish, so the work is retryable and the pool that lost the process
    must be rebuilt before it can accept work again.
    """


@guarded_by("_lock", "_executor", "_generation", "crashes", "rebuilds")
@guarded_by("_count_lock", "tasks_submitted", "tasks_completed", "tasks_cancelled")
class ProcessJobPool:
    """Persistent process pool with crash detection and rebuild.

    ``concurrent.futures`` marks the whole :class:`ProcessPoolExecutor`
    broken the moment any worker process dies; every in-flight future then
    raises :class:`BrokenProcessPool` and no further submissions are
    accepted.  Long-lived services need to survive that, so this wrapper
    keeps a *generation* counter: callers submit, observe a crash, and
    report it back with the generation they submitted under — the first
    reporter rebuilds the pool exactly once, later reporters (whose jobs
    died in the same crash) see the rebuild already happened.

    Unlike :class:`ProcessExecutor` (which builds a fresh pool per batch
    for the intra-search fan-out), this pool is resident: worker processes
    persist across jobs, so per-job dispatch pays pickling but not process
    start-up, and workers may keep process-local state via ``initializer``.

    Workers are started via ``forkserver`` (falling back to ``spawn``
    where unavailable) rather than the platform default: the pool's owner
    is a heavily multi-threaded server, and the default ``fork`` on POSIX
    spawns workers *lazily on first submit* — forking a process whose
    other threads may hold locks, which can deadlock the child in its
    bootstrap.  ``forkserver``/``spawn`` children start clean, so the
    task function and ``initializer`` must be module-level (picklable by
    name).
    """

    def __init__(
        self,
        workers: int | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        preload: Sequence[str] = (),
    ) -> None:
        self.workers = resolve_workers(workers)
        self._initializer = initializer
        self._initargs = initargs
        methods = multiprocessing.get_all_start_methods()
        self._mp_context = multiprocessing.get_context(
            "forkserver" if "forkserver" in methods else "spawn"
        )
        if preload and hasattr(self._mp_context, "set_forkserver_preload"):
            # The fork server imports these once; every worker (including
            # post-crash respawns) then forks with them already loaded,
            # instead of re-importing numpy and friends per process.
            self._mp_context.set_forkserver_preload(list(preload))
        self._lock = threading.Lock()
        self._generation = 0
        self.crashes = 0
        self.rebuilds = 0
        # Task-flow counters for the observability layer.  A dedicated
        # lock, because done-callbacks may fire synchronously inside
        # submit() (future already finished) while self._lock is held.
        self._count_lock = threading.Lock()
        self.tasks_submitted = 0
        self.tasks_completed = 0
        self.tasks_cancelled = 0
        self._executor: ProcessPoolExecutor | None = self._make()

    def _make(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._mp_context,
            initializer=self._initializer,
            initargs=self._initargs,
        )

    def submit(self, fn: Callable[..., Any], *args: Any,
               trace_context: dict | None = None) -> tuple[Future, int]:
        """Submit one task; returns ``(future, generation)``.

        Pass the generation back to :meth:`crashed` if the future raises
        :class:`BrokenProcessPool`, so concurrent observers of one crash
        trigger exactly one rebuild.

        ``trace_context`` (a :meth:`TraceContext.to_dict` payload) ships
        span context across the pickle boundary: the task runs under a
        collecting tracer in the worker and the future resolves to a
        :class:`TracedResult` instead of the bare value.
        """
        if trace_context is not None:
            args = (dict(trace_context), fn, *args)
            fn = _traced_trampoline
        with self._lock:
            if self._executor is None:
                raise RuntimeError("pool is shut down")
            try:
                future = self._executor.submit(fn, *args)
            except BrokenProcessPool:
                # The previous crash was never reported (e.g. its observer
                # died); rebuild inline and submit to the fresh pool.
                self._rebuild_locked()
                future = self._executor.submit(fn, *args)
            generation = self._generation
        with self._count_lock:
            self.tasks_submitted += 1
        future.add_done_callback(self._task_done)
        return future, generation

    def _task_done(self, future: Future) -> None:
        with self._count_lock:
            if future.cancelled():
                self.tasks_cancelled += 1
            else:
                self.tasks_completed += 1

    def rebuild_count(self) -> int:
        """Pool rebuilds so far, read under the pool lock."""
        with self._lock:
            return self.rebuilds

    def task_counts(self) -> dict:
        """Lifetime task-flow counters (the ``/stats`` executor block)."""
        with self._count_lock:
            return {
                "tasks_submitted": self.tasks_submitted,
                "tasks_completed": self.tasks_completed,
                "tasks_cancelled": self.tasks_cancelled,
            }

    def crashed(self, generation: int) -> bool:
        """Record a crash observed under ``generation``; rebuild once.

        Returns ``True`` when this call performed the rebuild, ``False``
        when another observer of the same crash already did.
        """
        with self._lock:
            self.crashes += 1
            if self._executor is None or generation != self._generation:
                return False
            self._rebuild_locked()
            return True

    def _rebuild_locked(self) -> None:
        old = self._executor
        self._executor = self._make()
        self._generation += 1
        self.rebuilds += 1
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)

    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (spawned lazily on first use)."""
        with self._lock:
            if self._executor is None:
                return []
            procs = getattr(self._executor, "_processes", None) or {}
            return [p.pid for p in procs.values() if p.pid is not None]

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=wait, cancel_futures=True)
                self._executor = None


def make_executor(kind: str = "serial", workers: int | None = 4) -> BaseExecutor:
    """Factory: ``"serial"``, ``"thread"`` or ``"process"``.

    ``workers`` sizes the thread/process pool and defaults to 4 (serial
    executors ignore it).  ``None`` and non-positive values request one
    worker per core — ``os.cpu_count()`` via :func:`resolve_workers` — so
    service configurations can say "auto" without probing the host
    themselves.  Non-integer values raise :class:`TypeError`.
    """
    workers = resolve_workers(workers)
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(workers)
    if kind == "process":
        return ProcessExecutor(workers)
    raise ValueError(f"unknown executor kind {kind!r}")
