"""Cancel-aware task executors.

The one primitive FRaZ's orchestration needs (Algorithm 2) is: run a batch
of independent tasks, observe completions as they happen, and *cancel
everything not yet started* once a completion satisfies the objective.
:meth:`BaseExecutor.run_cancellable` provides exactly that; passing
``stop_when=None`` degrades to a plain unordered map (used for the
parallel-by-field loop, Algorithm 3).

Backends:

* :class:`SerialExecutor` — in-process, deterministic order; the default.
* :class:`ThreadExecutor` — ``ThreadPoolExecutor``; NumPy-heavy tasks
  release the GIL for part of their runtime.
* :class:`ProcessExecutor` — ``ProcessPoolExecutor``; true parallelism;
  task callables and payloads must be picklable (all compressor
  configurations in this package are frozen dataclasses, by design).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from typing import Any, Callable, Sequence

__all__ = [
    "BaseExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "resolve_workers",
]


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count request into a concrete pool size.

    ``None`` and every non-positive integer mean "use all available cores"
    (``os.cpu_count()``, or 1 when the platform cannot report it) — that is
    what long-lived services pass so one config works on any host.  Anything
    that is not an integer is rejected with a clear error rather than being
    truncated or coerced.
    """
    if workers is None:
        return os.cpu_count() or 1
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise TypeError(
            f"workers must be an int or None, got {type(workers).__name__} {workers!r}"
        )
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


class BaseExecutor(ABC):
    """Uniform interface over serial/thread/process execution."""

    #: Whether tasks see the caller's objects (serial/thread) or pickled
    #: copies (process pools).  Orchestrators use this to decide if shared
    #: state — e.g. the evaluation cache — needs an explicit merge step.
    shares_memory: bool = True

    @abstractmethod
    def run_cancellable(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        stop_when: Callable[[Any], bool] | None = None,
    ) -> list[tuple[int, Any]]:
        """Run ``fn`` over all payloads; stop early when a result satisfies
        ``stop_when``.

        Returns ``(index, result)`` pairs for every task that *completed*
        (tasks cancelled before starting are absent).  Exceptions raised by
        tasks propagate.
        """

    def map_all(self, fn: Callable[[Any], Any], payloads: Sequence[Any]) -> list[Any]:
        """Run everything to completion; results in payload order."""
        pairs = self.run_cancellable(fn, payloads, stop_when=None)
        out: list[Any] = [None] * len(payloads)
        for idx, res in pairs:
            out[idx] = res
        return out


class SerialExecutor(BaseExecutor):
    """In-order, in-process execution (deterministic reference backend)."""

    def run_cancellable(self, fn, payloads, stop_when=None):
        results: list[tuple[int, Any]] = []
        for idx, payload in enumerate(payloads):
            res = fn(payload)
            results.append((idx, res))
            if stop_when is not None and stop_when(res):
                break
        return results


class _PoolExecutor(BaseExecutor):
    """Shared futures-based implementation for thread/process pools."""

    _pool_cls: type

    def __init__(self, workers: int | None = 4) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if not isinstance(workers, int) or isinstance(workers, bool):
            raise TypeError(
                f"workers must be an int or None, got {type(workers).__name__} {workers!r}"
            )
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def run_cancellable(self, fn, payloads, stop_when=None):
        results: list[tuple[int, Any]] = []
        with self._pool_cls(max_workers=self.workers) as pool:
            futures = {pool.submit(fn, p): i for i, p in enumerate(payloads)}
            pending = set(futures)
            satisfied = False
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    res = fut.result()
                    results.append((futures[fut], res))
                    if stop_when is not None and stop_when(res):
                        satisfied = True
                if satisfied:
                    # Cancel everything not yet started; tasks already
                    # running finish and their results are kept.
                    for fut in pending:
                        fut.cancel()
                    still_running = {f for f in pending if not f.cancelled()}
                    for fut in still_running:
                        res = fut.result()
                        results.append((futures[fut], res))
                    break
        results.sort(key=lambda pair: pair[0])
        return results


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend."""

    _pool_cls = ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """Process-pool backend (payloads must be picklable)."""

    _pool_cls = ProcessPoolExecutor
    shares_memory = False


def make_executor(kind: str = "serial", workers: int | None = 4) -> BaseExecutor:
    """Factory: ``"serial"``, ``"thread"`` or ``"process"``.

    ``workers`` sizes the thread/process pool and defaults to 4 (serial
    executors ignore it).  ``None`` and non-positive values request one
    worker per core — ``os.cpu_count()`` via :func:`resolve_workers` — so
    service configurations can say "auto" without probing the host
    themselves.  Non-integer values raise :class:`TypeError`.
    """
    workers = resolve_workers(workers)
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(workers)
    if kind == "process":
        return ProcessExecutor(workers)
    raise ValueError(f"unknown executor kind {kind!r}")
