"""DEFLATE byte codec backed by the standard library.

The paper's SZ builds call out to Gzip (DEFLATE) or Zstd for the stage-4
dictionary pass; Python's bundled :mod:`zlib` *is* DEFLATE, so this backend
is the faithful default.  The from-scratch alternative lives in
:mod:`repro.codecs.lz77`.
"""

from __future__ import annotations

import zlib

from repro.codecs.interface import ByteCodec, register_byte_codec

__all__ = ["ZlibCodec"]


@register_byte_codec
class ZlibCodec(ByteCodec):
    """Stdlib DEFLATE with configurable level (default 6, zlib's default)."""

    name = "zlib"

    def __init__(self, level: int = 6) -> None:
        if not -1 <= level <= 9:
            raise ValueError(f"zlib level must be in [-1, 9], got {level}")
        self.level = level

    def compress(self, data: bytes) -> bytes:
        # Deflate's working state is ~(1 << (wbits + 2)) + (1 << (memLevel
        # + 9)) bytes — ~384 KB at the 15/8 defaults, which dwarfs small
        # inputs (the streaming layer compresses many small chunks under a
        # memory cap).  A window already covering the whole input loses no
        # compression, so scale both down to the input size; decompression
        # is unaffected (a 15-bit inflate window accepts any smaller one).
        wbits = min(15, max(9, len(data).bit_length()))
        mem_level = min(8, max(1, len(data).bit_length() - 8))
        obj = zlib.compressobj(self.level, zlib.DEFLATED, wbits, mem_level)
        return obj.compress(data) + obj.flush()

    def decompress(self, data: bytes) -> bytes:
        return zlib.decompress(data)
