"""Common interface for byte-oriented lossless codecs.

SZ's stage 4 (dictionary encoding) and the payload framing in ZFP/MGARD all
operate on opaque byte strings.  :class:`ByteCodec` is the minimal contract;
implementations register themselves by name so compressor options can select
the backend (``"zlib"`` — stdlib DEFLATE, the default — or ``"lz77"`` — the
from-scratch reference coder).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["ByteCodec", "register_byte_codec", "get_byte_codec", "list_byte_codecs"]

_REGISTRY: dict[str, type["ByteCodec"]] = {}


class ByteCodec(ABC):
    """Lossless bytes -> bytes codec with exact round-trip."""

    #: registry key; subclasses set this
    name: str = ""

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress ``data``; must round-trip via :meth:`decompress`."""

    @abstractmethod
    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`."""


def register_byte_codec(cls: type[ByteCodec]) -> type[ByteCodec]:
    """Class decorator adding a codec to the registry under ``cls.name``."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty 'name'")
    _REGISTRY[cls.name] = cls
    return cls


def get_byte_codec(name: str, **kwargs) -> ByteCodec:
    """Instantiate a registered codec by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown byte codec {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)


def list_byte_codecs() -> list[str]:
    """Names of all registered codecs."""
    return sorted(_REGISTRY)
