"""LEB128 variable-length integers and zigzag signed mapping.

Used for serialising headers, Huffman tables and block metadata where values
are small but occasionally large.  Encoding/decoding loop per *value group*,
not per byte, and all zigzag math is vectorised.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "encode_uvarint",
    "decode_uvarint",
    "encode_uvarints",
    "decode_uvarints",
    "zigzag_encode",
    "zigzag_decode",
]


def encode_uvarint(value: int) -> bytes:
    """Encode one unsigned integer as LEB128."""
    if value < 0:
        raise ValueError("uvarint requires a non-negative value")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode one LEB128 integer; returns (value, next offset)."""
    value = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated uvarint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def encode_uvarints(values: np.ndarray) -> bytes:
    """Encode an array of unsigned integers as concatenated LEB128."""
    values = np.asarray(values, dtype=np.uint64).ravel()
    out = bytearray()
    for v in values.tolist():
        while True:
            byte = v & 0x7F
            v >>= 7
            if v:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def decode_uvarints(data: bytes, count: int, offset: int = 0) -> tuple[np.ndarray, int]:
    """Decode ``count`` LEB128 integers; returns (uint64 array, next offset)."""
    out = np.empty(count, dtype=np.uint64)
    pos = offset
    for i in range(count):
        value = 0
        shift = 0
        while True:
            if pos >= len(data):
                raise ValueError("truncated uvarint stream")
            byte = data[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        out[i] = value
    return out, pos


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed int64 -> unsigned uint64 with small-magnitude bias.

    0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...
    """
    values = np.asarray(values, dtype=np.int64)
    return ((values << 1) ^ (values >> 63)).astype(np.uint64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`zigzag_encode`."""
    values = np.asarray(values, dtype=np.uint64)
    return ((values >> np.uint64(1)).astype(np.int64)) ^ -(values & np.uint64(1)).astype(
        np.int64
    )
