"""Framed multi-section payload container.

Every lossy compressor in this package emits several independent byte
sections (header, predictor metadata, entropy payload, literals, ...).  The
container frames them with names and lengths so decompressors can address
sections directly, and so payload-size accounting (compression-ratio
measurement, the quantity FRaZ optimises) is exact and auditable.

Layout::

    magic "FRZC" | version u8 | section count (uvarint)
    per section: name length (uvarint) | name utf-8 | payload length (uvarint)
    concatenated payloads
"""

from __future__ import annotations

from repro.codecs.varint import decode_uvarint, encode_uvarint

__all__ = ["Container"]

_MAGIC = b"FRZC"
_VERSION = 1


class Container:
    """Ordered mapping of named byte sections with exact serialisation."""

    def __init__(self) -> None:
        self._sections: dict[str, bytes] = {}

    def add(self, name: str, payload: bytes) -> None:
        """Add a section; names must be unique."""
        if name in self._sections:
            raise KeyError(f"duplicate section {name!r}")
        self._sections[name] = bytes(payload)

    def get(self, name: str) -> bytes:
        """Fetch a section by name."""
        return self._sections[name]

    def __contains__(self, name: str) -> bool:
        return name in self._sections

    def names(self) -> list[str]:
        return list(self._sections)

    def nbytes(self) -> int:
        """Serialised size in bytes (frame overhead included)."""
        return len(self.tobytes())

    def tobytes(self) -> bytes:
        parts = [_MAGIC, bytes([_VERSION]), encode_uvarint(len(self._sections))]
        for name, payload in self._sections.items():
            encoded = name.encode("utf-8")
            parts.append(encode_uvarint(len(encoded)))
            parts.append(encoded)
            parts.append(encode_uvarint(len(payload)))
        parts.extend(self._sections.values())
        return b"".join(parts)

    @classmethod
    def frombytes(cls, blob: bytes) -> "Container":
        if blob[:4] != _MAGIC:
            raise ValueError("not a FRZC container")
        if blob[4] != _VERSION:
            raise ValueError(f"unsupported container version {blob[4]}")
        count, off = decode_uvarint(blob, 5)
        names: list[str] = []
        sizes: list[int] = []
        for _ in range(count):
            nlen, off = decode_uvarint(blob, off)
            names.append(blob[off : off + nlen].decode("utf-8"))
            off += nlen
            plen, off = decode_uvarint(blob, off)
            sizes.append(plen)
        out = cls()
        for name, size in zip(names, sizes):
            out._sections[name] = blob[off : off + size]
            off += size
        if off != len(blob):
            raise ValueError("container has trailing bytes")
        return out
