"""Framed multi-section payload containers.

Every lossy compressor in this package emits several independent byte
sections (header, predictor metadata, entropy payload, literals, ...).  The
container frames them with names and lengths so decompressors can address
sections directly, and so payload-size accounting (compression-ratio
measurement, the quantity FRaZ optimises) is exact and auditable.

Two layouts share the ``FRZC`` magic and differ by version byte:

**Version 1** — :class:`Container`, fully in memory.  All section names
and lengths are known before serialisation, so the header is up front::

    magic "FRZC" | version u8 = 1 | section count (uvarint)
    per section: name length (uvarint) | name utf-8 | payload length (uvarint)
    concatenated payloads

**Version 2** — :class:`ContainerWriter` / :class:`ContainerReader`, file
backed and *streamed*: sections are appended one at a time (the writer
never holds more than the section being written), and a JSON index plus a
fixed-size footer land at the end so readers seek straight to any section
without scanning — the layout behind out-of-core chunked compression
(:mod:`repro.stream`)::

    magic "FRZC" | version u8 = 2
    per section: name length (uvarint) | name utf-8
                 | payload length (uvarint) | payload
    index section (reserved name "\\x00index",
                   JSON {name: [payload offset, length]})
    footer: index section offset (u64 LE) | magic "FRZE"
"""

from __future__ import annotations

import io
import json
import os
import struct
from pathlib import Path
from typing import BinaryIO

from repro.codecs.varint import decode_uvarint, encode_uvarint

__all__ = ["Container", "ContainerWriter", "ContainerReader", "is_streamed_container"]

_MAGIC = b"FRZC"
_VERSION = 1
_STREAM_VERSION = 2
_INDEX_NAME = "\x00index"
_FOOTER_MAGIC = b"FRZE"
_FOOTER_STRUCT = struct.Struct("<Q4s")  # index section offset, footer magic


class Container:
    """Ordered mapping of named byte sections with exact serialisation."""

    def __init__(self) -> None:
        self._sections: dict[str, bytes] = {}

    def add(self, name: str, payload: bytes) -> None:
        """Add a section; names must be unique."""
        if name in self._sections:
            raise KeyError(f"duplicate section {name!r}")
        self._sections[name] = bytes(payload)

    def get(self, name: str) -> bytes:
        """Fetch a section by name."""
        return self._sections[name]

    def __contains__(self, name: str) -> bool:
        return name in self._sections

    def names(self) -> list[str]:
        return list(self._sections)

    def nbytes(self) -> int:
        """Serialised size in bytes (frame overhead included)."""
        return len(self.tobytes())

    def tobytes(self) -> bytes:
        parts = [_MAGIC, bytes([_VERSION]), encode_uvarint(len(self._sections))]
        for name, payload in self._sections.items():
            encoded = name.encode("utf-8")
            parts.append(encode_uvarint(len(encoded)))
            parts.append(encoded)
            parts.append(encode_uvarint(len(payload)))
        parts.extend(self._sections.values())
        return b"".join(parts)

    @classmethod
    def frombytes(cls, blob: bytes) -> "Container":
        if blob[:4] != _MAGIC:
            raise ValueError("not a FRZC container")
        if blob[4] != _VERSION:
            raise ValueError(f"unsupported container version {blob[4]}")
        count, off = decode_uvarint(blob, 5)
        names: list[str] = []
        sizes: list[int] = []
        for _ in range(count):
            nlen, off = decode_uvarint(blob, off)
            names.append(blob[off : off + nlen].decode("utf-8"))
            off += nlen
            plen, off = decode_uvarint(blob, off)
            sizes.append(plen)
        out = cls()
        for name, size in zip(names, sizes):
            out._sections[name] = blob[off : off + size]
            off += size
        if off != len(blob):
            raise ValueError("container has trailing bytes")
        return out


def is_streamed_container(path: str | os.PathLike) -> bool:
    """Whether ``path`` holds a version-2 (streamed) container."""
    try:
        with open(path, "rb") as fh:
            head = fh.read(5)
    except OSError:
        return False
    return head[:4] == _MAGIC and len(head) == 5 and head[4] == _STREAM_VERSION


def _write_frame_header(fh: BinaryIO, name: str, payload_len: int) -> None:
    encoded = name.encode("utf-8")
    fh.write(encode_uvarint(len(encoded)))
    fh.write(encoded)
    fh.write(encode_uvarint(payload_len))


class ContainerWriter:
    """Append-only, file-backed container (version 2).

    Sections are flushed to disk as they are added, so peak memory is one
    section regardless of how many the file ends up holding.  The index and
    footer are written by :meth:`close` (or on context-manager exit); a file
    whose writer died before ``close`` has no footer and is rejected by
    :class:`ContainerReader`.

    Usage::

        with ContainerWriter(path) as w:
            w.add("meta", meta_bytes)
            w.add("chunk:0", payload0)
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = Path(path)
        self._fh: BinaryIO | None = open(self._path, "wb")
        self._index: dict[str, tuple[int, int]] = {}
        self._fh.write(_MAGIC)
        self._fh.write(bytes([_STREAM_VERSION]))

    def add(self, name: str, payload: bytes) -> None:
        """Append one section; names must be unique and not reserved."""
        if self._fh is None:
            raise ValueError("writer is closed")
        if name in self._index:
            raise KeyError(f"duplicate section {name!r}")
        if name.startswith("\x00"):
            raise ValueError(f"section names starting with NUL are reserved: {name!r}")
        payload = bytes(payload)
        _write_frame_header(self._fh, name, len(payload))
        offset = self._fh.tell()
        self._fh.write(payload)
        # Flush per section: the writer's contract is that added payloads
        # are on disk, so peak memory never includes buffered sections.
        self._fh.flush()
        self._index[name] = (offset, len(payload))

    def names(self) -> list[str]:
        return list(self._index)

    def tell(self) -> int:
        """Bytes written so far (payload accounting for ratio reports)."""
        if self._fh is None:
            return self._path.stat().st_size
        return self._fh.tell()

    def close(self) -> None:
        """Write the index + footer and close the file (idempotent)."""
        if self._fh is None:
            return
        index_blob = json.dumps(
            {name: [off, length] for name, (off, length) in self._index.items()}
        ).encode("utf-8")
        _write_frame_header(self._fh, _INDEX_NAME, len(index_blob))
        index_offset = self._fh.tell()
        self._fh.write(index_blob)
        self._fh.write(_FOOTER_STRUCT.pack(index_offset, _FOOTER_MAGIC))
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "ContainerWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ContainerReader:
    """Random-access reader for version-2 (streamed) containers.

    Only the index lives in memory; :meth:`get` seeks directly to the
    requested section, so decompressing one chunk of a huge file reads
    just that chunk's bytes.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = Path(path)
        self._fh: BinaryIO | None = open(self._path, "rb")
        try:
            head = self._fh.read(5)
            if head[:4] != _MAGIC:
                raise ValueError("not a FRZC container")
            if len(head) < 5 or head[4] != _STREAM_VERSION:
                raise ValueError(
                    f"not a streamed container (version "
                    f"{head[4] if len(head) == 5 else '?'}, expected "
                    f"{_STREAM_VERSION}); use Container.frombytes for version 1"
                )
            if self._fh.seek(0, io.SEEK_END) < 5 + _FOOTER_STRUCT.size:
                raise ValueError("streamed container has no footer (truncated write?)")
            self._fh.seek(-_FOOTER_STRUCT.size, io.SEEK_END)
            index_offset, magic = _FOOTER_STRUCT.unpack(self._fh.read(_FOOTER_STRUCT.size))
            if magic != _FOOTER_MAGIC:
                raise ValueError("streamed container has no footer (truncated write?)")
            end = self._fh.seek(0, io.SEEK_END) - _FOOTER_STRUCT.size
            self._fh.seek(index_offset)
            self._index: dict[str, tuple[int, int]] = {
                name: (int(off), int(length))
                for name, (off, length) in json.loads(
                    self._fh.read(end - index_offset).decode("utf-8")
                ).items()
            }
        except BaseException:
            self.close()  # a rejected container must not leak its fh
            raise

    def names(self) -> list[str]:
        return list(self._index)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def length(self, name: str) -> int:
        """Payload size of one section without reading it."""
        return self._index[name][1]

    def get(self, name: str) -> bytes:
        """Read one section's payload (a single seek + read)."""
        if self._fh is None:
            raise ValueError("reader is closed")
        offset, length = self._index[name]
        self._fh.seek(offset)
        return self._fh.read(length)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ContainerReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
