"""Lossless coding substrate used by the lossy compressors.

This package provides, from scratch, the lossless building blocks that the
compressors in :mod:`repro.sz`, :mod:`repro.zfp` and :mod:`repro.mgard` are
built on:

* :mod:`repro.codecs.bitstream` — vectorised variable-length bit packing and
  a cursor-based bit reader.
* :mod:`repro.codecs.huffman` — canonical, length-limited Huffman coding for
  integer symbol streams (SZ stage 3).
* :mod:`repro.codecs.lz77` — a from-scratch LZ77 dictionary coder (SZ stage 4
  reference implementation).
* :mod:`repro.codecs.zlib_codec` — a DEFLATE (stdlib ``zlib``) backend with
  the same interface; this is the Gzip the paper's SZ build links against.
* :mod:`repro.codecs.varint` — LEB128 / zigzag integer coding for headers.
* :mod:`repro.codecs.rle` — byte-level run-length coding.
* :mod:`repro.codecs.container` — a tiny framed container for multi-section
  compressed payloads.

All codecs are deterministic and round-trip exactly; this is enforced by
property-based tests in ``tests/codecs``.
"""

from repro.codecs.bitstream import BitReader, BitWriter, pack_bits, unpack_bits
from repro.codecs.container import Container
from repro.codecs.huffman import HuffmanCodec
from repro.codecs.interface import ByteCodec, get_byte_codec, register_byte_codec
from repro.codecs.lz77 import LZ77Codec
from repro.codecs.rle import rle_decode, rle_encode
from repro.codecs.varint import (
    decode_uvarint,
    decode_uvarints,
    encode_uvarint,
    encode_uvarints,
    zigzag_decode,
    zigzag_encode,
)
from repro.codecs.zlib_codec import ZlibCodec

__all__ = [
    "BitReader",
    "BitWriter",
    "ByteCodec",
    "Container",
    "HuffmanCodec",
    "LZ77Codec",
    "ZlibCodec",
    "decode_uvarint",
    "decode_uvarints",
    "encode_uvarint",
    "encode_uvarints",
    "get_byte_codec",
    "pack_bits",
    "register_byte_codec",
    "rle_decode",
    "rle_encode",
    "unpack_bits",
    "zigzag_decode",
    "zigzag_encode",
]
