"""Vectorised bit-level I/O.

The compressors need two access patterns:

* **packing many variable-length codes** (Huffman codewords, ZFP bit planes):
  done wholesale with :func:`pack_bits`, which turns per-symbol
  ``(code, length)`` arrays into a packed byte string using cumulative-sum
  indexing and :func:`numpy.packbits` — no per-symbol Python loop.
* **cursor-style reads/writes of fixed-width fields** (headers, block
  metadata): done with :class:`BitWriter` / :class:`BitReader`.

Bits are packed MSB-first: the first bit written is the most significant bit
of the first byte, matching the convention of DEFLATE-style canonical Huffman
tables and making hexdumps readable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_bits", "unpack_bits", "BitReader", "BitWriter"]

_MAX_CODE_BITS = 57
# ``sliding_window_view``-based peeking in BitReader uses a uint64 dot
# product; 57 bits keeps every intermediate exactly representable.


def pack_bits(codes: np.ndarray, lengths: np.ndarray) -> bytes:
    """Pack variable-length codes into bytes, MSB-first.

    Parameters
    ----------
    codes:
        Unsigned integer array; only the low ``lengths[i]`` bits of
        ``codes[i]`` are emitted.
    lengths:
        Bit length of each code, in ``[0, 57]``.  Zero-length entries emit
        nothing.

    Returns
    -------
    bytes
        ``ceil(sum(lengths) / 8)`` bytes; trailing pad bits are zero.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if codes.shape != lengths.shape:
        raise ValueError(f"codes {codes.shape} and lengths {lengths.shape} differ")
    if codes.ndim != 1:
        codes = codes.ravel()
        lengths = lengths.ravel()
    if lengths.size == 0:
        return b""
    if lengths.min() < 0 or lengths.max() > _MAX_CODE_BITS:
        raise ValueError(f"lengths must be in [0, {_MAX_CODE_BITS}]")

    total_bits = int(lengths.sum())
    if total_bits == 0:
        return b""

    # Scatter one bit *position* at a time (<= max code length iterations)
    # rather than materialising per-output-bit index arrays: transients stay
    # a few words per symbol instead of ~32 bytes per output bit, which is
    # what lets memory-capped streaming compress small chunks cheaply.
    starts = np.cumsum(lengths) - lengths
    bits = np.zeros(total_bits, dtype=np.uint8)
    for p in range(int(lengths.max())):
        mask = lengths > p
        shift = (lengths[mask] - 1 - p).astype(np.uint64)
        bits[starts[mask] + p] = (codes[mask] >> shift) & np.uint64(1)
    return np.packbits(bits).tobytes()


def unpack_bits(data: bytes, nbits: int | None = None) -> np.ndarray:
    """Inverse of :func:`pack_bits`: bytes -> uint8 array of 0/1 bits.

    ``nbits`` truncates trailing pad bits when the logical bit count is known.
    """
    bits = np.unpackbits(np.frombuffer(data, dtype=np.uint8))
    if nbits is not None:
        if nbits > bits.size:
            raise ValueError(f"requested {nbits} bits but payload has {bits.size}")
        bits = bits[:nbits]
    return bits


class BitWriter:
    """Accumulates fixed-width fields and flushes them vectorised.

    Writes are buffered as ``(value, nbits)`` pairs; :meth:`getvalue` performs
    a single :func:`pack_bits` call.  This keeps header construction readable
    without paying a per-field packing cost.
    """

    def __init__(self) -> None:
        self._values: list[int] = []
        self._widths: list[int] = []
        self._nbits = 0

    def __len__(self) -> int:
        """Number of bits written so far."""
        return self._nbits

    def write(self, value: int, nbits: int) -> None:
        """Append the low ``nbits`` bits of ``value``."""
        if nbits < 0 or nbits > _MAX_CODE_BITS:
            raise ValueError(f"nbits must be in [0, {_MAX_CODE_BITS}], got {nbits}")
        if value < 0:
            raise ValueError("BitWriter.write takes unsigned values; zigzag first")
        if nbits == 0:
            return
        self._values.append(value & ((1 << nbits) - 1))
        self._widths.append(nbits)
        self._nbits += nbits

    def write_array(self, values: np.ndarray, nbits: int) -> None:
        """Append each element of ``values`` as an ``nbits``-wide field."""
        values = np.asarray(values, dtype=np.uint64).ravel()
        mask = np.uint64((1 << nbits) - 1) if nbits < 64 else np.uint64(2**64 - 1)
        self._values.extend(int(v) for v in (values & mask))
        self._widths.extend([nbits] * values.size)
        self._nbits += nbits * values.size

    def write_codes(self, codes: np.ndarray, lengths: np.ndarray) -> None:
        """Append pre-computed variable-length codes (vectorised path)."""
        codes = np.asarray(codes, dtype=np.uint64).ravel()
        lengths = np.asarray(lengths, dtype=np.int64).ravel()
        self._values.extend(int(v) for v in codes)
        self._widths.extend(int(w) for w in lengths)
        self._nbits += int(lengths.sum())

    def getvalue(self) -> bytes:
        """Pack all buffered fields into bytes."""
        if not self._values:
            return b""
        return pack_bits(
            np.asarray(self._values, dtype=np.uint64),
            np.asarray(self._widths, dtype=np.int64),
        )


class BitReader:
    """Cursor-based reader over a packed bit string.

    Builds the unpacked 0/1 bit array once; fixed-width vector reads are then
    pure reshape/dot operations.  ``peek``/``read`` of scalar fields are used
    only for headers, never in per-datum loops.
    """

    def __init__(self, data: bytes, nbits: int | None = None) -> None:
        self._bits = unpack_bits(data, nbits)
        self._pos = 0

    @property
    def pos(self) -> int:
        """Current bit offset."""
        return self._pos

    @property
    def remaining(self) -> int:
        """Bits left to read."""
        return self._bits.size - self._pos

    def bits(self) -> np.ndarray:
        """The raw 0/1 bit array (read-only view)."""
        return self._bits

    def seek(self, pos: int) -> None:
        if pos < 0 or pos > self._bits.size:
            raise ValueError(f"seek target {pos} outside [0, {self._bits.size}]")
        self._pos = pos

    def read(self, nbits: int) -> int:
        """Read one ``nbits``-wide unsigned field."""
        if nbits == 0:
            return 0
        end = self._pos + nbits
        if end > self._bits.size:
            raise EOFError(f"read past end of bitstream ({end} > {self._bits.size})")
        chunk = self._bits[self._pos : end]
        self._pos = end
        value = 0
        for b in chunk.tolist():
            value = (value << 1) | b
        return value

    def read_array(self, count: int, nbits: int) -> np.ndarray:
        """Read ``count`` consecutive ``nbits``-wide unsigned fields, vectorised."""
        if nbits == 0:
            return np.zeros(count, dtype=np.uint64)
        if nbits > _MAX_CODE_BITS:
            raise ValueError(f"nbits must be <= {_MAX_CODE_BITS}")
        end = self._pos + count * nbits
        if end > self._bits.size:
            raise EOFError(f"read past end of bitstream ({end} > {self._bits.size})")
        chunk = self._bits[self._pos : end].reshape(count, nbits).astype(np.uint64)
        self._pos = end
        weights = np.uint64(1) << np.arange(nbits - 1, -1, -1, dtype=np.uint64)
        return chunk @ weights
