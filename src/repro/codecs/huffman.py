"""Canonical, length-limited Huffman coding for integer symbol streams.

This is SZ's stage-3 entropy coder (Sec. II-A1 of the paper): quantization
codes are small integers with a highly skewed distribution, and a Huffman
code customised to that distribution captures most of the redundancy.

Implementation notes
--------------------
* Code lengths come from the classic two-queue/heap Huffman construction on
  symbol frequencies.  If the deepest code exceeds :data:`MAX_CODE_LEN`, the
  frequency table is repeatedly halved (``(f + 1) // 2``) and the tree
  rebuilt — a standard, always-terminating length-limiting device (each
  halving flattens the distribution toward uniform, whose depth is
  ``ceil(log2(m))``).
* Codes are *canonical*: ordered by (length, symbol), so only the lengths and
  the symbol list need to be serialised.
* Encoding is fully vectorised through :func:`repro.codecs.bitstream.pack_bits`.
* Decoding is table-driven: a ``2**maxlen`` lookup table maps every possible
  ``maxlen``-bit window to (symbol, code length).  The per-symbol decode loop
  advances a cursor through a precomputed sliding-window array, the only
  Python-level loop on the decompression path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.codecs.bitstream import pack_bits, unpack_bits
from repro.codecs.varint import (
    decode_uvarints,
    encode_uvarints,
    zigzag_decode,
    zigzag_encode,
)

__all__ = ["HuffmanCodec", "HuffmanTable", "MAX_CODE_LEN", "code_lengths"]

MAX_CODE_LEN = 16
"""Maximum codeword length; keeps the decode table at 2**16 entries."""


def code_lengths(freqs: np.ndarray, max_len: int = MAX_CODE_LEN) -> np.ndarray:
    """Compute Huffman code lengths for positive frequencies.

    Parameters
    ----------
    freqs:
        Positive integer frequency per distinct symbol.
    max_len:
        Length limit; the frequency table is halved until respected.

    Returns
    -------
    numpy.ndarray
        int64 code length per symbol.  A single-symbol alphabet gets length 1
        (a degenerate but decodable code).
    """
    freqs = np.asarray(freqs, dtype=np.int64)
    if freqs.size == 0:
        return np.zeros(0, dtype=np.int64)
    if np.any(freqs <= 0):
        raise ValueError("all frequencies must be positive")
    if freqs.size == 1:
        return np.ones(1, dtype=np.int64)
    if freqs.size > (1 << max_len):
        raise ValueError(
            f"{freqs.size} symbols cannot fit in {max_len}-bit codes"
        )

    work = freqs.copy()
    while True:
        lengths = _huffman_depths(work)
        if lengths.max() <= max_len:
            return lengths
        work = (work + 1) // 2


def _huffman_depths(freqs: np.ndarray) -> np.ndarray:
    """Tree depths from the heap-based Huffman construction."""
    n = freqs.size
    # Heap entries: (weight, tiebreak, node id). Node ids < n are leaves.
    heap: list[tuple[int, int, int]] = [
        (int(f), i, i) for i, f in enumerate(freqs)
    ]
    heapq.heapify(heap)
    parent = np.full(2 * n - 1, -1, dtype=np.int64)
    next_id = n
    tiebreak = n
    while len(heap) > 1:
        w1, _, a = heapq.heappop(heap)
        w2, _, b = heapq.heappop(heap)
        parent[a] = next_id
        parent[b] = next_id
        heapq.heappush(heap, (w1 + w2, tiebreak, next_id))
        next_id += 1
        tiebreak += 1

    depths = np.zeros(n, dtype=np.int64)
    # Depth of each internal node, computed root-down (ids increase toward
    # the root, so a reverse sweep sees parents before children).
    node_depth = np.zeros(2 * n - 1, dtype=np.int64)
    for node in range(2 * n - 3, -1, -1):
        node_depth[node] = node_depth[parent[node]] + 1
    depths[:] = node_depth[:n]
    return depths


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical codewords given code lengths.

    Symbols are implicitly ordered as given; ties in length are broken by
    position, matching :class:`HuffmanTable` serialisation (symbols are
    stored sorted).
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    order = np.lexsort((np.arange(lengths.size), lengths))
    codes = np.zeros(lengths.size, dtype=np.uint64)
    code = 0
    prev_len = 0
    for idx in order:
        length = int(lengths[idx])
        code <<= length - prev_len
        codes[idx] = code
        code += 1
        prev_len = length
    return codes


@dataclass(frozen=True)
class HuffmanTable:
    """A canonical Huffman code over a set of integer symbols."""

    symbols: np.ndarray  # int64, sorted ascending
    lengths: np.ndarray  # int64, aligned with symbols
    codes: np.ndarray  # uint64, canonical

    @classmethod
    def from_symbols(cls, data: np.ndarray, max_len: int = MAX_CODE_LEN) -> "HuffmanTable":
        """Build a table from the empirical distribution of ``data``."""
        symbols, counts = np.unique(np.asarray(data, dtype=np.int64), return_counts=True)
        lengths = code_lengths(counts, max_len)
        return cls(symbols=symbols, lengths=lengths, codes=canonical_codes(lengths))

    @property
    def max_length(self) -> int:
        return int(self.lengths.max()) if self.lengths.size else 0

    def expected_bits(self, counts: np.ndarray) -> int:
        """Total payload bits for the given per-symbol counts."""
        return int((np.asarray(counts, dtype=np.int64) * self.lengths).sum())

    def serialize(self) -> bytes:
        """Serialise as (m, zigzag-delta symbols, lengths) varints."""
        deltas = np.diff(self.symbols, prepend=np.int64(0))
        parts = [
            encode_uvarints(np.asarray([self.symbols.size], dtype=np.uint64)),
            encode_uvarints(zigzag_encode(deltas)),
            encode_uvarints(self.lengths.astype(np.uint64)),
        ]
        return b"".join(parts)

    @classmethod
    def deserialize(cls, data: bytes) -> tuple["HuffmanTable", int]:
        """Parse a serialised table; returns (table, bytes consumed)."""
        (m,), off = decode_uvarints(data, 1, 0)
        deltas, off = decode_uvarints(data, int(m), off)
        symbols = np.cumsum(zigzag_decode(deltas))
        raw_lengths, off = decode_uvarints(data, int(m), off)
        lengths = raw_lengths.astype(np.int64)
        return (
            cls(symbols=symbols, lengths=lengths, codes=canonical_codes(lengths)),
            off,
        )

    def build_decode_table(self) -> tuple[np.ndarray, np.ndarray, int]:
        """Dense window -> (symbol index, length) lookup arrays."""
        maxlen = self.max_length
        size = 1 << maxlen
        table_sym = np.zeros(size, dtype=np.int64)
        table_len = np.zeros(size, dtype=np.int64)
        for i in range(self.symbols.size):
            length = int(self.lengths[i])
            prefix = int(self.codes[i]) << (maxlen - length)
            span = 1 << (maxlen - length)
            table_sym[prefix : prefix + span] = i
            table_len[prefix : prefix + span] = length
        return table_sym, table_len, maxlen


class HuffmanCodec:
    """Encode/decode int64 symbol streams with a canonical Huffman code.

    The payload layout is::

        [table bytes][8-byte big-endian symbol count][packed code bits]
    """

    def __init__(self, max_len: int = MAX_CODE_LEN) -> None:
        self.max_len = max_len

    def encode(self, data: np.ndarray) -> bytes:
        """Compress an integer array; round-trips exactly via :meth:`decode`."""
        data = np.asarray(data, dtype=np.int64).ravel()
        if data.size == 0:
            return b"\x00" * 8
        table = HuffmanTable.from_symbols(data, self.max_len)
        index = np.searchsorted(table.symbols, data)
        payload = pack_bits(table.codes[index], table.lengths[index])
        return table.serialize() + data.size.to_bytes(8, "big") + payload

    def decode(self, blob: bytes) -> np.ndarray:
        """Decompress a payload produced by :meth:`encode`."""
        if len(blob) == 8 and blob == b"\x00" * 8:
            return np.zeros(0, dtype=np.int64)
        table, off = HuffmanTable.deserialize(blob)
        count = int.from_bytes(blob[off : off + 8], "big")
        bits = unpack_bits(blob[off + 8 :])
        return self._decode_bits(table, bits, count)

    @staticmethod
    def _decode_bits(table: HuffmanTable, bits: np.ndarray, count: int) -> np.ndarray:
        table_sym, table_len, maxlen = table.build_decode_table()
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        if table.symbols.size == 1:
            # Degenerate single-symbol stream.
            return np.full(count, table.symbols[0], dtype=np.int64)

        # Sliding maxlen-bit window value at every bit offset -> O(1) peeks.
        padded = np.concatenate([bits, np.zeros(maxlen, dtype=bits.dtype)])
        windows = np.lib.stride_tricks.sliding_window_view(padded, maxlen)
        weights = (np.uint64(1) << np.arange(maxlen - 1, -1, -1, dtype=np.uint64))
        win_vals = windows.astype(np.uint64) @ weights

        out = np.empty(count, dtype=np.int64)
        sym_idx = np.empty(count, dtype=np.int64)
        pos = 0
        wv = win_vals  # local aliases: this loop is the decode hot path
        ts = table_sym
        tl = table_len
        for i in range(count):
            w = wv[pos]
            sym_idx[i] = ts[w]
            pos += tl[w]
        out[:] = table.symbols[sym_idx]
        if pos > bits.size:
            raise ValueError("Huffman payload truncated")
        return out
