"""From-scratch LZ77 dictionary coder.

This is the reference implementation of SZ's stage-4 "dictionary encoder"
(the paper's builds link Gzip or Zstd; see docs/COMPRESSORS.md for the
substitution notes).  The default SZ pipeline uses the stdlib-``zlib`` backend for speed;
this module exists so the substrate is genuinely built, is covered by the
same property tests, and can be selected with
``make_compressor("sz", dict_codec="lz77")``.

Format
------
A token stream with two token kinds, preceded by a varint original length:

* literal run: ``0`` flag bit, varint run length, raw bytes;
* match: ``1`` flag bit, varint (length - MIN_MATCH), varint distance.

Matching uses a hash table over 4-byte windows with bounded chain probing —
the classic hash-chain greedy parser.  The encoder loop advances by whole
matches, so throughput scales with compressibility; it is intentionally not
the hot path of the default pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.interface import ByteCodec, register_byte_codec
from repro.codecs.varint import decode_uvarint, encode_uvarint

__all__ = ["LZ77Codec", "lz77_compress", "lz77_decompress"]

MIN_MATCH = 4
MAX_MATCH = 1 << 16
WINDOW = 1 << 16
_HASH_BITS = 15


def _hash4(data: bytes, pos: int) -> int:
    """Multiplicative hash of the 4 bytes at ``pos``."""
    v = int.from_bytes(data[pos : pos + 4], "little")
    return (v * 2654435761) >> (32 - _HASH_BITS) & ((1 << _HASH_BITS) - 1)


def lz77_compress(data: bytes, max_probes: int = 16) -> bytes:
    """Compress ``data``; see module docstring for the format."""
    n = len(data)
    out = bytearray(encode_uvarint(n))
    if n == 0:
        return bytes(out)

    head: dict[int, list[int]] = {}
    literal_start = 0
    pos = 0

    def flush_literals(end: int) -> None:
        if end > literal_start:
            run = data[literal_start:end]
            out.append(0)
            out.extend(encode_uvarint(len(run)))
            out.extend(run)

    while pos < n:
        best_len = 0
        best_dist = 0
        if pos + MIN_MATCH <= n:
            h = _hash4(data, pos)
            chain = head.get(h)
            if chain:
                lo = pos - WINDOW
                probes = 0
                for cand in reversed(chain):
                    if cand < lo:
                        break
                    probes += 1
                    if probes > max_probes:
                        break
                    # Extend the match as far as it goes.
                    length = 0
                    limit = min(n - pos, MAX_MATCH)
                    while length < limit and data[cand + length] == data[pos + length]:
                        length += 1
                    if length > best_len:
                        best_len = length
                        best_dist = pos - cand
                        if length >= 64:
                            break
            chain = head.setdefault(h, [])
            chain.append(pos)
            if len(chain) > 64:
                del chain[:32]

        if best_len >= MIN_MATCH:
            flush_literals(pos)
            out.append(1)
            out += encode_uvarint(best_len - MIN_MATCH)
            out += encode_uvarint(best_dist)
            # Index a sparse sample of positions inside the match so later
            # repeats can still be found without hashing every byte.
            step = max(1, best_len // 8)
            for p in range(pos + 1, min(pos + best_len, n - MIN_MATCH + 1), step):
                head.setdefault(_hash4(data, p), []).append(p)
            pos += best_len
            literal_start = pos
        else:
            pos += 1

    flush_literals(n)
    return bytes(out)


def lz77_decompress(blob: bytes) -> bytes:
    """Invert :func:`lz77_compress`."""
    n, off = decode_uvarint(blob, 0)
    out = bytearray()
    while len(out) < n:
        if off >= len(blob):
            raise ValueError("truncated LZ77 stream")
        flag = blob[off]
        off += 1
        if flag == 0:
            run, off = decode_uvarint(blob, off)
            out += blob[off : off + run]
            off += run
        elif flag == 1:
            length, off = decode_uvarint(blob, off)
            length += MIN_MATCH
            dist, off = decode_uvarint(blob, off)
            if dist <= 0 or dist > len(out):
                raise ValueError(f"invalid match distance {dist}")
            start = len(out) - dist
            if dist >= length:
                out += out[start : start + length]
            else:
                # Overlapping copy (RLE-style), byte at a time.
                for i in range(length):
                    out.append(out[start + i])
        else:
            raise ValueError(f"invalid token flag {flag}")
    if len(out) != n:
        raise ValueError("LZ77 output length mismatch")
    return bytes(out)


@register_byte_codec
class LZ77Codec(ByteCodec):
    """ByteCodec wrapper around :func:`lz77_compress`."""

    name = "lz77"

    def __init__(self, max_probes: int = 16) -> None:
        self.max_probes = max_probes

    def compress(self, data: bytes) -> bytes:
        return lz77_compress(data, self.max_probes)

    def decompress(self, data: bytes) -> bytes:
        return lz77_decompress(data)
