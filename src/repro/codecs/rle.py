"""Vectorised run-length coding for byte arrays.

Used for sparse sign/flag planes where long zero runs dominate.  Runs are
found with a single :func:`numpy.flatnonzero` over the change mask; no
per-element Python loop.
"""

from __future__ import annotations

import numpy as np

from repro.codecs.varint import decode_uvarints, encode_uvarints

__all__ = ["rle_encode", "rle_decode"]


def rle_encode(data: np.ndarray) -> bytes:
    """Encode a uint8 array as (count, [value, run-length]*count) varints."""
    data = np.asarray(data, dtype=np.uint8).ravel()
    if data.size == 0:
        return encode_uvarints(np.zeros(1, dtype=np.uint64))
    change = np.flatnonzero(np.diff(data)) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [data.size]))
    values = data[starts].astype(np.uint64)
    runs = (ends - starts).astype(np.uint64)
    header = encode_uvarints(np.asarray([values.size], dtype=np.uint64))
    interleaved = np.empty(2 * values.size, dtype=np.uint64)
    interleaved[0::2] = values
    interleaved[1::2] = runs
    return header + encode_uvarints(interleaved)


def rle_decode(blob: bytes) -> np.ndarray:
    """Invert :func:`rle_encode`."""
    (count,), off = decode_uvarints(blob, 1, 0)
    if count == 0:
        return np.zeros(0, dtype=np.uint8)
    interleaved, _ = decode_uvarints(blob, 2 * int(count), off)
    values = interleaved[0::2].astype(np.uint8)
    runs = interleaved[1::2].astype(np.int64)
    return np.repeat(values, runs)
