"""Job scheduler: workers, request coalescing, shared cache, stream routing.

The :class:`Scheduler` is the resident core of the compression service.
It owns

* a bounded priority :class:`~repro.serve.queue.JobQueue` (backpressure
  propagates out of :meth:`submit` as
  :class:`~repro.serve.queue.QueueFull`),
* a pool of worker threads that pop jobs and run them through the
  existing layers — :class:`~repro.core.fraz.FRaZ` for tunes and
  in-memory compressions, :func:`repro.stream.pipeline.stream_compress`
  for inputs too large to hold (routing is automatic past
  ``stream_threshold`` bytes),
* one :class:`~repro.cache.EvalCache` shared by *every* job, so probes
  paid by one request answer later requests for free, and
* a **coalescing registry**: a request whose
  :meth:`~repro.serve.jobs.JobSpec.coalesce_key` matches a job that is
  currently queued or running never enters the queue — it attaches to
  that primary job and receives the same result when it completes.
  Coalescing is the request-level analogue of the cache (which
  deduplicates *sequential* identical work): it deduplicates
  *concurrent* identical work before any of it runs, and coalesced
  requests consume no queue capacity, so duplicate bursts cannot trip
  backpressure.

Intra-job parallelism (the region fan-out inside a search, the chunk
batches of a streamed compression) goes through the existing
:mod:`repro.parallel.executor` backends, configured once per scheduler.

``pause()``/``resume()`` gate the workers without touching the queue —
operators use it to drain, tests use it to make coalescing windows
deterministic.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.cache.evalcache import EvalCache
from repro.core.fraz import FRaZ
from repro.io.files import save_field
from repro.parallel.executor import make_executor, resolve_workers
from repro.pressio.registry import make_compressor
from repro.serve import schema
from repro.serve.jobs import Job, JobSpec, JobState
from repro.serve.queue import JobQueue, QueueFull  # noqa: F401  (re-exported)
from repro.stream.pipeline import stream_compress

__all__ = ["Scheduler", "SchedulerStats", "DEFAULT_STREAM_THRESHOLD"]

#: Inputs larger than this are routed through the out-of-core pipeline
#: unless the spec says otherwise (32 MiB: comfortably in-memory below,
#: worth chunked compression above).
DEFAULT_STREAM_THRESHOLD = 32 * 2**20


@dataclass
class SchedulerStats:
    """Service-level counters (jobs and search probes)."""

    submitted: int = 0
    coalesced: int = 0
    completed: int = 0
    failed: int = 0
    retried: int = 0
    cancelled: int = 0
    running: int = 0
    streamed: int = 0
    evaluations: int = 0
    compressor_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def jobs_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "completed": self.completed,
            "failed": self.failed,
            "retried": self.retried,
            "cancelled": self.cancelled,
            "running": self.running,
            "streamed": self.streamed,
        }

    def search_dict(self) -> dict:
        return {
            "evaluations": self.evaluations,
            "compressor_calls": self.compressor_calls,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


class Scheduler:
    """Resident job scheduler over the FRaZ/stream/cache layers.

    Parameters
    ----------
    workers:
        Concurrent jobs; ``None``/``<= 0`` means one per core (see
        :func:`repro.parallel.executor.resolve_workers`).
    queue_size:
        Bound on undispatched jobs; beyond it :meth:`submit` raises
        :class:`~repro.serve.queue.QueueFull` (backpressure).
    cache:
        ``True`` (default) builds one shared :class:`EvalCache`;
        ``False`` disables caching; an instance is used as-is.
    cache_dir:
        Persistent tier for the auto-built cache; written on
        :meth:`close`.
    intra_executor, intra_workers:
        Backend for the fan-out *inside* one job (search regions, chunk
        batches): ``"serial"`` (default — job-level concurrency already
        comes from ``workers``), ``"thread"`` or ``"process"``.
    stream_threshold:
        File inputs larger than this many bytes are compressed out of
        core via :func:`~repro.stream.pipeline.stream_compress`.
    max_memory:
        Optional per-job working-set cap forwarded to the stream
        pipeline's chunk planner.
    history:
        Finished jobs kept addressable for ``/status``/``/result``;
        older records are dropped to keep the registry bounded.
    paused:
        Start with workers gated; call :meth:`resume` to begin draining.
    """

    def __init__(
        self,
        workers: int | None = None,
        queue_size: int = 64,
        cache: EvalCache | bool = True,
        cache_dir: str | None = None,
        intra_executor: str = "serial",
        intra_workers: int | None = 1,
        stream_threshold: int = DEFAULT_STREAM_THRESHOLD,
        max_memory: int | None = None,
        seed: int = 0,
        history: int = 1024,
        paused: bool = False,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.seed = seed
        self.stream_threshold = int(stream_threshold)
        self.max_memory = max_memory
        self.intra_workers = resolve_workers(intra_workers)
        self._intra = make_executor(intra_executor, self.intra_workers)
        if isinstance(cache, EvalCache):
            self._cache: EvalCache | None = cache
        elif cache:
            self._cache = EvalCache(cache_dir=cache_dir)
        else:
            self._cache = None
        self.stats = SchedulerStats()
        self._queue = JobQueue(maxsize=queue_size)
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._history: deque[str] = deque()
        self._history_limit = max(1, int(history))
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._gate = threading.Event()
        if not paused:
            self._gate.set()
        self._threads: list[threading.Thread] = []
        self._started_at = time.time()

    # -- lifecycle ---------------------------------------------------------
    @property
    def cache(self) -> EvalCache | None:
        """The shared evaluation cache (``None`` when disabled)."""
        return self._cache

    @property
    def paused(self) -> bool:
        return not self._gate.is_set()

    def start(self) -> "Scheduler":
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return self
        self._stop.clear()
        self._started_at = time.time()
        for i in range(self.workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    def pause(self) -> None:
        """Gate the workers; queued jobs wait, running jobs finish."""
        self._gate.clear()

    def resume(self) -> None:
        self._gate.set()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the workers; jobs still queued stay queued (unfinished)."""
        self._stop.set()
        self._gate.set()
        for t in self._threads:
            t.join(timeout)
        self._threads.clear()

    def close(self) -> None:
        """Stop and persist the cache's disk tier, if it has one."""
        self.stop()
        if self._cache is not None and self._cache.cache_dir is not None:
            self._cache.save()

    def __enter__(self) -> "Scheduler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission --------------------------------------------------------
    def submit(self, spec: JobSpec | dict) -> Job:
        """Admit one job: coalesce, or enqueue (raising on backpressure).

        Returns the tracked :class:`Job`.  A coalesced job reports the
        primary's id in ``coalesced_into`` and finishes when it does.
        """
        if isinstance(spec, dict):
            spec = JobSpec.from_dict(spec)
        key = spec.coalesce_key()
        with self._lock:
            if self._stop.is_set() and not self._threads:
                raise RuntimeError("scheduler is stopped")
            job_id = f"j{next(self._ids):06d}"
            primary = self._inflight.get(key)
            if primary is not None and not primary.finished:
                job = Job(id=job_id, spec=spec, coalesced_into=primary.id)
                primary.followers.append(job)
                self._jobs[job_id] = job
                self.stats.submitted += 1
                self.stats.coalesced += 1
                return job
            job = Job(id=job_id, spec=spec)
            self._queue.put(job)  # raises QueueFull before any registration
            self._inflight[key] = job
            self._jobs[job_id] = job
            self.stats.submitted += 1
            return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until ``job_id`` finishes; returns the job record."""
        job = self.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        if not job.wait(timeout):
            raise TimeoutError(f"job {job_id} still {job.state.value} after {timeout}s")
        return job

    def drain(self, timeout: float = 60.0, poll: float = 0.01) -> None:
        """Block until the queue is empty and no job is running."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                idle = len(self._queue) == 0 and self.stats.running == 0
            if idle:
                return
            time.sleep(poll)
        raise TimeoutError(f"jobs still pending after {timeout}s")

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not started; running jobs are not stopped.

        Cancelling a primary also cancels its coalesced followers (they
        were waiting on exactly the work being cancelled).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.finished or job.state is JobState.RUNNING:
                return False
            if job.coalesced_into is not None:
                primary = self._jobs.get(job.coalesced_into)
                if primary is not None and job in primary.followers:
                    primary.followers.remove(job)
                self._cancel_one(job)
                return True
            for follower in job.followers[:]:
                self._cancel_one(follower)
            job.followers.clear()
            self._drop_inflight(job)
            self._cancel_one(job)
            return True

    def _cancel_one(self, job: Job) -> None:
        job._finish(JobState.CANCELLED)
        self.stats.cancelled += 1
        self._remember(job)

    # -- worker side -------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            if not self._gate.wait(timeout=0.05):
                continue
            job = self._queue.get(timeout=0.1)
            if job is None:
                continue
            if self.paused and not self._stop.is_set():
                # Raced a pause: put it back rather than running gated work.
                self._queue.put(job, force=True)
                time.sleep(0.01)
                continue
            self._run(job)

    def _run(self, job: Job) -> None:
        with self._lock:
            if job.state is JobState.CANCELLED:
                return
            job.state = JobState.RUNNING
            job.attempts += 1
            if job.started_at is None:
                job.started_at = time.time()
            self.stats.running += 1
        try:
            result, evals, calls, streamed = self._execute(job)
        except Exception as exc:  # noqa: BLE001 — jobs must not kill workers
            with self._lock:
                self.stats.running -= 1
                if job.attempts <= job.spec.max_retries and not self._stop.is_set():
                    self.stats.retried += 1
                    job.state = JobState.QUEUED
                    self._queue.put(job, force=True)
                    return
            self._finish(job, JobState.FAILED, error=f"{type(exc).__name__}: {exc}")
            return
        with self._lock:
            self.stats.running -= 1
            self.stats.evaluations += evals
            self.stats.compressor_calls += calls
            self.stats.cache_hits += evals - calls
            self.stats.cache_misses += calls
            if streamed:
                self.stats.streamed += 1
        self._finish(job, JobState.DONE, result=result)

    def _finish(self, job: Job, state: JobState, *, result: dict | None = None,
                error: str | None = None) -> None:
        with self._lock:
            self._drop_inflight(job)
            followers = job.followers[:]
            job.followers.clear()
            job._finish(state, result=result, error=error)
            self._remember(job)
            done = state is JobState.DONE
            self.stats.completed += 1 if done else 0
            self.stats.failed += 0 if done else 1
            for follower in followers:
                follower.started_at = job.started_at
                follower._finish(state, result=result, error=error)
                self._remember(follower)
                self.stats.completed += 1 if done else 0
                self.stats.failed += 0 if done else 1

    def _drop_inflight(self, job: Job) -> None:
        key = job.spec.coalesce_key()
        if self._inflight.get(key) is job:
            del self._inflight[key]

    def _remember(self, job: Job) -> None:
        """Bound the finished-job registry to the history limit."""
        self._history.append(job.id)
        while len(self._history) > self._history_limit:
            old = self._history.popleft()
            stale = self._jobs.get(old)
            if stale is not None and stale.finished:
                del self._jobs[old]

    # -- execution ---------------------------------------------------------
    def _job_cache(self) -> EvalCache | bool:
        return self._cache if self._cache is not None else False

    def _make_fraz(self, spec: JobSpec) -> FRaZ:
        return FRaZ(
            compressor=spec.compressor,
            target_ratio=spec.target_ratio if spec.target_ratio is not None else 10.0,
            tolerance=spec.tolerance,
            max_error_bound=spec.max_error_bound,
            executor=self._intra,
            seed=self.seed,
            cache=self._job_cache(),
        )

    def _route_stream(self, spec: JobSpec) -> bool:
        if spec.stream is not None:
            return spec.stream
        if spec.kind != "compress" or spec.input is None:
            return False
        try:
            return os.path.getsize(spec.input) > self.stream_threshold
        except OSError:
            return False

    def _execute(self, job: Job) -> tuple[dict, int, int, bool]:
        """Run one job; returns ``(result, evaluations, compressor_calls,
        streamed)``.  Exceptions propagate to the retry logic."""
        spec = job.spec
        if spec.kind == "compress" and self._route_stream(spec):
            result = stream_compress(
                spec.input,
                spec.output,
                compressor=spec.compressor,
                target_ratio=spec.target_ratio,
                error_bound=spec.error_bound,
                tolerance=spec.tolerance,
                max_error_bound=spec.max_error_bound,
                max_memory=self.max_memory,
                workers=self.intra_workers,
                executor=self._intra,
                seed=self.seed,
                cache=self._job_cache(),
            )
            payload = schema.stream_payload(result, compressor=spec.compressor,
                                            input=spec.input)
            return payload, result.evaluations, result.cache_misses, True

        data = spec.load_array()
        if spec.kind == "tune":
            result = self._make_fraz(spec).tune(data)
            payload = schema.tune_payload(
                result, compressor=spec.compressor, input=spec.input,
                max_error_bound=spec.max_error_bound,
            )
            return payload, result.evaluations, result.compressor_calls, False

        # compress, in memory
        t0 = time.perf_counter()
        if spec.error_bound is not None:
            configured = make_compressor(spec.compressor, error_bound=spec.error_bound)
            field = save_field(spec.output, data, configured)
            payload = schema.compress_payload(
                field, compressor=spec.compressor, error_bound=spec.error_bound,
                output=spec.output, input=spec.input,
                wall_seconds=time.perf_counter() - t0,
            )
            return payload, 0, 0, False
        fraz = self._make_fraz(spec)
        field, result = fraz.compress(data)
        configured = make_compressor(spec.compressor, error_bound=result.error_bound)
        save_field(spec.output, field, configured,
                   metadata={"target_ratio": spec.target_ratio,
                             "feasible": result.feasible})
        payload = schema.compress_payload(
            field, compressor=spec.compressor, error_bound=result.error_bound,
            output=spec.output, input=spec.input,
            tuning=schema.tune_payload(
                result, compressor=spec.compressor, input=spec.input,
                max_error_bound=spec.max_error_bound,
            ),
            wall_seconds=time.perf_counter() - t0,
        )
        return payload, result.evaluations, result.compressor_calls, False

    # -- introspection -----------------------------------------------------
    def stats_payload(self) -> dict:
        """JSON-ready service statistics (the ``/stats`` body)."""
        with self._lock:
            payload = {
                "uptime_seconds": round(time.time() - self._started_at, 3),
                "workers": self.workers,
                "paused": self.paused,
                "queue": self._queue.stats_dict(),
                "jobs": self.stats.jobs_dict(),
                "search": self.stats.search_dict(),
                "cache": None,
            }
            if self._cache is not None:
                payload["cache"] = {"entries": len(self._cache),
                                    **self._cache.stats.as_dict()}
            return payload
