"""Job scheduler: workers, request coalescing, shared cache, stream routing.

The :class:`Scheduler` is the resident core of the compression service.
It owns

* a bounded priority :class:`~repro.serve.queue.JobQueue` (backpressure
  propagates out of :meth:`submit` as
  :class:`~repro.serve.queue.QueueFull`),
* a pool of dispatcher threads that pop jobs and run them through the
  unified request API — each spec's
  :class:`~repro.api.request.CompressionRequest` goes through
  :func:`repro.api.plan` (which applies the scheduler's configured
  ``stream_threshold`` to route in-memory vs. out-of-core) and
  :func:`repro.api.execute` (FRaZ for tunes and in-memory compressions,
  :func:`repro.stream.pipeline.stream_compress` for inputs too large to
  hold, the ``.frz``/``.frzs`` readers for decompressions),
* an **execution backend**: ``executor="thread"`` runs jobs on the
  dispatcher threads themselves (the pre-existing model — fine when jobs
  are tiny or NumPy releases the GIL), while ``executor="process"``
  ships each job's :class:`~repro.serve.jobs.JobSpec` to a resident
  :class:`~repro.parallel.executor.ProcessJobPool` so CPU-bound tune
  jobs scale across cores instead of serialising on the GIL.  The
  default ``"auto"`` picks ``process`` on multi-core hosts,
* one :class:`~repro.cache.EvalCache` shared by *every* job, so probes
  paid by one request answer later requests for free.  Process workers
  receive the parent's entry snapshot with each job and return only the
  delta they probed (:meth:`~repro.cache.EvalCache.drain_new_entries`),
  which the parent folds back in — deterministic regardless of
  completion order because entries are pure functions of their key, and
* a **coalescing registry**: a request whose
  :meth:`~repro.serve.jobs.JobSpec.coalesce_key` matches a job that is
  currently queued or running never enters the queue — it attaches to
  that primary job and receives the same result when it completes.

**Crash recovery** (process backend): a worker process dying mid-job
surfaces as ``BrokenProcessPool`` on every in-flight future.  Each
affected job spends one unit of its retry budget and re-enters the queue
through the bound-exempt path (``force=True``); the pool is rebuilt once
per crash; the failure is visible in ``/stats`` (``executor.worker_crashes``,
``executor.pool_rebuilds``) and on the job record (``crashes``).

**Cancellation**: queued jobs cancel in place (and the queue compacts —
see :meth:`~repro.serve.queue.JobQueue.cancelled`).  Under the process
backend a *running* job can be cancelled too: the pool future is
cancelled if it has not started, otherwise the job is *tombstoned* — the
worker process finishes its computation but the scheduler discards the
result on return (``executor.discarded_results`` counts those).

Oversized inline arrays (``data_b64`` beyond ``spill_threshold``) are
not pickled through the pool pipe: the scheduler spills them to a
temporary ``.npy`` and dispatches the job as a file-input spec, riding
the existing file/stream path.

``pause()``/``resume()`` gate the workers without touching the queue —
operators use it to drain, tests use it to make coalescing windows
deterministic.
"""

from __future__ import annotations

import copy
import itertools
import os
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import CancelledError, Future
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace

import numpy as np

from repro import __version__
from repro.api.execute import execute as execute_request
from repro.api.plan import DEFAULT_STREAM_THRESHOLD, plan as plan_request
from repro.api.report import stage_timings
from repro.cache.evalcache import CacheEntry, EvalCache
from repro.errors import (
    JobTimeoutError,
    RequestError,
    SchedulerStoppedError,
    StateError,
    UnknownJobError,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanStore, TraceContext, Tracer, current_span
from repro.obs.tracelog import TraceLogger
from repro.parallel.executor import (
    BaseExecutor,
    ProcessJobPool,
    TracedResult,
    WorkerCrashError,
    make_executor,
    resolve_workers,
)
from repro.serve import schema
from repro.serve.jobs import Job, JobSpec, JobState
from repro.serve.queue import JobQueue, QueueFull  # noqa: F401  (re-exported)
from repro.util.concurrency import guarded_by

__all__ = [
    "Scheduler",
    "SchedulerStats",
    "DEFAULT_STREAM_THRESHOLD",
    "DEFAULT_SPILL_THRESHOLD",
    "resolve_executor_mode",
]

#: Inline (``data_b64``) arrays whose *decoded* size exceeds this many
#: bytes are spilled to a temporary ``.npy`` before process-pool dispatch
#: instead of being pickled through the pool pipe.
DEFAULT_SPILL_THRESHOLD = 8 * 2**20

_EXECUTOR_MODES = ("auto", "thread", "process")


def resolve_executor_mode(executor: str | None) -> str:
    """Normalise the job-execution backend request to thread/process.

    ``"auto"`` (and ``None``) picks ``"process"`` whenever the host has
    more than one core — that is where thread execution stops scaling,
    because the GIL serialises the CPU-bound parts of the probe loop —
    and ``"thread"`` on single-core hosts, where process dispatch would
    pay pickling for no parallelism.
    """
    if executor is None:
        executor = "auto"
    if executor not in _EXECUTOR_MODES:
        raise RequestError(
            f"executor must be one of {_EXECUTOR_MODES}, got {executor!r}"
        )
    if executor == "auto":
        return "process" if (os.cpu_count() or 1) > 1 else "thread"
    return executor


# ---------------------------------------------------------------------------
# Job execution, shared by the thread backend (dispatcher threads call it
# directly) and the process backend (pool workers call it through the
# module-level trampoline below — module-level so it pickles by name).
# ---------------------------------------------------------------------------

def _execute_spec(
    spec: JobSpec,
    *,
    cache: EvalCache | None,
    executor: BaseExecutor,
    intra_workers: int,
    stream_threshold: int,
    max_memory: int | None,
    seed: int,
) -> tuple[dict, int, int, bool]:
    """Run one spec; returns ``(result, evaluations, compressor_calls,
    streamed)``.  Exceptions propagate to the caller's retry logic.

    The whole body is a call into the unified request API: the spec *is*
    a :class:`~repro.api.request.CompressionRequest` plus scheduling
    fields, :func:`repro.api.plan` applies the scheduler's configured
    stream threshold, and :func:`repro.api.execute` runs the plan with
    the scheduler's shared cache and intra-job executor as fallbacks for
    whatever the request's own resource block leaves unset.
    """
    pl = plan_request(spec.request, stream_threshold=stream_threshold)
    report = execute_request(
        pl,
        cache=cache if cache is not None else False,
        executor=executor,
        workers=intra_workers,
        max_memory=max_memory,
        seed=seed,
    )
    evaluations, compressor_calls = report.counters
    return report.to_dict(), evaluations, compressor_calls, pl.route == "stream"


#: Per-worker-process runtime (cache + intra executor), set up once by the
#: pool initializer and reused across every job the process serves.
_WORKER_RUNTIME: dict | None = None


def _process_worker_init(
    cache_enabled: bool,
    cache_maxsize: int | None,
    intra_kind: str,
    intra_workers: int,
    stream_threshold: int,
    max_memory: int | None,
    seed: int,
) -> None:
    global _WORKER_RUNTIME
    _WORKER_RUNTIME = {
        "cache": EvalCache(maxsize=cache_maxsize) if cache_enabled else None,
        "executor": make_executor(intra_kind, intra_workers),
        "intra_workers": intra_workers,
        "stream_threshold": stream_threshold,
        "max_memory": max_memory,
        "seed": seed,
    }


def _process_execute(
    spec: JobSpec, snapshot: dict[str, CacheEntry] | None
) -> tuple[dict, int, int, bool, dict[str, CacheEntry] | None]:
    """Pool trampoline: run one job inside a resident worker process.

    ``snapshot`` is the parent cache's entry snapshot; it is merged into
    the worker's long-lived cache so this job hits everything any earlier
    job (in any process) already paid for.  Only the *delta* — entries
    this job probed cold — rides back, keeping the return payload small.
    """
    runtime = _WORKER_RUNTIME
    if runtime is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("worker process used before initialization")
    cache: EvalCache | None = runtime["cache"]
    if cache is not None:
        cache.merge_entries(snapshot)
        cache.drain_new_entries()  # the parent already owns the snapshot
    payload, evals, calls, streamed = _execute_spec(
        spec,
        cache=cache,
        executor=runtime["executor"],
        intra_workers=runtime["intra_workers"],
        stream_threshold=runtime["stream_threshold"],
        max_memory=runtime["max_memory"],
        seed=runtime["seed"],
    )
    delta = cache.drain_new_entries() if cache is not None else None
    return payload, evals, calls, streamed, delta


@dataclass
class SchedulerStats:
    """Service-level counters (jobs and search probes)."""

    submitted: int = 0
    coalesced: int = 0
    completed: int = 0
    failed: int = 0
    retried: int = 0
    cancelled: int = 0
    running: int = 0
    streamed: int = 0
    crashes: int = 0
    discarded: int = 0
    evaluations: int = 0
    compressor_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def jobs_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "completed": self.completed,
            "failed": self.failed,
            "retried": self.retried,
            "cancelled": self.cancelled,
            "running": self.running,
            "streamed": self.streamed,
        }

    def search_dict(self) -> dict:
        return {
            "evaluations": self.evaluations,
            "compressor_calls": self.compressor_calls,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


@guarded_by("_lock", "_jobs", "_inflight", "_futures", "_history", "stats")
class Scheduler:
    """Resident job scheduler over the FRaZ/stream/cache layers.

    Parameters
    ----------
    workers:
        Concurrent jobs; ``None``/``<= 0`` means one per core (see
        :func:`repro.parallel.executor.resolve_workers`).
    queue_size:
        Bound on undispatched jobs; beyond it :meth:`submit` raises
        :class:`~repro.serve.queue.QueueFull` (backpressure).
    executor:
        Job execution backend: ``"thread"`` runs jobs on the dispatcher
        threads (shared memory, no pickling; GIL-bound), ``"process"``
        runs them in a resident process pool (true multi-core; specs and
        results cross a pickle boundary), ``"auto"`` (default) picks
        ``process`` when the host has more than one core.
    cache:
        ``True`` (default) builds one shared :class:`EvalCache`;
        ``False`` disables caching; an instance is used as-is.
    cache_dir:
        Persistent tier for the auto-built cache; written on
        :meth:`close`.
    intra_executor, intra_workers:
        Backend for the fan-out *inside* one job (search regions, chunk
        batches): ``"serial"`` (default — job-level concurrency already
        comes from ``workers``), ``"thread"`` or ``"process"``.
    stream_threshold:
        File inputs larger than this many bytes are compressed out of
        core via :func:`~repro.stream.pipeline.stream_compress`.
    spill_threshold:
        Inline (``data_b64``) arrays whose decoded size exceeds this many
        bytes are written to a temporary ``.npy`` before process-pool
        dispatch instead of being pickled through the pool pipe.
    max_memory:
        Optional per-job working-set cap forwarded to the stream
        pipeline's chunk planner.
    history:
        Finished jobs kept addressable for ``/status``/``/result``;
        older records are dropped to keep the registry bounded.
    paused:
        Start with workers gated; call :meth:`resume` to begin draining.
    metrics:
        ``True`` (default) builds a private
        :class:`~repro.obs.metrics.MetricsRegistry` and instruments the
        scheduler on it; an instance is used as-is (for embedding into a
        larger registry); ``False`` disables the observability layer —
        :meth:`metrics_text` then raises and ``/stats`` omits the
        ``metrics`` section.
    trace_sample:
        Head-based sampling rate in ``[0, 1]`` for traces rooted here
        (incoming ``traceparent`` contexts carry their own decision).
        ``0`` disables span recording on the hot path; failed jobs still
        leave a forced error span behind.
    trace_exemplars:
        How many slowest traces the span store protects from eviction
        (surfaced under ``trace.exemplars`` in ``/stats``).
    logger:
        A :class:`~repro.obs.tracelog.TraceLogger` for job lifecycle
        events stamped with ``trace_id``/``job_id``; ``None`` (default)
        logs nothing, matching the historical quiet scheduler.
    """

    def __init__(
        self,
        workers: int | None = None,
        queue_size: int = 64,
        executor: str = "auto",
        cache: EvalCache | bool = True,
        cache_dir: str | None = None,
        intra_executor: str = "serial",
        intra_workers: int | None = 1,
        stream_threshold: int = DEFAULT_STREAM_THRESHOLD,
        spill_threshold: int = DEFAULT_SPILL_THRESHOLD,
        max_memory: int | None = None,
        seed: int = 0,
        history: int = 1024,
        paused: bool = False,
        metrics: MetricsRegistry | bool = True,
        trace_sample: float = 1.0,
        trace_exemplars: int = 5,
        logger: TraceLogger | None = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        self.executor_mode = resolve_executor_mode(executor)
        self.seed = seed
        self.stream_threshold = int(stream_threshold)
        self.spill_threshold = int(spill_threshold)
        self.max_memory = max_memory
        self.intra_kind = intra_executor
        self.intra_workers = resolve_workers(intra_workers)
        self._intra = make_executor(intra_executor, self.intra_workers)
        if isinstance(cache, EvalCache):
            self._cache: EvalCache | None = cache
        elif cache:
            self._cache = EvalCache(cache_dir=cache_dir)
        else:
            self._cache = None
        self.stats = SchedulerStats()
        self._queue = JobQueue(maxsize=queue_size)
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._futures: dict[str, Future] = {}
        self._history: deque[str] = deque()
        self._history_limit = max(1, int(history))
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._gate = threading.Event()
        if not paused:
            self._gate.set()
        self._threads: list[threading.Thread] = []
        self._pool: ProcessJobPool | None = None
        self._finish_listeners: list = []
        self._started_at = time.time()
        self._started_mono = time.monotonic()
        if isinstance(metrics, MetricsRegistry):
            self.metrics: MetricsRegistry | None = metrics
        else:
            self.metrics = MetricsRegistry() if metrics else None
        # Tracing is always constructed (a Tracer with sample_rate 0 costs
        # one NullSpan per job); the sample rate is the on/off dial.
        self.tracer = Tracer(store=SpanStore(exemplars=trace_exemplars),
                             sample_rate=trace_sample)
        self.logger = logger if logger is not None else TraceLogger(
            "node", enabled=False)
        self._stage_seconds = None
        self._job_seconds = None
        if self.metrics is not None:
            self._build_metrics(self.metrics)

    # -- observability -----------------------------------------------------
    def _build_metrics(self, reg: MetricsRegistry) -> None:
        """Register the service's instrument panel on ``reg``.

        Counters and gauges are *callback-backed*: they read the same
        :class:`SchedulerStats`/queue/cache/pool numbers ``/stats``
        reports, so the two surfaces cannot drift apart and nothing is
        double-booked on the hot path.  Only the latency histograms are
        event-driven (an observation is information a counter cannot
        reconstruct), fed exclusively from monotonic-clock durations.
        """
        # Callback gauges take torn reads by design (monitoring may
        # observe mid-update values; registration happens before the
        # scheduler is shared).
        stats, queue = self.stats, self._queue  # repro: ignore[LOCK001]
        reg.gauge("build_info",
                  "Build metadata carried in labels (value is always 1)",
                  labels=("version",)).labels(version=__version__).set(1)
        reg.gauge("queue_depth", "Live (undispatched, uncancelled) queued jobs",
                  callback=lambda: len(queue))
        reg.gauge("queue_capacity", "Queue bound before 429 backpressure",
                  callback=lambda: queue.maxsize)
        reg.gauge("jobs_running", "Jobs currently executing",
                  callback=lambda: stats.running)
        reg.gauge("paused", "1 while the worker gate is closed",
                  callback=lambda: int(self.paused))
        reg.gauge("uptime_seconds", "Monotonic seconds since scheduler start",
                  callback=lambda: time.monotonic() - self._started_mono)
        for attr, help_text in (
            ("submitted", "Jobs admitted (including coalesced followers)"),
            ("coalesced", "Jobs attached to an identical in-flight computation"),
            ("completed", "Jobs finished successfully"),
            ("failed", "Jobs that exhausted their retry budget"),
            ("retried", "Re-enqueues after a failed attempt"),
            ("cancelled", "Jobs cancelled before completing"),
            ("streamed", "Jobs routed through the out-of-core pipeline"),
        ):
            reg.counter(f"jobs_{attr}_total", help_text,
                        callback=lambda a=attr: getattr(stats, a))
        reg.counter("queue_enqueued_total", "Jobs that entered the queue",
                    callback=lambda: queue.stats.enqueued)  # repro: ignore[SAN101] torn read by design
        reg.counter("queue_rejected_total", "Submissions refused with backpressure",
                    callback=lambda: queue.stats.rejected)  # repro: ignore[SAN101] torn read by design
        reg.counter("worker_crashes_total", "Attempts lost to a dying worker process",
                    callback=lambda: stats.crashes)
        reg.counter("discarded_results_total",
                    "Results thrown away because their job was tombstoned",
                    callback=lambda: stats.discarded)
        reg.counter("pool_rebuilds_total", "Process-pool reconstructions after crashes",
                    callback=lambda: self._pool.rebuilds if self._pool else 0)  # repro: ignore[SAN101] torn read by design
        for attr, name, help_text in (
            ("tasks_submitted", "pool_tasks_submitted_total",
             "Tasks shipped to the process pool"),
            ("tasks_completed", "pool_tasks_completed_total",
             "Pool tasks that ran to completion (or raised)"),
            ("tasks_cancelled", "pool_tasks_cancelled_total",
             "Pool tasks descheduled before starting"),
        ):
            reg.counter(name, help_text,
                        callback=lambda a=attr: getattr(self._pool, a) if self._pool else 0)  # repro: ignore[SAN101] torn read by design
        reg.counter("search_evaluations_total",
                    "Compressor evaluations requested by searches",
                    callback=lambda: stats.evaluations)
        reg.counter("compressor_calls_total",
                    "Compressor evaluations actually paid (cache misses)",
                    callback=lambda: stats.compressor_calls)
        reg.counter("cache_hits_total", "Search probes answered from the shared cache",
                    callback=lambda: stats.cache_hits)
        reg.counter("cache_misses_total", "Search probes that had to compress",
                    callback=lambda: stats.cache_misses)
        reg.gauge("coalesce_ratio", "Fraction of submitted jobs coalesced away",
                  callback=lambda: stats.coalesced / stats.submitted
                  if stats.submitted else 0.0)
        reg.gauge("cache_hit_ratio", "Fraction of search probes answered for free",
                  callback=lambda: stats.cache_hits / (stats.cache_hits + stats.cache_misses)
                  if (stats.cache_hits + stats.cache_misses) else 0.0)
        if self._cache is not None:
            cache = self._cache
            reg.gauge("evalcache_entries", "Entries resident in the shared cache",
                      callback=lambda: len(cache))
            for attr, kind in (("hits", "counter"), ("misses", "counter"),
                               ("stores", "counter"), ("evictions", "counter"),
                               ("seconds_saved", "counter")):
                register = reg.counter if kind == "counter" else reg.gauge
                register(f"evalcache_{attr}_total",
                         f"Shared-cache {attr.replace('_', ' ')} (parent-process view)",
                         callback=lambda a=attr: getattr(cache.stats, a))  # repro: ignore[SAN101] torn read by design
        self._stage_seconds = reg.histogram(
            "stage_seconds",
            "Per-stage latency: queue_wait/run from the scheduler's monotonic "
            "clock, train/search/encode/decode from report wall times",
            labels=("stage",),
        )
        self._job_seconds = reg.histogram(
            "job_seconds",
            "Client-visible submit-to-finish latency per request kind",
            labels=("kind",),
        )

    def _observe_stage(self, stage: str, seconds: float | None) -> None:
        if self._stage_seconds is not None and seconds is not None:
            self._stage_seconds.labels(stage=stage).observe(seconds)

    def _observe_job(self, job: Job) -> None:
        if self._job_seconds is not None and job.total_seconds is not None:
            self._job_seconds.labels(kind=job.spec.kind).observe(job.total_seconds)

    def metrics_text(self) -> str:
        """The Prometheus text exposition (the ``GET /metrics`` body)."""
        if self.metrics is None:
            raise StateError("scheduler was built with metrics disabled")
        return self.metrics.render()

    # -- lifecycle ---------------------------------------------------------
    @property
    def cache(self) -> EvalCache | None:
        """The shared evaluation cache (``None`` when disabled)."""
        return self._cache

    @property
    def paused(self) -> bool:
        return not self._gate.is_set()

    def start(self) -> "Scheduler":
        """Spawn the worker threads and (process mode) the pool (idempotent)."""
        if self._threads:
            return self
        self._stop.clear()
        self._started_at = time.time()
        self._started_mono = time.monotonic()
        if self.executor_mode == "process" and self._pool is None:
            self._pool = ProcessJobPool(
                self.workers,
                initializer=_process_worker_init,
                preload=(__name__,),  # fork workers with repro+numpy loaded
                initargs=(
                    self._cache is not None,
                    self._cache.maxsize if self._cache is not None else None,
                    self.intra_kind,
                    self.intra_workers,
                    self.stream_threshold,
                    self.max_memory,
                    self.seed,
                ),
            )
        for i in range(self.workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    def pause(self) -> None:
        """Gate the workers; queued jobs wait, running jobs finish."""
        self._gate.clear()

    def resume(self) -> None:
        self._gate.set()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the workers; jobs still queued stay queued (unfinished)."""
        self._stop.set()
        self._gate.set()
        for t in self._threads:
            t.join(timeout)
        self._threads.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def close(self) -> None:
        """Stop and persist the cache's disk tier, if it has one."""
        self.stop()
        if self._cache is not None and self._cache.cache_dir is not None:
            self._cache.save()

    def __enter__(self) -> "Scheduler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission --------------------------------------------------------
    def submit(self, spec: JobSpec | dict,
               trace_context: TraceContext | None = None) -> Job:
        """Admit one job: coalesce, or enqueue (raising on backpressure).

        Returns the tracked :class:`Job`.  A coalesced job reports the
        primary's id in ``coalesced_into`` and finishes when it does.

        ``trace_context`` continues an incoming trace (the extracted
        ``traceparent`` header); without one the tracer starts a fresh
        trace and makes the head sampling decision here.
        """
        if isinstance(spec, dict):
            spec = JobSpec.from_dict(spec)
        key = spec.coalesce_key()
        with self._lock:
            if self._stop.is_set() and not self._threads:
                raise SchedulerStoppedError
            job_id = f"j{next(self._ids):06d}"
            primary = self._inflight.get(key)
            if primary is not None and not primary.finished:
                job = Job(id=job_id, spec=spec, coalesced_into=primary.id)
                self._start_job_trace(job, trace_context)
                primary.followers.append(job)
                self._jobs[job_id] = job
                self.stats.submitted += 1
                self.stats.coalesced += 1
                self.logger.event("job_coalesced", trace_id=job.trace_id,
                                  job_id=job.id, primary=primary.id)
                return job
            job = Job(id=job_id, spec=spec)
            self._queue.put(job)  # raises QueueFull before any registration
            self._start_job_trace(job, trace_context)
            self._inflight[key] = job
            self._jobs[job_id] = job
            self.stats.submitted += 1
            self.logger.event("job_submitted", trace_id=job.trace_id,
                              job_id=job.id, kind=spec.kind)
            return job

    def _start_job_trace(self, job: Job, context: TraceContext | None) -> None:
        """Open the job's root span (one per job, followers included)."""
        root = self.tracer.start_trace(
            "job", context=context,
            attrs={"job_id": job.id, "kind": job.spec.kind})
        if root.is_recording and job.coalesced_into is not None:
            root.set_attr("coalesced_into", job.coalesced_into)
        job.trace_root = root
        job.trace_id = root.trace_id

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Snapshot of every job record the scheduler still remembers."""
        with self._lock:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until ``job_id`` finishes; returns the job record."""
        job = self.get(job_id)
        if job is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        if not job.wait(timeout):
            raise JobTimeoutError(
                f"job {job_id} still {job.state.value} after {timeout}s")
        return job

    def drain(self, timeout: float = 60.0, poll: float = 0.01) -> None:
        """Block until the queue is empty and no job is running."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                idle = len(self._queue) == 0 and self.stats.running == 0
            if idle:
                return
            time.sleep(poll)
        raise JobTimeoutError(f"jobs still pending after {timeout}s")

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job — or, on the process backend, a running one.

        Queued jobs are cancelled in place (the queue entry is skipped and
        eventually compacted).  A *running* job can only be cancelled when
        it executes in a worker process: the pool future is cancelled if
        it has not started yet, otherwise the job is tombstoned — the
        worker finishes its computation but the result is discarded on
        return.  Thread-backend running jobs cannot be stopped.

        Cancelling a primary also cancels its coalesced followers (they
        were waiting on exactly the work being cancelled).
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.finished:
                return False
            if job.coalesced_into is not None:
                primary = self._jobs.get(job.coalesced_into)
                if primary is not None and job in primary.followers:
                    primary.followers.remove(job)
                self._cancel_one_locked(job)
                return True
            if job.state is JobState.RUNNING:
                if self._pool is None:
                    return False  # thread backend: a running job must finish
                future = self._futures.get(job_id)
                if future is not None:
                    future.cancel()  # no-op if a worker already picked it up
                # No future yet means the dispatcher is between marking the
                # job RUNNING and submitting to the pool; the tombstone set
                # below makes _dispatch refuse the submission.
            for follower in job.followers[:]:
                self._cancel_one_locked(follower)
            job.followers.clear()
            self._drop_inflight_locked(job)
            was_queued = job.state is JobState.QUEUED
            self._cancel_one_locked(job)
            if was_queued:
                self._queue.cancelled(job)
            return True

    def _cancel_one_locked(self, job: Job) -> None:
        job._finish(JobState.CANCELLED)
        self.stats.cancelled += 1
        self._remember_locked(job)
        self._finish_job_trace(job)
        self._notify_finished([job])

    # -- worker side -------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            if not self._gate.wait(timeout=0.05):
                continue
            job = self._queue.get(timeout=0.1)
            if job is None:
                continue
            if self.paused and not self._stop.is_set():
                # Raced a pause: put it back rather than running gated work.
                self._queue.put(job, force=True)
                time.sleep(0.01)
                continue
            self._run(job)

    def _run(self, job: Job) -> None:
        with self._lock:
            if job.state is JobState.CANCELLED:
                return
            job.state = JobState.RUNNING
            job.attempts += 1
            if job.started_at is None:
                job.started_at = time.time()
            if job.started_mono is None:
                job.started_mono = time.monotonic()
                self._observe_stage("queue_wait", job.queue_wait_seconds)
            self.stats.running += 1
        root = job.trace_root
        run_span = None
        if root is not None and root.is_recording:
            # queue_wait already happened — record it retroactively so
            # the trace shows the wait without a span having been open.
            self.tracer.record_span(
                "queue_wait", trace_id=root.trace_id, parent_id=root.span_id,
                start=job.submitted_at, duration=job.queue_wait_seconds)
            run_span = self.tracer.start_span(
                "run", root, attrs={"attempt": job.attempts,
                                    "backend": self.executor_mode})
        self.logger.event("job_started", trace_id=job.trace_id, job_id=job.id,
                          attempt=job.attempts)
        try:
            if run_span is not None:
                with self.tracer.activate(run_span):
                    result, evals, calls, streamed = self._dispatch(job)
            else:
                result, evals, calls, streamed = self._dispatch(job)
        except CancelledError:
            # cancel() descheduled the pool future before it started; the
            # job record was already finished as cancelled there.
            if run_span is not None:
                run_span.record_error("cancelled")
                self.tracer.finish_span(run_span)
            with self._lock:
                self.stats.running -= 1
            return
        except Exception as exc:  # noqa: BLE001 — jobs must not kill workers
            crashed = isinstance(exc, WorkerCrashError)
            if run_span is not None:
                run_span.record_error(exc)
                if crashed:
                    run_span.set_attr("worker_crash", True)
                self.tracer.finish_span(run_span)
            with self._lock:
                self.stats.running -= 1
                if crashed:
                    self.stats.crashes += 1
                    job.crashes += 1
                if job.state is JobState.CANCELLED:
                    # Tombstoned while running: stay cancelled, don't retry.
                    self.stats.discarded += 1
                    return
                if job.attempts <= job.spec.max_retries and not self._stop.is_set():
                    self.stats.retried += 1
                    self.logger.event("job_retried", level="warn",
                                      trace_id=job.trace_id, job_id=job.id,
                                      attempt=job.attempts,
                                      error=f"{type(exc).__name__}: {exc}")
                    job.state = JobState.QUEUED
                    self._queue.put(job, force=True)
                    return
            self._finish(job, JobState.FAILED, error=f"{type(exc).__name__}: {exc}")
            return
        if run_span is not None:
            self.tracer.finish_span(run_span)
        with self._lock:
            self.stats.running -= 1
            if job.state is JobState.CANCELLED:
                # Tombstoned mid-flight: the computation finished anyway;
                # its result is discarded (the cache keeps what it probed —
                # entries are pure, so keeping them is free reuse).
                self.stats.discarded += 1
                return
            self.stats.evaluations += evals
            self.stats.compressor_calls += calls
            self.stats.cache_hits += evals - calls
            self.stats.cache_misses += calls
            if streamed:
                self.stats.streamed += 1
        self._finish(job, JobState.DONE, result=result)

    def add_finish_listener(self, listener) -> None:
        """Call ``listener(job)`` after every terminal transition.

        The hook fires for primaries *and* their coalesced followers
        (each follower is a tracked job with its own id).  The node
        agent uses it to report finished jobs to a gateway (see
        ``repro/serve/agent.py``); listeners must not raise and must not
        block — they run on the worker thread that finished the job,
        sometimes under the scheduler lock (cancellations).
        """
        self._finish_listeners.append(listener)

    def _notify_finished(self, jobs: list[Job]) -> None:
        for listener in self._finish_listeners:
            for job in jobs:
                try:
                    listener(job)
                except Exception as exc:  # noqa: BLE001 - listeners never kill workers
                    self.logger.event(
                        "finish_listener_failed", level="warning",
                        trace_id=job.trace_id, job_id=job.id,
                        error=f"{type(exc).__name__}: {exc}")

    def _finish(self, job: Job, state: JobState, *, result: dict | None = None,
                error: str | None = None) -> None:
        with self._lock:
            self._drop_inflight_locked(job)
            followers = job.followers[:]
            job.followers.clear()
            job._finish(state, result=result, error=error)
            self._remember_locked(job)
            done = state is JobState.DONE
            self.stats.completed += 1 if done else 0
            self.stats.failed += 0 if done else 1
            self._observe_stage("run", job.run_seconds)
            self._observe_job(job)
            if done and result is not None:
                # Stage breakdown rides in the typed report's wire dict, so
                # it survives the process-pool pickle boundary for free.
                for stage, seconds in stage_timings(result).items():
                    self._observe_stage(stage, seconds)
            for follower in followers:
                follower.started_at = job.started_at
                follower.started_mono = job.started_mono
                follower._finish(state, result=result, error=error)
                self._remember_locked(follower)
                # Followers share the primary's computation (stage timings
                # counted once, above) but each felt its own latency.
                self._observe_job(follower)
                self.stats.completed += 1 if done else 0
                self.stats.failed += 0 if done else 1
        for finished in (job, *followers):
            self._finish_job_trace(finished)
        self._notify_finished([job, *followers])

    def _finish_job_trace(self, job: Job) -> None:
        """Close a job's root span; errors force a span even when unsampled."""
        root = job.trace_root
        if root is None:
            return
        failed = job.state is JobState.FAILED
        if root.is_recording:
            if failed:
                root.record_error(job.error or "failed")
            elif job.state is JobState.CANCELLED:
                root.record_error("cancelled")
            self.tracer.finish_span(root)
        elif failed and root.trace_id is not None:
            # Always-sample-on-error: the head decision skipped this
            # trace, but a failure must leave at least its root behind.
            self.tracer.record_span(
                "job", trace_id=root.trace_id, start=job.submitted_at,
                duration=job.total_seconds, status="error", error=job.error,
                attrs={"job_id": job.id, "kind": job.spec.kind,
                       "forced_sample": True})
        if job.trace_id is not None:
            self.tracer.store.finish_trace(job.trace_id, job.total_seconds,
                                           job.id)
        self.logger.event(
            "job_failed" if failed else "job_finished",
            level="error" if failed else "info",
            trace_id=job.trace_id, job_id=job.id, state=job.state.value,
            seconds=round(job.total_seconds or 0.0, 6))

    def _drop_inflight_locked(self, job: Job) -> None:
        key = job.spec.coalesce_key()
        if self._inflight.get(key) is job:
            del self._inflight[key]

    def _remember_locked(self, job: Job) -> None:
        """Bound the finished-job registry to the history limit."""
        self._history.append(job.id)
        while len(self._history) > self._history_limit:
            old = self._history.popleft()
            stale = self._jobs.get(old)
            if stale is not None and stale.finished:
                del self._jobs[old]

    # -- execution ---------------------------------------------------------
    def _dispatch(self, job: Job) -> tuple[dict, int, int, bool]:
        """Run one job on the configured backend."""
        if self._pool is None:
            with self.tracer.span("executor_dispatch",
                                  attrs={"backend": "thread"}):
                return self._execute(job)
        spec, spill = self._spill_inline(job.spec)
        snapshot = self._cache.export_entries() if self._cache is not None else None
        generation = None
        # Ship the dispatch span's context across the pickle boundary so
        # the worker's stage/iteration spans re-parent onto this trace.
        # Unsampled jobs ship nothing: the worker then runs untraced.
        dispatch_cm = self.tracer.span("executor_dispatch",
                                       attrs={"backend": "process"})
        try:
            with dispatch_cm as dispatch_span:
                trace_context = (dispatch_span.context.to_dict()
                                 if dispatch_span.is_recording else None)
                with self._lock:
                    if job.state is JobState.CANCELLED:
                        # Tombstoned between the RUNNING transition and this
                        # point: never reaches the pool.
                        raise CancelledError()
                    future, generation = self._pool.submit(
                        _process_execute, spec, snapshot,
                        trace_context=trace_context)
                    self._futures[job.id] = future
                payload = future.result()
                if isinstance(payload, TracedResult):
                    self.tracer.store.add_many(payload.spans)
                    payload = payload.value
                result, evals, calls, streamed, delta = payload
        except BrokenProcessPool as exc:
            self._pool.crashed(generation)
            raise WorkerCrashError(f"worker process died mid-job: {exc}") from exc
        finally:
            with self._lock:
                self._futures.pop(job.id, None)
            if spill is not None:
                try:
                    os.unlink(spill)
                except OSError:  # repro: ignore[EXC002] temp may already be gone
                    pass
        if self._cache is not None:
            self._cache.merge_entries(delta)
        if spill is not None:
            # The spill path is scheduler-internal — never leak it to the
            # client (it is already unlinked).  Compress payloads nest the
            # tuning record, which repeats the input field.
            for section in (result, result.get("tuning")):
                if isinstance(section, dict) and section.get("input") == spill:
                    section["input"] = None
        return result, evals, calls, streamed

    def _spill_inline(self, spec: JobSpec) -> tuple[JobSpec, str | None]:
        """Swap an oversized inline array for a temp-file input.

        Returns ``(dispatchable spec, spill path or None)``; the caller
        unlinks the spill once the job leaves the pool.  Keeping big
        arrays out of the job pickle bounds the pool pipe traffic, and a
        file input also becomes eligible for the out-of-core stream route.
        """
        if spec.data_b64 is None:
            return spec, None
        # The threshold is documented in decoded (array) bytes; base64 is
        # 4/3 the size of what it encodes.
        if len(spec.data_b64) * 3 // 4 <= self.spill_threshold:
            return spec, None
        data = spec.load_array()
        fd, path = tempfile.mkstemp(prefix="repro-serve-spill-", suffix=".npy")
        with os.fdopen(fd, "wb") as fh:
            np.save(fh, data, allow_pickle=False)
        return replace(spec, data_b64=None, input=path), path

    def _execute(self, job: Job) -> tuple[dict, int, int, bool]:
        """Thread backend: run the job on this dispatcher thread."""
        return _execute_spec(
            job.spec,
            cache=self._cache,
            executor=self._intra,
            intra_workers=self.intra_workers,
            stream_threshold=self.stream_threshold,
            max_memory=self.max_memory,
            seed=self.seed,
        )

    # -- introspection -----------------------------------------------------
    def trace_payload(self, ref: str) -> dict | None:
        """Spans for one trace, addressed by job id *or* raw trace id.

        The ``GET /trace/<ref>`` body; ``None`` when the reference is
        unknown or the trace was never sampled/already evicted.
        """
        job = self.get(ref)
        if job is not None:
            trace_id = job.trace_id
        else:
            trace_id = ref if len(ref) == 32 else None
        if trace_id is None:
            return None
        spans = self.tracer.store.get(trace_id)
        if spans is None:
            return None
        return {
            "trace_id": trace_id,
            "job_id": job.id if job is not None else None,
            "complete": job.finished if job is not None else None,
            "spans": spans,
        }

    def stats_snapshot(self) -> "SchedulerStats":
        """A point-in-time copy of the counters, taken under the lock.

        Heartbeat agents and other out-of-process readers use this
        instead of the live ``stats`` field (which the scheduler lock
        guards).
        """
        with self._lock:
            return copy.copy(self.stats)

    def stats_payload(self) -> dict:
        """JSON-ready service statistics (the ``/stats`` body)."""
        with self._lock:
            payload = {
                "uptime_seconds": round(time.monotonic() - self._started_mono, 3),
                "workers": self.workers,
                "paused": self.paused,
                "executor": schema.executor_payload(
                    mode=self.executor_mode,
                    intra=self.intra_kind,
                    crashes=self.stats.crashes,
                    rebuilds=(self._pool.rebuild_count()
                              if self._pool is not None else 0),
                    discarded=self.stats.discarded,
                    tasks=self._pool.task_counts() if self._pool is not None else None,
                ),
                "queue": self._queue.stats_dict(),
                "jobs": self.stats.jobs_dict(),
                "search": self.stats.search_dict(),
                "cache": None,
                "metrics": None,
                "trace": self.tracer.stats_dict(),
            }
            if self._cache is not None:
                payload["cache"] = self._cache.stats_dict()
        # Snapshot outside the scheduler lock: the registry has its own
        # lock, and callback gauges re-enter queue/pool locks.
        if self.metrics is not None:
            payload["metrics"] = self.metrics.snapshot()
        return payload
