"""Stdlib JSON/HTTP front-end for the scheduler.

No web framework — a :class:`http.server.ThreadingHTTPServer` is enough
for a JSON control plane, keeps the service dependency-free, and its
thread-per-connection model composes cleanly with the scheduler's own
worker pool (handlers only ever touch thread-safe scheduler methods).

Endpoints
---------
``POST /submit``        body: a :class:`~repro.serve.jobs.JobSpec` dict —
                        i.e. a serialized
                        :class:`~repro.api.request.CompressionRequest`
                        (any kind: tune/compress/decompress/stream) plus
                        optional ``priority``/``max_retries``; legacy
                        flat bodies still parse →
                        ``202 {"job_id", "state", "coalesced_into"}``;
                        ``400`` on an invalid spec; ``429`` +
                        ``Retry-After`` when the queue is full.
``POST /cancel/<id>``   cancel a queued job (process backend: also a
                        running one — see the scheduler's tombstone
                        semantics); ``200 {"job_id", "cancelled",
                        "state"}``; ``404`` for unknown ids.
``GET /status/<id>``    job lifecycle record; ``404`` for unknown ids.
``GET /result/<id>``    ``200`` with the result/error once finished,
                        ``202`` with the current state while pending.
``GET /stats``          scheduler, queue, search, cache and trace
                        counters, plus a ``metrics`` snapshot of the
                        registry.
``GET /metrics``        Prometheus text exposition (version 0.0.4) of
                        the scheduler's metrics registry; ``404`` when
                        the scheduler was built with ``metrics=False``.
``GET /trace/<ref>``    span tree for a job id (or raw 32-hex trace id);
                        ``404`` when unknown, unsampled, or evicted.
``GET /health``         liveness probe (includes the package version).

Submits may carry a W3C ``traceparent`` header; the extracted context
makes the job's spans part of the caller's trace (and the 202 ticket
reports the ``trace_id`` either way).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import __version__
from repro.obs.trace import TRACEPARENT_HEADER, TraceContext
from repro.serve.jobs import JobSpec
from repro.serve.queue import QueueFull
from repro.serve.scheduler import Scheduler

__all__ = ["ServiceServer", "DEFAULT_PORT"]

DEFAULT_PORT = 8077

#: Largest accepted request body (inline arrays ride in submits).
MAX_BODY_BYTES = 256 * 2**20


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # Set by ServiceServer on the server class instance.
    scheduler: Scheduler = None  # type: ignore[assignment]
    agent = None  # NodeAgent when this node registered with a gateway
    verbose: bool = False

    # -- plumbing ----------------------------------------------------------
    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        if self.verbose:  # pragma: no cover - log formatting
            super().log_message(fmt, *args)

    def _send(self, code: int, payload: dict, headers: dict | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(data)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from None

    # -- routes ------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path.startswith("/cancel/"):
            # Cancel takes no body, but a keep-alive client may send one
            # anyway (e.g. curl -d '{}'); drain it so the unread bytes are
            # not parsed as the next request line.
            length = int(self.headers.get("Content-Length", 0) or 0)
            if 0 < length <= 65536:
                self.rfile.read(length)
            elif length > 65536:
                self.close_connection = True
            job_id = self.path[len("/cancel/"):]
            job = self.scheduler.get(job_id)
            if job is None:
                self._send(404, {"error": "unknown job id"})
                return
            cancelled = self.scheduler.cancel(job_id)
            self._send(200, {
                "job_id": job_id,
                "cancelled": cancelled,
                "state": job.state.value,
            })
            return
        if self.path != "/submit":
            # The request body was never read; a keep-alive peer would see
            # its unread bytes parsed as the next request line.
            self.close_connection = True
            self._send(404, {"error": f"unknown endpoint {self.path!r}"})
            return
        try:
            spec = JobSpec.from_dict(self._read_json())
        except ValueError as exc:
            # Oversized bodies are rejected unread — don't reuse the socket.
            self.close_connection = True
            self._send(400, {"error": str(exc)})
            return
        context = TraceContext.from_traceparent(
            self.headers.get(TRACEPARENT_HEADER))
        try:
            job = self.scheduler.submit(spec, trace_context=context)
        except QueueFull as exc:
            self._send(
                429,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": f"{exc.retry_after:g}"},
            )
            return
        self._send(202, {
            "job_id": job.id,
            "state": job.state.value,
            "coalesced_into": job.coalesced_into,
            "trace_id": job.trace_id,
        })

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/stats":
            payload = self.scheduler.stats_payload()
            if self.agent is not None:
                payload["shard"] = self.agent.status_dict()
            self._send(200, payload)
            return
        if self.path == "/metrics":
            if self.scheduler.metrics is None:
                self._send(404, {"error": "metrics are disabled on this service"})
                return
            from repro.obs.exposition import CONTENT_TYPE

            self._send_text(200, self.scheduler.metrics_text(), CONTENT_TYPE)
            return
        if self.path == "/health":
            self._send(200, {"status": "ok", "paused": self.scheduler.paused,
                             "version": __version__})
            return
        if self.path.startswith("/trace/"):
            payload = self.scheduler.trace_payload(self.path[len("/trace/"):])
            if payload is None:
                self._send(404, {"error": "unknown job/trace id "
                                          "(unsampled or evicted traces 404)"})
            else:
                self._send(200, payload)
            return
        for prefix in ("/status/", "/result/"):
            if self.path.startswith(prefix):
                job = self.scheduler.get(self.path[len(prefix):])
                if job is None:
                    self._send(404, {"error": "unknown job id"})
                    return
                if prefix == "/status/":
                    self._send(200, job.status_dict())
                elif not job.finished:
                    self._send(202, {"job_id": job.id, "state": job.state.value})
                else:
                    self._send(200, {
                        "job_id": job.id,
                        "state": job.state.value,
                        "coalesced_into": job.coalesced_into,
                        "result": job.result,
                        "error": job.error,
                    })
                return
        self._send(404, {"error": f"unknown endpoint {self.path!r}"})


class ServiceServer:
    """Owns one scheduler plus the HTTP listener bound to it.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port`/:attr:`url`) — tests and the CI smoke job rely on that.

    Usage::

        with ServiceServer(port=0, workers=2) as server:
            client = ServiceClient(server.url)
            ...
    """

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        verbose: bool = False,
        register: str | None = None,
        node_id: str | None = None,
        advertise_url: str | None = None,
        heartbeat_interval: float | None = None,
        **scheduler_kwargs,
    ) -> None:
        if scheduler is not None and scheduler_kwargs:
            raise ValueError("pass scheduler kwargs or an instance, not both")
        self.scheduler = scheduler or Scheduler(**scheduler_kwargs)
        handler = type("_BoundHandler", (_Handler,),
                       {"scheduler": self.scheduler, "verbose": verbose})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self.agent = None
        if register is not None:
            # The listener is already bound, so the real port is known
            # even when the caller asked for an ephemeral one.
            from repro.serve.agent import NodeAgent

            self.agent = NodeAgent(
                self.scheduler, register,
                node_id=node_id or f"node-{self.host}-{self.port}",
                advertise_url=advertise_url or self.url,
                heartbeat_interval=heartbeat_interval,
            )
            handler.agent = self.agent

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        """Start scheduler workers and the HTTP listener thread."""
        self.scheduler.start()
        if self.agent is not None:
            self.agent.start()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="repro-serve-http", daemon=True
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant for the CLI (Ctrl-C to stop)."""
        self.scheduler.start()
        if self.agent is not None:
            self.agent.start()
        try:
            self._httpd.serve_forever()
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Stop the listener, the workers, and persist the cache tier."""
        if self.agent is not None:
            self.agent.stop()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        self.scheduler.close()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()
