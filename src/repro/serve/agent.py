"""Node-side gateway agent: registration, heartbeats, and job acks.

A :class:`NodeAgent` rides inside a ``repro serve`` process started with
``--register <gateway-url>``.  It owns the node's half of the gateway
protocol (see :mod:`repro.gateway.server`):

* **register** — ``POST /register`` with the node's id and advertised
  URL, retried until the gateway answers (nodes and gateway can start in
  any order).  The response carries the fleet-wide heartbeat interval.
* **heartbeat** — ``POST /heartbeat/<node>`` every interval.  The body
  lists locally-finished job ids the gateway has not acknowledged yet
  (the *job-ack protocol*: the gateway fetches each result, caches it,
  and acks; un-acked jobs are exactly what failover requeues if this
  node dies) plus a small stats summary for the gateway's fleet view.
* **drain awareness** — the heartbeat response carries the node's state
  as the gateway sees it; when an operator drains the node the agent
  flips :attr:`draining`, which ``/stats`` (``shard`` section) and the
  ``repro_node_draining`` gauge surface, so both sides of the
  transition are observable.
* **unregister** — a clean shutdown tells the gateway, which requeues
  anything still owed instead of waiting out the death timer.

The agent is deliberately dumb about failures: any error talking to the
gateway just means "try again next interval" (and a 404 on heartbeat
means "the gateway forgot me — re-register").  The gateway's reaper owns
the authoritative liveness decision; the agent's only job is to keep the
evidence flowing.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from collections import deque

from repro.serve.client import ProtocolError
from repro.serve.scheduler import Scheduler
from repro.util.concurrency import guarded_by

__all__ = ["NodeAgent", "DEFAULT_HEARTBEAT_INTERVAL"]

DEFAULT_HEARTBEAT_INTERVAL = 1.0

#: Finished-but-unacked ids kept for the gateway; beyond this the oldest
#: are dropped (a gateway gone for thousands of jobs will requeue them).
MAX_PENDING_ACKS = 4096


@guarded_by("_lock", "_pending", "_pending_set")
class NodeAgent:
    """One node's registration + heartbeat client against a gateway."""

    def __init__(
        self,
        scheduler: Scheduler,
        gateway_url: str,
        node_id: str,
        advertise_url: str,
        heartbeat_interval: float | None = None,
        timeout: float = 5.0,
    ) -> None:
        if not node_id or "/" in node_id:
            raise ValueError(f"invalid node id {node_id!r}")
        self.scheduler = scheduler
        self.gateway_url = gateway_url.rstrip("/")
        self.node_id = node_id
        self.advertise_url = advertise_url.rstrip("/")
        #: ``None`` defers to the gateway's registration response.
        self.heartbeat_interval = heartbeat_interval
        self.timeout = timeout
        self.registered = False
        self.draining = False
        self.heartbeats_sent = 0
        self.acked_jobs = 0
        self.register_failures = 0
        #: Gateway responses that broke the protocol (bad field types);
        #: the agent falls back to safe defaults but keeps count.
        self.protocol_errors = 0
        self._pending: deque[str] = deque()
        self._pending_set: set[str] = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # The agent is where a scheduler learns which shard it is —
        # stamp the identity onto its spans and log lines so a stitched
        # gateway trace attributes every span to the node that ran it.
        scheduler.tracer.node_id = node_id
        scheduler.logger.node_id = node_id
        scheduler.add_finish_listener(self._on_job_finished)
        if scheduler.metrics is not None:
            reg = scheduler.metrics
            reg.gauge("node_registered", "1 once the gateway accepted registration",
                      callback=lambda: int(self.registered))
            reg.gauge("node_draining",
                      "1 while the gateway has this node draining "
                      "(in-flight jobs finish, no new ones arrive)",
                      callback=lambda: int(self.draining))
            reg.counter("node_heartbeats_total", "Heartbeats delivered to the gateway",
                        callback=lambda: self.heartbeats_sent)
            reg.counter("node_acked_jobs_total",
                        "Finished jobs the gateway has fetched and acknowledged",
                        callback=lambda: self.acked_jobs)
            reg.gauge("node_pending_acks", "Finished jobs awaiting gateway ack",
                      callback=lambda: len(self._pending_set))  # repro: ignore[SAN101] torn read by design

    # -- scheduler hook ----------------------------------------------------
    def _on_job_finished(self, job) -> None:
        with self._lock:
            if job.id in self._pending_set:
                return
            self._pending.append(job.id)
            self._pending_set.add(job.id)
            while len(self._pending) > MAX_PENDING_ACKS:
                stale = self._pending.popleft()
                self._pending_set.discard(stale)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "NodeAgent":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name=f"repro-node-agent-{self.node_id}",
                daemon=True)
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop heartbeating and (best effort) unregister cleanly."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        if self.registered:
            try:
                self._post(f"/unregister/{self.node_id}", {})
            except OSError:  # repro: ignore[EXC002]
                pass  # the death timer handles it
            self.registered = False

    # -- the loop ----------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            if not self.registered:
                interval = self._try_register()
            else:
                interval = self._try_heartbeat()
            self._stop.wait(interval)

    def _interval(self) -> float:
        return self.heartbeat_interval or DEFAULT_HEARTBEAT_INTERVAL

    def _try_register(self) -> float:
        try:
            status, body = self._post(
                "/register", {"node_id": self.node_id, "url": self.advertise_url})
        except OSError:
            self.register_failures += 1
            return min(1.0, self._interval())
        if status != 200:
            self.register_failures += 1
            return min(1.0, self._interval())
        self.registered = True
        if self.heartbeat_interval is None:
            try:
                self.heartbeat_interval = self._parse_interval(body)
            except ProtocolError:
                # A gateway that mangles the interval still accepted us;
                # heartbeat at the default rate rather than crash the loop.
                self.protocol_errors += 1
                self.heartbeat_interval = DEFAULT_HEARTBEAT_INTERVAL
        # Heartbeat immediately: registration already proved liveness,
        # but the first report/ack cycle should not wait a full interval.
        return 0.0

    def _try_heartbeat(self) -> float:
        with self._lock:
            finished = list(self._pending)
        try:
            status, body = self._post(
                f"/heartbeat/{self.node_id}",
                {"finished": finished, "stats": self._report()})
        except OSError:
            return self._interval()  # gateway unreachable: keep trying
        if status == 404:
            # The gateway restarted (or reaped us as dead and we then
            # unregistered): start over with a fresh registration.
            self.registered = False
            return 0.0
        if status != 200:
            return self._interval()
        self.heartbeats_sent += 1
        self.draining = body.get("state") == "draining"
        try:
            acked = self._parse_acked(body)
        except ProtocolError:
            self.protocol_errors += 1
            acked = []  # treat as "nothing acked"; ids stay pending
        if acked:
            with self._lock:
                for job_id in acked:
                    if job_id in self._pending_set:
                        self._pending_set.discard(job_id)
                        self.acked_jobs += 1
                self._pending = deque(
                    j for j in self._pending if j in self._pending_set)
        return self._interval()

    @staticmethod
    def _parse_interval(body: dict) -> float:
        """``heartbeat_interval`` from a register response, type-checked.

        Raises :class:`~repro.serve.client.ProtocolError` (not
        ``TypeError``/``ValueError`` mid-``float()``) when the gateway
        sends garbage, so callers can distinguish a broken gateway from
        an agent bug.
        """
        value = body.get("heartbeat_interval", DEFAULT_HEARTBEAT_INTERVAL)
        if isinstance(value, bool) or not isinstance(value, (int, float)) \
                or value <= 0:
            raise ProtocolError(
                "register response: field 'heartbeat_interval' must be a "
                f"positive number, got {value!r}", body=body)
        return float(value)

    @staticmethod
    def _parse_acked(body: dict) -> list[str]:
        """``acked`` from a heartbeat response: a list of job-id strings."""
        acked = body.get("acked") or []
        if not isinstance(acked, list) \
                or not all(isinstance(j, str) for j in acked):
            raise ProtocolError(
                "heartbeat response: field 'acked' must be a list of job "
                "ids", body=body)
        return acked

    def _report(self) -> dict:
        """The small self-description that rides in each heartbeat."""
        stats = self.scheduler.stats_snapshot()
        return {
            "running": stats.running,
            "submitted": stats.submitted,
            "completed": stats.completed,
            "failed": stats.failed,
            "queue_depth": len(self.scheduler._queue),
            "workers": self.scheduler.workers,
            "executor": self.scheduler.executor_mode,
        }

    # -- transport ---------------------------------------------------------
    def _post(self, path: str, body: dict) -> tuple[int, dict]:
        data = json.dumps(body).encode("utf-8")
        req = urllib.request.Request(
            f"{self.gateway_url}{path}", data=data, method="POST",
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                payload = {}
            return exc.code, payload

    # -- introspection -----------------------------------------------------
    def status_dict(self) -> dict:
        """The ``/stats`` ``shard`` section of a registered node."""
        with self._lock:
            pending = len(self._pending_set)
        return {
            "node_id": self.node_id,
            "gateway": self.gateway_url,
            "advertise_url": self.advertise_url,
            "registered": self.registered,
            "state": "draining" if self.draining else
                     ("active" if self.registered else "unregistered"),
            "heartbeat_interval": self._interval(),
            "heartbeats_sent": self.heartbeats_sent,
            "acked_jobs": self.acked_jobs,
            "pending_acks": pending,
            "register_failures": self.register_failures,
            "protocol_errors": self.protocol_errors,
        }
