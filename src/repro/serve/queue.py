"""Bounded priority job queue with backpressure.

The service's admission control lives here, not in the HTTP layer: a
:class:`JobQueue` holds at most ``maxsize`` undispatched jobs, and
:meth:`JobQueue.put` raises :class:`QueueFull` the moment a producer
outruns the workers — the server maps that to ``429 Retry-After`` and the
client backs off.  Bounding the *queue* (rather than, say, dropping jobs
silently or buffering without limit) keeps memory flat under burst load
and gives callers an honest signal they can retry on.

Ordering is ``(priority, arrival)``: lower priority values run sooner,
ties run first-in-first-out (the sequence number makes the heap stable,
and keeps :class:`~repro.serve.jobs.Job` objects out of the comparison).

Cancellation is lazy — cancelled jobs stay in the heap and are skipped at
pop time — but *accounted eagerly*: the scheduler reports each
cancellation through :meth:`JobQueue.cancelled`, which keeps the live
depth an O(1) counter (no heap scan on ``put``) and **compacts** the heap
once cancelled entries outnumber the live ones (or exceed ``maxsize``),
so a cancel-heavy producer cannot grow the heap without bound behind a
small reported depth.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass

from repro.errors import StateError
from repro.serve.jobs import Job, JobState
from repro.util.concurrency import guarded_by

__all__ = ["JobQueue", "QueueFull"]


class QueueFull(StateError):
    """Raised by :meth:`JobQueue.put` when the queue is at capacity.

    ``retry_after`` is the server's suggested client backoff in seconds.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


@dataclass
class QueueStats:
    """Counters for one queue instance."""

    enqueued: int = 0
    rejected: int = 0
    cancelled: int = 0
    compactions: int = 0
    max_depth: int = 0

    def as_dict(self) -> dict:
        return {
            "enqueued": self.enqueued,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "compactions": self.compactions,
            "max_depth": self.max_depth,
        }


@guarded_by("_cond", "_heap", "_members", "_cancelled_ids", "stats")
class JobQueue:
    """Thread-safe bounded priority queue of :class:`Job` records."""

    def __init__(self, maxsize: int = 64) -> None:
        if not isinstance(maxsize, int) or maxsize < 1:
            raise ValueError(f"maxsize must be an int >= 1, got {maxsize!r}")
        self.maxsize = maxsize
        self.stats = QueueStats()
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._cond = threading.Condition()
        #: ids of live (not-yet-popped, not-cancelled) entries — the depth.
        self._members: set[str] = set()
        #: ids of cancelled entries still occupying heap slots.
        self._cancelled_ids: set[str] = set()

    # -- producers ---------------------------------------------------------
    def put(self, job: Job, *, force: bool = False) -> None:
        """Enqueue ``job``; raises :class:`QueueFull` at capacity.

        ``force=True`` bypasses the bound — reserved for the scheduler's
        internal re-enqueues (retries), which must never be rejected by
        the same backpressure that protects against *new* work.
        """
        with self._cond:
            depth = len(self._members)
            if not force and depth >= self.maxsize:
                self.stats.rejected += 1
                raise QueueFull(
                    f"job queue full ({depth}/{self.maxsize} pending)",
                    retry_after=1.0,
                )
            heapq.heappush(self._heap, (job.spec.priority, next(self._seq), job))
            self._members.add(job.id)
            self.stats.enqueued += 1
            self.stats.max_depth = max(self.stats.max_depth, depth + 1)
            self._cond.notify()

    def cancelled(self, job: Job) -> bool:
        """Report that a queued job was cancelled; returns whether it was live.

        The entry stays in the heap (lazy removal keeps cancel O(1)), but
        the live counter drops immediately and the heap is compacted once
        dead entries dominate.  A job that is not currently queued — e.g.
        already popped by a racing worker — is a no-op, so the counters
        can never undercount.
        """
        with self._cond:
            if job.id not in self._members:
                return False
            self._members.discard(job.id)
            self._cancelled_ids.add(job.id)
            self.stats.cancelled += 1
            dead = len(self._cancelled_ids)
            if dead > len(self._heap) // 2 or dead > self.maxsize:
                self._compact_locked()
            return True

    def _compact_locked(self) -> None:
        """Drop cancelled entries; (priority, seq) tags keep the order."""
        self._heap = [e for e in self._heap if e[2].id not in self._cancelled_ids]
        heapq.heapify(self._heap)
        self._cancelled_ids.clear()
        self.stats.compactions += 1

    # -- consumers ---------------------------------------------------------
    def get(self, timeout: float | None = None) -> Job | None:
        """Pop the highest-priority live job; ``None`` on timeout.

        Jobs cancelled while queued are discarded here, never returned.
        """
        with self._cond:
            while True:
                job = self._pop_live_locked()
                if job is not None:
                    return job
                if not self._cond.wait(timeout):
                    return self._pop_live_locked()

    def _pop_live_locked(self) -> Job | None:
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            if job.id in self._cancelled_ids:
                self._cancelled_ids.discard(job.id)
                continue
            self._members.discard(job.id)
            if job.state is JobState.CANCELLED:
                continue  # cancelled without notification; skip, never return
            return job
        return None

    # -- introspection -----------------------------------------------------
    def _depth_locked(self) -> int:
        return len(self._members)

    def __len__(self) -> int:
        with self._cond:
            return self._depth_locked()

    def heap_size(self) -> int:
        """Physical heap length, counting lazily-cancelled entries."""
        with self._cond:
            return len(self._heap)

    def stats_dict(self) -> dict:
        with self._cond:
            return {
                "depth": self._depth_locked(),
                "capacity": self.maxsize,
                **self.stats.as_dict(),
            }
