"""One result schema for every machine-facing surface.

``repro tune``/``repro compress --json``, the service's ``/result/<id>``
bodies, and :class:`~repro.serve.client.ServiceClient` all emit/consume
the dictionaries built here, so a client written against the CLI parses
service results unchanged (and vice versa).

The shapes themselves now live in :mod:`repro.api.report` as typed
classes (:class:`~repro.api.report.TuneReport` and friends) — these
helpers are thin builders kept for callers that want a wire dict in one
call, plus :func:`executor_payload` (the service-only ``/stats``
section).  Parse a payload back into its typed form with
:func:`repro.api.report.report_from_dict`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.api.report import (
    CompressReport,
    StreamReport,
    TuneReport,
    cache_section as _cache_section,  # noqa: F401  (re-exported for callers)
)

if TYPE_CHECKING:
    from repro.cache.evalcache import EvalCache
    from repro.core.results import TrainingResult
    from repro.pressio.compressor import CompressedField
    from repro.stream.pipeline import StreamResult

__all__ = ["tune_payload", "compress_payload", "executor_payload"]


def executor_payload(
    *,
    mode: str,
    intra: str,
    crashes: int = 0,
    rebuilds: int = 0,
    discarded: int = 0,
    tasks: dict | None = None,
) -> dict:
    """The ``/stats`` ``"executor"`` section: backend and crash counters.

    ``mode`` is the job-level backend (``"thread"``/``"process"``),
    ``intra`` the fan-out backend inside one job.  ``crashes`` counts
    attempts lost to a dying worker process, ``rebuilds`` the pool
    reconstructions those crashes forced, and ``discarded`` results that
    completed after their job was cancelled (tombstoned) and were thrown
    away.  ``tasks`` is the process pool's lifetime task-flow block
    (:meth:`~repro.parallel.executor.ProcessJobPool.task_counts`); it is
    merged in when given, absent for the thread backend.
    """
    payload = {
        "mode": mode,
        "intra": intra,
        "worker_crashes": crashes,
        "pool_rebuilds": rebuilds,
        "discarded_results": discarded,
    }
    if tasks is not None:
        payload.update(tasks)
    return payload


def tune_payload(
    result: "TrainingResult",
    *,
    compressor: str,
    input: str | None = None,
    max_error_bound: float | None = None,
    cache: "EvalCache | None" = None,
) -> dict:
    """Structured record of one FRaZ search (wire form of :class:`TuneReport`)."""
    return TuneReport.from_training(
        result,
        compressor=compressor,
        input=input,
        max_error_bound=max_error_bound,
        cache=cache,
    ).to_dict()


def compress_payload(
    payload: "CompressedField",
    *,
    compressor: str,
    error_bound: float,
    output: str | None = None,
    input: str | None = None,
    tuning: dict | None = None,
    wall_seconds: float | None = None,
    cache: "EvalCache | None" = None,
) -> dict:
    """Structured record of one in-memory compression.

    ``tuning`` is the :func:`tune_payload` of the search that picked
    ``error_bound``, or ``None`` for a fixed-bound run.
    """
    return CompressReport.from_field(
        payload,
        compressor=compressor,
        error_bound=error_bound,
        output=output,
        input=input,
        tuning=TuneReport.from_dict(tuning) if tuning is not None else None,
        wall_seconds=wall_seconds,
        cache=cache,
    ).to_dict()


def stream_payload(
    result: "StreamResult",
    *,
    compressor: str,
    input: str | None = None,
    cache: "EvalCache | None" = None,
) -> dict:
    """Structured record of one out-of-core (``.frzs``) compression."""
    return StreamReport.from_result(
        result, compressor=compressor, input=input, cache=cache
    ).to_dict()
