"""One result schema for every machine-facing surface.

``repro tune``/``repro compress --json``, the service's ``/result/<id>``
bodies, and :class:`~repro.serve.client.ServiceClient` all emit/consume
the dictionaries built here, so a client written against the CLI parses
service results unchanged (and vice versa).

Three shapes, all JSON-ready:

* :func:`tune_payload` — one FRaZ search (``kind: "tune"``);
* :func:`compress_payload` — an in-memory compression, optionally with
  the tuning that chose its bound nested under ``"tuning"``;
* :func:`stream_payload` — an out-of-core compression routed through
  ``repro.stream`` (``"streamed": true``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.cache.evalcache import EvalCache
    from repro.core.results import TrainingResult
    from repro.pressio.compressor import CompressedField
    from repro.stream.pipeline import StreamResult

__all__ = ["tune_payload", "compress_payload", "stream_payload", "executor_payload"]


def _cache_section(cache: "EvalCache | None") -> dict | None:
    if cache is None:
        return None
    return {"entries": len(cache), **cache.stats.as_dict()}


def executor_payload(
    *,
    mode: str,
    intra: str,
    crashes: int = 0,
    rebuilds: int = 0,
    discarded: int = 0,
) -> dict:
    """The ``/stats`` ``"executor"`` section: backend and crash counters.

    ``mode`` is the job-level backend (``"thread"``/``"process"``),
    ``intra`` the fan-out backend inside one job.  ``crashes`` counts
    attempts lost to a dying worker process, ``rebuilds`` the pool
    reconstructions those crashes forced, and ``discarded`` results that
    completed after their job was cancelled (tombstoned) and were thrown
    away.
    """
    return {
        "mode": mode,
        "intra": intra,
        "worker_crashes": crashes,
        "pool_rebuilds": rebuilds,
        "discarded_results": discarded,
    }


def tune_payload(
    result: "TrainingResult",
    *,
    compressor: str,
    input: str | None = None,
    max_error_bound: float | None = None,
    cache: "EvalCache | None" = None,
) -> dict:
    """Structured record of one FRaZ search."""
    return {
        "kind": "tune",
        "compressor": compressor,
        "input": input,
        "target_ratio": result.target_ratio,
        "tolerance": result.tolerance,
        "max_error_bound": max_error_bound,
        "error_bound": result.error_bound,
        "ratio": result.ratio,
        "feasible": result.feasible,
        "within_tolerance": result.within_tolerance,
        "evaluations": result.evaluations,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "compressor_calls": result.compressor_calls,
        "wall_seconds": round(result.wall_seconds, 6),
        "compress_seconds": round(result.compress_seconds, 6),
        "cache": _cache_section(cache),
    }


def compress_payload(
    payload: "CompressedField",
    *,
    compressor: str,
    error_bound: float,
    output: str | None = None,
    input: str | None = None,
    tuning: dict | None = None,
    wall_seconds: float | None = None,
    cache: "EvalCache | None" = None,
) -> dict:
    """Structured record of one in-memory compression.

    ``tuning`` is the :func:`tune_payload` of the search that picked
    ``error_bound``, or ``None`` for a fixed-bound run.
    """
    return {
        "kind": "compress",
        "streamed": False,
        "compressor": compressor,
        "input": input,
        "output": output,
        "error_bound": error_bound,
        "ratio": payload.ratio,
        "original_nbytes": payload.original_nbytes,
        "compressed_nbytes": payload.nbytes,
        "wall_seconds": round(wall_seconds, 6) if wall_seconds is not None else None,
        "tuning": tuning,
        "cache": _cache_section(cache),
    }


def stream_payload(
    result: "StreamResult",
    *,
    compressor: str,
    input: str | None = None,
    cache: "EvalCache | None" = None,
) -> dict:
    """Structured record of one out-of-core (``.frzs``) compression."""
    return {
        "kind": "compress",
        "streamed": True,
        "compressor": compressor,
        "input": input,
        "output": result.path,
        "error_bound": result.error_bound,
        "ratio": result.ratio,
        "original_nbytes": result.original_nbytes,
        "compressed_nbytes": result.compressed_nbytes,
        "n_chunks": result.n_chunks,
        "chunk_shape": list(result.chunk_shape),
        "retrains": result.retrains,
        "in_band_chunks": result.in_band_chunks,
        "evaluations": result.evaluations,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "mb_per_second": round(result.mb_per_second, 3),
        "wall_seconds": round(result.wall_seconds, 6),
        "cache": _cache_section(cache),
    }
