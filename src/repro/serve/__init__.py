"""Resident compression service: queue, scheduler, HTTP server, client.

Turns the one-shot FRaZ tooling into a long-lived process::

    from repro.serve import ServiceServer, ServiceClient

    with ServiceServer(port=0, workers=2) as server:
        client = ServiceClient(server.url)
        ticket = client.submit_array(data, kind="tune", target_ratio=10.0)
        result = client.result(ticket["job_id"])

Submitted jobs flow through a bounded priority queue (backpressure),
identical concurrent requests are coalesced onto one computation, all
jobs share one :class:`~repro.cache.EvalCache`, and oversized file
inputs are routed through the out-of-core ``repro.stream`` pipeline.
A :class:`JobSpec` is the unified
:class:`~repro.api.request.CompressionRequest` plus scheduling fields,
so the same request object also drives :func:`repro.api.execute` and the
CLI.  See ``docs/SERVICE.md`` for the full protocol.
"""

from repro.serve.agent import NodeAgent
from repro.serve.client import (
    BackpressureError,
    JobFailedError,
    ProtocolError,
    ServiceClient,
    ServiceError,
    ServiceUnavailableError,
)
from repro.serve.jobs import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    Job,
    JobSpec,
    JobState,
)
from repro.serve.queue import JobQueue, QueueFull
from repro.serve.scheduler import (
    DEFAULT_SPILL_THRESHOLD,
    DEFAULT_STREAM_THRESHOLD,
    Scheduler,
    SchedulerStats,
    resolve_executor_mode,
)
from repro.serve.server import DEFAULT_PORT, ServiceServer

__all__ = [
    "Job",
    "JobSpec",
    "JobState",
    "JobQueue",
    "QueueFull",
    "Scheduler",
    "SchedulerStats",
    "ServiceServer",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailableError",
    "BackpressureError",
    "NodeAgent",
    "JobFailedError",
    "ProtocolError",
    "DEFAULT_PORT",
    "DEFAULT_STREAM_THRESHOLD",
    "DEFAULT_SPILL_THRESHOLD",
    "resolve_executor_mode",
    "PRIORITY_HIGH",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
]
