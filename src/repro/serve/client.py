"""Thin stdlib client for the compression service.

:class:`ServiceClient` speaks the JSON protocol of
:mod:`repro.serve.server` over ``urllib`` — no dependencies, safe to use
from scripts, tests, benchmarks and the ``repro submit`` CLI alike.

Backpressure is handled here so callers don't have to: a ``429`` from
``/submit`` is retried with the server-suggested ``Retry-After`` delay
until ``backpressure_wait`` is exhausted, at which point
:class:`BackpressureError` propagates the overload to the caller.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import numpy as np

from repro.api.request import CompressionRequest
from repro.errors import JobTimeoutError, ReproError
from repro.serve.jobs import JobSpec

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailableError",
    "BackpressureError",
    "JobFailedError",
    "ProtocolError",
]


class ServiceError(ReproError, RuntimeError):
    """Protocol-level failure (unexpected status, malformed body).

    ``retry_after`` carries the server's suggested backoff in seconds
    whenever the response offered one — the JSON ``retry_after`` field
    or the HTTP ``Retry-After`` header, uniformly — and ``None`` when it
    did not.
    """

    def __init__(self, message: str, status: int | None = None,
                 body: dict | None = None, retry_after: float | None = None):
        super().__init__(message)
        self.status = status
        self.body = body or {}
        self.retry_after = retry_after


class ServiceUnavailableError(ServiceError):
    """The endpoint cannot be reached at the transport level.

    Connection refused, reset, DNS failure, timeout — the *host* is the
    problem, not the queue.  Deliberately distinct from
    :class:`BackpressureError`: a 429 means "the service is up, slow
    down" and is worth sleeping the suggested ``Retry-After``; a refused
    connection means "this node is down" and sleeping on it only delays
    the real remedy (the gateway routing the job to a different shard —
    see ``repro/gateway/router.py``).
    """


class BackpressureError(ServiceError):
    """The queue stayed full for longer than ``backpressure_wait``."""


class JobFailedError(ServiceError):
    """A waited-on job finished in ``failed`` or ``cancelled`` state."""


class ProtocolError(ServiceError):
    """The server answered with a well-formed HTTP response whose JSON
    body is missing (or mistypes) a field the protocol requires.

    Raised instead of ``KeyError`` so callers can tell "the service
    broke its contract" apart from their own bugs, and so the offending
    ``body`` travels with the exception.  The ``repro check`` wire-drift
    checker (``WIRE001``/``WIRE002``) guards the same contract at lint
    time; this is the runtime backstop for servers outside this tree.
    """


def _require_field(payload: dict, key: str, types, *, context: str,
                   status: int | None = None):
    """``payload[key]`` with a typed error instead of ``KeyError``."""
    value = payload.get(key)
    if not isinstance(value, types):
        expected = getattr(types, "__name__", None) or "/".join(
            t.__name__ for t in types)
        raise ProtocolError(
            f"{context}: field {key!r} missing or not {expected} "
            f"(got {type(value).__name__})",
            status=status, body=payload,
        )
    return value


class ServiceClient:
    """JSON/HTTP client for one ``repro serve`` endpoint."""

    def __init__(
        self,
        url: str,
        timeout: float = 30.0,
        backpressure_wait: float = 30.0,
        poll_interval: float = 0.05,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.backpressure_wait = backpressure_wait
        self.poll_interval = poll_interval

    # -- transport ---------------------------------------------------------
    def _request(self, method: str, path: str, body: dict | None = None,
                 headers: dict | None = None) -> tuple[int, dict]:
        status, payload, _ = self._request_full(method, path, body, headers)
        return status, payload

    def _request_full(
        self, method: str, path: str, body: dict | None = None,
        headers: dict | None = None,
    ) -> tuple[int, dict, dict]:
        """One round trip returning ``(status, json body, response headers)``.

        Response header names are lowercased; error-status bodies are
        parsed the same as success bodies (empty dict when not JSON).
        """
        data = json.dumps(body).encode("utf-8") if body is not None else None
        send_headers = dict(headers or {})
        if data is not None:
            send_headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            f"{self.url}{path}", data=data, method=method, headers=send_headers,
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return (resp.status, json.loads(resp.read().decode("utf-8")),
                        {k.lower(): v for k, v in resp.headers.items()})
        except urllib.error.HTTPError as exc:
            # HTTPError doubles as the (open) response object: close it on
            # every path or the socket lingers until GC.
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                payload = {}
            finally:
                exc.close()
            return (exc.code, payload,
                    {k.lower(): v for k, v in (exc.headers or {}).items()})
        except urllib.error.URLError as exc:
            raise ServiceUnavailableError(
                f"cannot reach {self.url}: {exc.reason}") from exc
        except (ConnectionError, TimeoutError) as exc:
            # A reused keep-alive socket can fail with a raw OS error
            # before urllib wraps it (e.g. reset by a dying server).
            raise ServiceUnavailableError(
                f"cannot reach {self.url}: {exc}") from exc

    @staticmethod
    def _retry_after(payload: dict, headers: dict) -> float | None:
        """The server's suggested backoff: JSON field, else HTTP header."""
        value = payload.get("retry_after", headers.get("retry-after"))
        try:
            return float(value) if value is not None else None
        except (TypeError, ValueError):
            return None

    # -- submission --------------------------------------------------------
    def submit(
        self, spec: JobSpec | CompressionRequest | dict | None = None, *,
        traceparent: str | None = None, **fields
    ) -> dict:
        """Submit a job; returns ``{"job_id", "state", "coalesced_into",
        "trace_id"}``.

        Accepts a :class:`~repro.api.request.CompressionRequest` (the
        unified request type — add ``priority``/``max_retries`` as
        keyword arguments), a :class:`JobSpec`, a spec dict, or the
        spec's fields as keyword arguments.  Retries on ``429`` until
        ``backpressure_wait`` runs out.

        ``traceparent`` (keyword-only — it rides an HTTP header, never
        the spec body) continues an existing trace on the server: pass a
        :meth:`~repro.obs.trace.TraceContext.to_traceparent` value.

        Only genuine backpressure sleeps: a connection-level failure —
        or a ``503`` from a gateway with no live shard to route to —
        raises :class:`ServiceUnavailableError` immediately.  Every
        raised error carries the server's suggested ``retry_after``
        (JSON field or ``Retry-After`` header) when one was offered.
        """
        if spec is None:
            body = dict(fields)
        elif isinstance(spec, (JobSpec, CompressionRequest)):
            body = {**spec.to_dict(), **fields}
        else:
            body = {**spec, **fields}
        send_headers = {"traceparent": traceparent} if traceparent else None
        deadline = time.monotonic() + self.backpressure_wait
        while True:
            status, payload, headers = self._request_full(
                "POST", "/submit", body, send_headers)
            retry_after = self._retry_after(payload, headers)
            if status == 202:
                _require_field(payload, "job_id", str,
                               context="submit ticket", status=status)
                _require_field(payload, "state", str,
                               context="submit ticket", status=status)
                return payload
            if status == 429:
                delay = retry_after if retry_after is not None else 1.0
                if time.monotonic() + delay > deadline:
                    raise BackpressureError(
                        payload.get("error", "queue full"), status=status,
                        body=payload, retry_after=retry_after,
                    )
                time.sleep(delay)
                continue
            if status == 503:
                raise ServiceUnavailableError(
                    payload.get("error", f"service unavailable (HTTP {status})"),
                    status=status, body=payload, retry_after=retry_after,
                )
            raise ServiceError(
                payload.get("error", f"submit rejected with HTTP {status}"),
                status=status, body=payload, retry_after=retry_after,
            )

    def submit_array(self, data: np.ndarray, **fields) -> dict:
        """Submit with the array shipped inline (no shared filesystem)."""
        fields["data_b64"] = JobSpec.encode_array(data)
        return self.submit(**fields)

    def cancel(self, job_id: str) -> dict:
        """Cancel a job; returns ``{"job_id", "cancelled", "state"}``.

        ``cancelled`` is ``False`` when the job already finished or is
        running on a backend that cannot stop it (thread execution).
        """
        status, payload = self._request("POST", f"/cancel/{job_id}")
        if status != 200:
            raise ServiceError(payload.get("error", f"HTTP {status}"),
                               status=status, body=payload)
        return payload

    # -- status/result -----------------------------------------------------
    def poll_status(self, job_id: str) -> tuple[int, dict]:
        """One ``GET /status/<id>`` round trip: ``(http status, body)``.

        No interpretation, no polling — the gateway proxies with this.
        """
        return self._request("GET", f"/status/{job_id}")

    def poll_result(self, job_id: str) -> tuple[int, dict]:
        """One ``GET /result/<id>`` round trip: ``(http status, body)``.

        ``202`` means still pending; ``200`` carries the terminal record
        (``state``/``result``/``error``) whatever the outcome.  Unlike
        :meth:`result` this never sleeps and never raises on a failed
        job — callers that need the raw protocol (the gateway's
        result-ack fetch) decide for themselves.
        """
        return self._request("GET", f"/result/{job_id}")

    def status(self, job_id: str) -> dict:
        status, payload = self._request("GET", f"/status/{job_id}")
        if status != 200:
            raise ServiceError(payload.get("error", f"HTTP {status}"),
                               status=status, body=payload)
        return payload

    def result(self, job_id: str, wait: bool = True, timeout: float = 120.0) -> dict:
        """Fetch a job's result, polling until it finishes by default.

        Returns the result payload (the shared schema of
        :mod:`repro.serve.schema`).  Raises :class:`JobFailedError` if
        the job failed or was cancelled, :class:`JobTimeoutError` (a
        ``TimeoutError``) if it is still pending after ``timeout``
        seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            status, payload = self._request("GET", f"/result/{job_id}")
            if status == 200:
                state = _require_field(payload, "state", str,
                                       context="result payload", status=status)
                if state != "done":
                    raise JobFailedError(
                        payload.get("error") or f"job {job_id} {state}",
                        status=status, body=payload,
                    )
                return _require_field(payload, "result", dict,
                                      context="result payload", status=status)
            if status == 202 and wait:
                if time.monotonic() > deadline:
                    raise JobTimeoutError(
                        f"job {job_id} still pending after {timeout}s")
                time.sleep(self.poll_interval)
                continue
            if status == 202:
                return {"state": payload.get("state"), "pending": True}
            raise ServiceError(payload.get("error", f"HTTP {status}"),
                               status=status, body=payload)

    # -- service introspection ---------------------------------------------
    def trace(self, ref: str) -> dict:
        """Span tree for a job id or raw trace id (``GET /trace/<ref>``).

        Returns ``{"trace_id", "job_id", "complete", "spans"}``.  Raises
        :class:`ServiceError` with ``status=404`` when the reference is
        unknown, the trace was never sampled, or it has been evicted.
        """
        status, payload = self._request("GET", f"/trace/{ref}")
        if status != 200:
            raise ServiceError(payload.get("error", f"HTTP {status}"),
                               status=status, body=payload)
        return payload

    def stats(self) -> dict:
        status, payload = self._request("GET", "/stats")
        if status != 200:
            raise ServiceError(f"/stats returned HTTP {status}", status=status)
        return payload

    def health(self) -> dict:
        status, payload = self._request("GET", "/health")
        if status != 200:
            raise ServiceError(f"/health returned HTTP {status}", status=status)
        return payload

    def metrics_text(self) -> str:
        """The raw ``GET /metrics`` body (Prometheus text exposition)."""
        req = urllib.request.Request(f"{self.url}/metrics", method="GET")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            exc.close()
            raise ServiceError(f"/metrics returned HTTP {exc.code}",
                               status=exc.code) from exc
        except urllib.error.URLError as exc:
            raise ServiceUnavailableError(
                f"cannot reach {self.url}: {exc.reason}") from exc

    def metrics(self) -> dict:
        """``/metrics`` parsed into ``{name: [MetricSample, ...]}``."""
        from repro.obs.exposition import parse_prometheus

        return parse_prometheus(self.metrics_text())
