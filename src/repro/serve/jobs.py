"""Typed job records for the compression service.

A :class:`JobSpec` is the *request*: a thin, frozen serialization of the
shared :class:`~repro.api.request.CompressionRequest` type plus the two
scheduling fields only the service cares about (``priority`` and
``max_retries``).  All semantic validation lives in the request type —
``JobSpec`` merely flattens it onto the wire, so a request submitted via
the Python facade, the CLI, or HTTP JSON is the *same object* by the
time the scheduler sees it.  Legacy flat JSON (pre-``options``/
``resources``) is still accepted: the new fields simply default.

A :class:`Job` is the *lifecycle record* the scheduler tracks for it:
state transitions, attempt counts against the retry budget, timestamps,
and the eventual result or error.

Requests are deduplicated by :meth:`JobSpec.coalesce_key` — the same
``(data, compressor, bound-or-target)`` identity the
:class:`~repro.cache.EvalCache` keys individual probes by, lifted to
whole requests: two specs with equal keys describe byte-identical work,
so the scheduler computes one and fans the result to both (see
``repro/serve/scheduler.py``).

Lifecycle::

    queued ──> running ──> done
      │           │  └───> failed      (after the retry budget is spent)
      │           └──────> queued      (retry: attempt < max_retries + 1)
      └──────────────────> cancelled   (only before running)

A job submitted while an identical one is queued/running never enters
the queue: it records ``coalesced_into`` and finishes when its primary
does.
"""

from __future__ import annotations

import enum
import hashlib
import os
import threading
import time
from dataclasses import dataclass, field, fields

import numpy as np

from repro.api.request import CompressionRequest, Resources, encode_array
from repro.errors import RequestError

__all__ = [
    "JobState",
    "JobSpec",
    "Job",
    "PRIORITY_HIGH",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
    "PRIORITY_NAMES",
]

#: Lower numbers run sooner.  Named levels accepted in JSON requests.
PRIORITY_HIGH = -10
PRIORITY_NORMAL = 0
PRIORITY_LOW = 10

#: Wire names for the levels — the one mapping the CLI and the JSON
#: protocol both resolve through.
PRIORITY_NAMES = {
    "high": PRIORITY_HIGH,
    "normal": PRIORITY_NORMAL,
    "low": PRIORITY_LOW,
}

#: Wire keys that belong to the scheduler, not to the request.
_SCHEDULING_FIELDS = ("priority", "max_retries")


class JobState(str, enum.Enum):
    """Where a job is in its lifecycle (values are the wire strings)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        return self in _FINISHED


_FINISHED = frozenset({JobState.DONE, JobState.FAILED, JobState.CANCELLED})


@dataclass(frozen=True)
class JobSpec:
    """One unit of service work: a flattened request plus scheduling.

    Every field except ``priority`` and ``max_retries`` mirrors the
    :class:`~repro.api.request.CompressionRequest` field of the same
    name, and validation is delegated to it — constructing a ``JobSpec``
    *is* constructing the request (exposed via :attr:`request`).

    ``priority`` orders the queue (lower runs sooner; see
    :data:`PRIORITY_HIGH`/:data:`PRIORITY_NORMAL`/:data:`PRIORITY_LOW`).
    ``max_retries`` is the number of *additional* attempts the scheduler
    may make after a failure.
    """

    kind: str
    compressor: str = "sz"
    target_ratio: float | None = None
    error_bound: float | None = None
    tolerance: float = 0.1
    max_error_bound: float | None = None
    input: str | None = None
    data_b64: str | None = None
    output: str | None = None
    priority: int = PRIORITY_NORMAL
    max_retries: int = 1
    stream: bool | None = None
    options: dict = field(default_factory=dict)
    stream_options: dict = field(default_factory=dict)
    resources: Resources = field(default_factory=Resources)

    def __post_init__(self) -> None:
        request = CompressionRequest(
            kind=self.kind,
            compressor=self.compressor,
            options=self.options,
            target_ratio=self.target_ratio,
            error_bound=self.error_bound,
            tolerance=self.tolerance,
            max_error_bound=self.max_error_bound,
            input=self.input,
            data_b64=self.data_b64,
            output=self.output,
            stream=self.stream,
            stream_options=self.stream_options,
            resources=self.resources,
        )
        # Store the canonical (normalised) copies so equality and the
        # wire format are independent of how the caller spelled them.
        object.__setattr__(self, "options", request.options)
        object.__setattr__(self, "stream_options", request.stream_options)
        object.__setattr__(self, "resources", request.resources)
        object.__setattr__(self, "_request", request)
        if isinstance(self.priority, bool) or not isinstance(self.priority, int):
            raise RequestError(f"priority must be an int, got {self.priority!r}")
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise RequestError(f"max_retries must be an int >= 0, got {self.max_retries!r}")

    # -- the shared request ------------------------------------------------
    @property
    def request(self) -> CompressionRequest:
        """The validated :class:`CompressionRequest` this spec serialises."""
        return self._request  # type: ignore[attr-defined]

    @classmethod
    def from_request(
        cls,
        request: CompressionRequest,
        *,
        priority: int = PRIORITY_NORMAL,
        max_retries: int = 1,
    ) -> "JobSpec":
        """Wrap a shared request with the service's scheduling fields."""
        return cls(
            kind=request.kind,
            compressor=request.compressor,
            target_ratio=request.target_ratio,
            error_bound=request.error_bound,
            tolerance=request.tolerance,
            max_error_bound=request.max_error_bound,
            input=request.input,
            data_b64=request.data_b64,
            output=request.output,
            priority=priority,
            max_retries=max_retries,
            stream=request.stream,
            options=request.options,
            stream_options=request.stream_options,
            resources=request.resources,
        )

    # -- data access ------------------------------------------------------
    def load_array(self) -> np.ndarray:
        """Materialise the job's data (inline bytes or ``.npy`` path)."""
        return self.request.load_array()

    @staticmethod
    def encode_array(data: np.ndarray) -> str:
        """Base64-``.npy`` encoding for the ``data_b64`` field."""
        return encode_array(data)

    # -- identity ----------------------------------------------------------
    def data_token(self) -> str:
        """Cheap, stable identity of the job's data for coalescing.

        Inline data hashes its exact bytes (the same digest family
        :func:`repro.cache.keys.fingerprint_array` uses).  Path inputs use
        ``(realpath, size, mtime_ns)`` so a rewritten file stops matching
        without the server having to read it at submit time.
        """
        if self.data_b64 is not None:
            return hashlib.blake2b(self.data_b64.encode("ascii"), digest_size=16).hexdigest()
        path = os.path.realpath(self.input)
        try:
            st = os.stat(path)
            return f"{path}:{st.st_size}:{st.st_mtime_ns}"
        except OSError:
            return path

    def coalesce_key(self) -> str:
        """Request-level dedup key: equal keys describe identical work.

        Everything that changes the computed bytes participates — data
        identity, compressor and its options, targets, tolerances, the
        output path, stream routing and chunking, the memory cap that
        sizes chunks — while scheduling hints (priority, retry budget,
        worker counts) do not: a high- and a low-priority request for
        the same work coalesce.
        """
        parts = (
            self.kind,
            self.compressor,
            repr(sorted(self.options.items())),
            repr(self.target_ratio),
            repr(self.error_bound),
            repr(self.tolerance),
            repr(self.max_error_bound),
            repr(self.stream),
            repr(sorted(self.stream_options.items())),
            repr(self.resources.max_memory),
            self.output or "",
            self.data_token(),
        )
        return hashlib.blake2b("|".join(parts).encode(), digest_size=16).hexdigest()

    # -- wire format -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict: the request serialization + scheduling fields."""
        payload = self.request.to_dict()
        payload["priority"] = self.priority
        payload["max_retries"] = self.max_retries
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        """Build a spec from a JSON request body, rejecting unknown keys.

        Accepts both the legacy flat format (no ``options``/
        ``stream_options``/``resources`` keys — they default) and a full
        :meth:`CompressionRequest.to_dict` body with optional scheduling
        fields on top.
        """
        if not isinstance(payload, dict):
            raise RequestError(f"job spec must be a JSON object, got {type(payload).__name__}")
        request_fields = {f.name for f in fields(CompressionRequest)}
        known = request_fields | set(_SCHEDULING_FIELDS)
        unknown = set(payload) - known
        if unknown:
            raise RequestError(f"unknown job spec fields: {sorted(unknown)}")
        data = dict(payload)
        prio = data.get("priority")
        if isinstance(prio, str):
            try:
                data["priority"] = PRIORITY_NAMES[prio.lower()]
            except KeyError:
                raise RequestError(
                    f"priority must be an int or one of {sorted(PRIORITY_NAMES)}, "
                    f"got {prio!r}"
                ) from None
        if "kind" not in data:
            raise RequestError(
                "job spec requires a kind ('tune', 'compress', 'decompress' or 'stream')"
            )
        scheduling = {k: data.pop(k) for k in _SCHEDULING_FIELDS if k in data}
        return cls.from_request(CompressionRequest.from_dict(data), **scheduling)


@dataclass
class Job:
    """Scheduler-side lifecycle record for one submitted spec.

    Timestamps come in two families.  The ``*_at`` fields are wall-clock
    (``time.time()``) and exist for *display* — operators correlating a
    job with logs need civil time.  The ``*_mono`` fields are their
    ``time.monotonic()`` twins and are the only inputs to *duration*
    arithmetic (queue wait, run time, the latency histograms): wall
    clocks step under NTP corrections and DST, and a duration computed
    across a step is garbage — negative, or hours long for a job that
    ran in milliseconds.
    """

    id: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    submitted_mono: float = field(default_factory=time.monotonic, repr=False)
    started_mono: float | None = field(default=None, repr=False)
    finished_mono: float | None = field(default=None, repr=False)
    attempts: int = 0
    #: Attempts lost to a dying worker *process* (vs. exceptions the job
    #: itself raised); only the process execution backend increments this.
    crashes: int = 0
    result: dict | None = None
    error: str | None = None
    #: Set on followers: the id of the primary job this one coalesced onto.
    coalesced_into: str | None = None
    #: Set on primaries: followers to fan the result out to on completion.
    followers: list["Job"] = field(default_factory=list, repr=False)
    #: Trace identity (set at submit when the scheduler traces): the id
    #: clients correlate logs/spans with, and the root span record.
    trace_id: str | None = None
    trace_root: object = field(default=None, repr=False)
    _finished_event: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def finished(self) -> bool:
        return self.state.finished

    @property
    def queue_wait_seconds(self) -> float | None:
        """Monotonic submit→start wait (``None`` until dispatched)."""
        if self.started_mono is None:
            return None
        return max(0.0, self.started_mono - self.submitted_mono)

    @property
    def run_seconds(self) -> float | None:
        """Monotonic start→finish duration (``None`` until finished)."""
        if self.started_mono is None or self.finished_mono is None:
            return None
        return max(0.0, self.finished_mono - self.started_mono)

    @property
    def total_seconds(self) -> float | None:
        """Monotonic submit→finish latency — what a waiting client felt."""
        if self.finished_mono is None:
            return None
        return max(0.0, self.finished_mono - self.submitted_mono)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._finished_event.wait(timeout)

    def _finish(self, state: JobState, *, result: dict | None = None,
                error: str | None = None) -> None:
        """Terminal transition (scheduler-internal; fires the event)."""
        self.state = state
        self.result = result
        self.error = error
        self.finished_at = time.time()
        self.finished_mono = time.monotonic()
        self._finished_event.set()

    def status_dict(self) -> dict:
        """JSON-ready status record (``/status/<id>`` body)."""
        return {
            "job_id": self.id,
            "kind": self.spec.kind,
            "state": self.state.value,
            "priority": self.spec.priority,
            "attempts": self.attempts,
            "crashes": self.crashes,
            "max_retries": self.spec.max_retries,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_wait_seconds": _round6(self.queue_wait_seconds),
            "run_seconds": _round6(self.run_seconds),
            "total_seconds": _round6(self.total_seconds),
            "coalesced_into": self.coalesced_into,
            "trace_id": self.trace_id,
            "error": self.error,
        }


def _round6(value: float | None) -> float | None:
    return round(value, 6) if value is not None else None
