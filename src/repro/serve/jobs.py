"""Typed job records for the compression service.

A :class:`JobSpec` is the *request*: a frozen, JSON-serialisable
description of one unit of work (tune a bound, or compress to a file).
A :class:`Job` is the *lifecycle record* the scheduler tracks for it:
state transitions, attempt counts against the retry budget, timestamps,
and the eventual result or error.

Requests are deduplicated by :meth:`JobSpec.coalesce_key` — the same
``(data, compressor, bound-or-target)`` identity the
:class:`~repro.cache.EvalCache` keys individual probes by, lifted to
whole requests: two specs with equal keys describe byte-identical work,
so the scheduler computes one and fans the result to both (see
``repro/serve/scheduler.py``).

Lifecycle::

    queued ──> running ──> done
      │           │  └───> failed      (after the retry budget is spent)
      │           └──────> queued      (retry: attempt < max_retries + 1)
      └──────────────────> cancelled   (only before running)

A job submitted while an identical one is queued/running never enters
the queue: it records ``coalesced_into`` and finishes when its primary
does.
"""

from __future__ import annotations

import base64
import enum
import hashlib
import io
import os
import threading
import time
from dataclasses import dataclass, field, fields

import numpy as np

__all__ = [
    "JobState",
    "JobSpec",
    "Job",
    "PRIORITY_HIGH",
    "PRIORITY_NORMAL",
    "PRIORITY_LOW",
    "PRIORITY_NAMES",
]

#: Lower numbers run sooner.  Named levels accepted in JSON requests.
PRIORITY_HIGH = -10
PRIORITY_NORMAL = 0
PRIORITY_LOW = 10

#: Wire names for the levels — the one mapping the CLI and the JSON
#: protocol both resolve through.
PRIORITY_NAMES = {
    "high": PRIORITY_HIGH,
    "normal": PRIORITY_NORMAL,
    "low": PRIORITY_LOW,
}

_KINDS = ("tune", "compress")


class JobState(str, enum.Enum):
    """Where a job is in its lifecycle (values are the wire strings)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        return self in _FINISHED


_FINISHED = frozenset({JobState.DONE, JobState.FAILED, JobState.CANCELLED})


@dataclass(frozen=True)
class JobSpec:
    """One unit of service work, fully described and JSON-serialisable.

    Exactly one of ``input`` (a ``.npy`` path visible to the server) and
    ``data_b64`` (a base64-encoded ``.npy`` byte string shipped inline)
    names the data.  ``kind="tune"`` requires ``target_ratio``;
    ``kind="compress"`` requires ``output`` plus exactly one of
    ``target_ratio``/``error_bound``.

    ``priority`` orders the queue (lower runs sooner; see
    :data:`PRIORITY_HIGH`/:data:`PRIORITY_NORMAL`/:data:`PRIORITY_LOW`).
    ``max_retries`` is the number of *additional* attempts the scheduler
    may make after a failure.  ``stream`` forces (``True``) or forbids
    (``False``) routing through the out-of-core pipeline; ``None`` lets
    the scheduler decide by input size.
    """

    kind: str
    compressor: str = "sz"
    target_ratio: float | None = None
    error_bound: float | None = None
    tolerance: float = 0.1
    max_error_bound: float | None = None
    input: str | None = None
    data_b64: str | None = None
    output: str | None = None
    priority: int = PRIORITY_NORMAL
    max_retries: int = 1
    stream: bool | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if (self.input is None) == (self.data_b64 is None):
            raise ValueError("pass exactly one of input (a path) or data_b64 (inline)")
        if self.kind == "tune":
            if self.target_ratio is None:
                raise ValueError("tune jobs require target_ratio")
            if self.error_bound is not None:
                raise ValueError("tune jobs take target_ratio, not error_bound")
        else:  # compress
            if (self.target_ratio is None) == (self.error_bound is None):
                raise ValueError(
                    "compress jobs require exactly one of target_ratio or error_bound"
                )
            if self.output is None:
                raise ValueError("compress jobs require an output path")
        if self.target_ratio is not None and self.target_ratio <= 0:
            raise ValueError(f"target_ratio must be positive, got {self.target_ratio}")
        if not 0 < self.tolerance < 1:
            raise ValueError(f"tolerance must be in (0, 1), got {self.tolerance}")
        if isinstance(self.priority, bool) or not isinstance(self.priority, int):
            raise ValueError(f"priority must be an int, got {self.priority!r}")
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ValueError(f"max_retries must be an int >= 0, got {self.max_retries!r}")
        if self.stream and self.input is None:
            raise ValueError("stream=True requires a file input, not inline data")

    # -- data access ------------------------------------------------------
    def load_array(self) -> np.ndarray:
        """Materialise the job's data (inline bytes or ``.npy`` path)."""
        if self.data_b64 is not None:
            return np.load(io.BytesIO(base64.b64decode(self.data_b64)), allow_pickle=False)
        return np.load(self.input, allow_pickle=False)

    @staticmethod
    def encode_array(data: np.ndarray) -> str:
        """Base64-``.npy`` encoding for the ``data_b64`` field."""
        buf = io.BytesIO()
        np.save(buf, np.asarray(data), allow_pickle=False)
        return base64.b64encode(buf.getvalue()).decode("ascii")

    # -- identity ----------------------------------------------------------
    def data_token(self) -> str:
        """Cheap, stable identity of the job's data for coalescing.

        Inline data hashes its exact bytes (the same digest family
        :func:`repro.cache.keys.fingerprint_array` uses).  Path inputs use
        ``(realpath, size, mtime_ns)`` so a rewritten file stops matching
        without the server having to read it at submit time.
        """
        if self.data_b64 is not None:
            return hashlib.blake2b(self.data_b64.encode("ascii"), digest_size=16).hexdigest()
        path = os.path.realpath(self.input)
        try:
            st = os.stat(path)
            return f"{path}:{st.st_size}:{st.st_mtime_ns}"
        except OSError:
            return path

    def coalesce_key(self) -> str:
        """Request-level dedup key: equal keys describe identical work.

        Everything that changes the computed bytes participates — data
        identity, compressor, targets, tolerances, the output path —
        while scheduling hints (priority, retry budget) do not: a high-
        and a low-priority request for the same work coalesce.
        """
        parts = (
            self.kind,
            self.compressor,
            repr(self.target_ratio),
            repr(self.error_bound),
            repr(self.tolerance),
            repr(self.max_error_bound),
            repr(self.stream),
            self.output or "",
            self.data_token(),
        )
        return hashlib.blake2b("|".join(parts).encode(), digest_size=16).hexdigest()

    # -- wire format -------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict (defaults included, for transparency in logs)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        """Build a spec from a JSON request body, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise ValueError(f"job spec must be a JSON object, got {type(payload).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown job spec fields: {sorted(unknown)}")
        data = dict(payload)
        prio = data.get("priority")
        if isinstance(prio, str):
            try:
                data["priority"] = PRIORITY_NAMES[prio.lower()]
            except KeyError:
                raise ValueError(
                    f"priority must be an int or one of {sorted(PRIORITY_NAMES)}, "
                    f"got {prio!r}"
                ) from None
        if "kind" not in data:
            raise ValueError("job spec requires a kind ('tune' or 'compress')")
        return cls(**data)


@dataclass
class Job:
    """Scheduler-side lifecycle record for one submitted spec."""

    id: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    attempts: int = 0
    #: Attempts lost to a dying worker *process* (vs. exceptions the job
    #: itself raised); only the process execution backend increments this.
    crashes: int = 0
    result: dict | None = None
    error: str | None = None
    #: Set on followers: the id of the primary job this one coalesced onto.
    coalesced_into: str | None = None
    #: Set on primaries: followers to fan the result out to on completion.
    followers: list["Job"] = field(default_factory=list, repr=False)
    _finished_event: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def finished(self) -> bool:
        return self.state.finished

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._finished_event.wait(timeout)

    def _finish(self, state: JobState, *, result: dict | None = None,
                error: str | None = None) -> None:
        """Terminal transition (scheduler-internal; fires the event)."""
        self.state = state
        self.result = result
        self.error = error
        self.finished_at = time.time()
        self._finished_event.set()

    def status_dict(self) -> dict:
        """JSON-ready status record (``/status/<id>`` body)."""
        return {
            "job_id": self.id,
            "kind": self.spec.kind,
            "state": self.state.value,
            "priority": self.spec.priority,
            "attempts": self.attempts,
            "crashes": self.crashes,
            "max_retries": self.spec.max_retries,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "coalesced_into": self.coalesced_into,
            "error": self.error,
        }
