"""File persistence for compressed fields.

``.frz`` files wrap a compressor payload with enough metadata (compressor
registry name, array geometry, the tuned error bound, arbitrary user
key/values) that ``load`` can reconstruct the array with no other context —
the random-access-per-time-step pattern the paper's users ask for
(Sec. II-B: "users often require random-access decompression across time
steps").  :class:`Archive` packs many named fields/steps into one file
with per-entry random access.
"""

from repro.io.files import Archive, load_field, read_info, save_field

__all__ = ["Archive", "load_field", "read_info", "save_field"]
