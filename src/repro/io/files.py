"""``.frz`` single-field files and multi-entry archives.

Layout reuses :class:`repro.codecs.container.Container`:

* single field — sections ``meta`` (JSON: compressor name, error bound,
  original nbytes, user metadata) and ``payload`` (the compressor bytes);
* archive — section ``index`` (JSON list of entry names + their meta) and
  one payload section per entry, so individual time-steps decompress
  without touching the rest (the paper's random-access requirement).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.codecs.container import Container
from repro.pressio.compressor import CompressedField, Compressor
from repro.pressio.registry import make_compressor

__all__ = ["save_field", "load_field", "read_info", "Archive"]

_FORMAT_VERSION = 1


def _atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write via a same-directory temp file + ``os.replace``.

    Readers (and racing writers — e.g. a cancelled service job whose
    worker process finishes anyway while its resubmission recomputes the
    same output) always observe either the old file or one complete new
    file, never interleaved or truncated bytes.
    """
    target = Path(path)
    fd, tmp = tempfile.mkstemp(dir=target.parent,
                               prefix=f".{target.name}.", suffix=".tmp")
    try:
        # mkstemp creates 0600 and os.replace keeps the temp file's mode;
        # match what a plain open() would have produced (or preserve the
        # mode of the file being replaced) so saving never tightens
        # permissions as a side effect.
        try:
            mode = os.stat(target).st_mode & 0o777
        except OSError:
            umask = os.umask(0)
            os.umask(umask)
            mode = 0o666 & ~umask
        os.fchmod(fd, mode)
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # repro: ignore[EXC002] cleanup of a temp we may not have made
            pass
        raise


def _meta_dict(
    compressor: Compressor, payload: CompressedField, extra: dict | None
) -> dict:
    return {
        "format_version": _FORMAT_VERSION,
        "compressor": compressor.name,
        "mode": compressor.mode,
        "error_bound": compressor.error_bound,
        "original_nbytes": payload.original_nbytes,
        "ratio": payload.ratio,
        "user": extra or {},
    }


def save_field(
    path: str | Path,
    data_or_payload: np.ndarray | CompressedField,
    compressor: Compressor,
    metadata: dict | None = None,
) -> CompressedField:
    """Compress (if given an array) and persist one field.

    Returns the payload that was written.
    """
    if isinstance(data_or_payload, CompressedField):
        payload = data_or_payload
    else:
        payload = compressor.compress(np.asarray(data_or_payload))

    outer = Container()
    outer.add("meta", json.dumps(_meta_dict(compressor, payload, metadata)).encode())
    outer.add("payload", payload.payload)
    _atomic_write_bytes(path, outer.tobytes())
    return payload


def read_info(path: str | Path) -> dict:
    """Read a ``.frz`` file's metadata without decompressing."""
    outer = Container.frombytes(Path(path).read_bytes())
    return json.loads(outer.get("meta").decode())


def load_field(path: str | Path) -> tuple[np.ndarray, dict]:
    """Decompress a ``.frz`` file; returns (array, metadata)."""
    outer = Container.frombytes(Path(path).read_bytes())
    meta = json.loads(outer.get("meta").decode())
    compressor = make_compressor(meta["compressor"])
    data = compressor.decompress(outer.get("payload"))
    return data, meta


class Archive:
    """Multi-entry compressed container with per-entry random access.

    Usage::

        with Archive.create("run.frza") as ar:
            ar.add("CLOUD/t000", step0, compressor)
            ar.add("CLOUD/t001", step1, compressor)
        names = Archive.open("run.frza").names()
        data, meta = Archive.open("run.frza").load("CLOUD/t001")
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._entries: dict[str, tuple[dict, bytes]] = {}
        self._writable = False

    # -- writing ---------------------------------------------------------
    @classmethod
    def create(cls, path: str | Path) -> "Archive":
        ar = cls(path)
        ar._writable = True
        return ar

    def add(
        self,
        name: str,
        data_or_payload: np.ndarray | CompressedField,
        compressor: Compressor,
        metadata: dict | None = None,
    ) -> CompressedField:
        """Compress and stage one entry (written on close/exit)."""
        if not self._writable:
            raise PermissionError("archive opened read-only")
        if name in self._entries:
            raise KeyError(f"duplicate archive entry {name!r}")
        if isinstance(data_or_payload, CompressedField):
            payload = data_or_payload
        else:
            payload = compressor.compress(np.asarray(data_or_payload))
        self._entries[name] = (
            _meta_dict(compressor, payload, metadata),
            payload.payload,
        )
        return payload

    def close(self) -> None:
        """Flush staged entries to disk (writable archives only)."""
        if not self._writable:
            return
        outer = Container()
        index = {name: meta for name, (meta, _) in self._entries.items()}
        outer.add("index", json.dumps({"format_version": _FORMAT_VERSION,
                                       "entries": index}).encode())
        for name, (_, blob) in self._entries.items():
            outer.add(f"entry:{name}", blob)
        _atomic_write_bytes(self._path, outer.tobytes())

    def __enter__(self) -> "Archive":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading ---------------------------------------------------------
    @classmethod
    def open(cls, path: str | Path) -> "Archive":
        ar = cls(path)
        outer = Container.frombytes(ar._path.read_bytes())
        index = json.loads(outer.get("index").decode())
        for name, meta in index["entries"].items():
            ar._entries[name] = (meta, outer.get(f"entry:{name}"))
        return ar

    def names(self) -> list[str]:
        return list(self._entries)

    def info(self, name: str) -> dict:
        return self._entries[name][0]

    def load(self, name: str) -> tuple[np.ndarray, dict]:
        """Decompress one entry (others are untouched)."""
        meta, blob = self._entries[name]
        compressor = make_compressor(meta["compressor"])
        return compressor.decompress(blob), meta
