"""One-call quality evaluation: compress, decompress, measure everything.

Produces the numbers the paper reports per figure: compression ratio, bit
rate, PSNR, max error, SSIM, ACF(error), and wall times.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.metrics import (
    bit_rate,
    error_acf,
    max_abs_error,
    psnr,
    rmse,
    ssim,
)
from repro.pressio.compressor import Compressor

__all__ = ["CompressionRecord", "evaluate"]


@dataclass(frozen=True)
class CompressionRecord:
    """Quality + cost record for one compression run."""

    compressor: str
    error_bound: float
    ratio: float
    bit_rate: float
    psnr: float
    rmse: float
    max_error: float
    ssim: float
    acf_error: float
    compress_seconds: float
    decompress_seconds: float
    nbytes: int

    def row(self) -> str:
        """Fixed-width table row (benchmarks print these)."""
        return (
            f"{self.compressor:<16} e={self.error_bound:<12.4e} "
            f"CR={self.ratio:<8.2f} bitrate={self.bit_rate:<6.3f} "
            f"PSNR={self.psnr:<7.2f} maxerr={self.max_error:<10.3e} "
            f"SSIM={self.ssim:<7.4f} ACF={self.acf_error:<7.3f}"
        )


def evaluate(
    compressor: Compressor,
    data: np.ndarray,
    compute_ssim: bool = True,
) -> CompressionRecord:
    """Compress + decompress ``data`` and measure the paper's metric suite."""
    data = np.asarray(data)
    t0 = time.perf_counter()
    compressed = compressor.compress(data)
    t1 = time.perf_counter()
    recon = compressor.decompress(compressed)
    t2 = time.perf_counter()

    return CompressionRecord(
        compressor=compressor.describe(),
        error_bound=compressor.error_bound,
        ratio=compressed.ratio,
        bit_rate=bit_rate(data, compressed.nbytes),
        psnr=psnr(data, recon),
        rmse=rmse(data, recon),
        max_error=max_abs_error(data, recon),
        ssim=ssim(data, recon) if compute_ssim and data.ndim <= 3 else float("nan"),
        acf_error=error_acf(data, recon),
        compress_seconds=t1 - t0,
        decompress_seconds=t2 - t1,
        nbytes=compressed.nbytes,
    )
