"""Shared array header (shape + dtype) serialisation for compressor payloads."""

from __future__ import annotations

import numpy as np

from repro.codecs.varint import decode_uvarints, encode_uvarints

__all__ = ["encode_array_header", "decode_array_header"]

_DTYPES = ["float32", "float64"]


def encode_array_header(data: np.ndarray) -> bytes:
    """Serialise dtype code, ndim, and shape as varints."""
    name = data.dtype.name
    try:
        code = _DTYPES.index(name)
    except ValueError:
        raise TypeError(
            f"unsupported dtype {name!r}; compressors take float32/float64"
        ) from None
    fields = [code, data.ndim, *data.shape]
    return encode_uvarints(np.asarray(fields, dtype=np.uint64))


def decode_array_header(blob: bytes, offset: int = 0) -> tuple[np.dtype, tuple[int, ...], int]:
    """Parse a header; returns (dtype, shape, next offset)."""
    (code, ndim), off = decode_uvarints(blob, 2, offset)
    shape, off = decode_uvarints(blob, int(ndim), off)
    return np.dtype(_DTYPES[int(code)]), tuple(int(s) for s in shape), off
