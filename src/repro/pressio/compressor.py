"""Abstract lossy-compressor interface.

A :class:`Compressor` is an immutable configuration object: changing the
error bound produces a *new* instance via :meth:`with_error_bound`.  This is
what lets FRaZ's search treat compression as a pure function of the bound
(the paper requires a "deterministic function" for the optimizer) and lets
the parallel orchestrator ship configurations across processes safely —
the paper notes SZ/MGARD's C implementations could not be multithreaded
because of global state; value-semantics configurations avoid that entirely.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = ["Compressor", "CompressedField", "CompressorOptionError"]


class CompressorOptionError(TypeError):
    """A compressor was configured with options it does not understand.

    Raised instead of the factory's raw ``TypeError`` so the message
    names the compressor and lists the options it *does* accept (the
    libpressio-style introspection surface of :meth:`Compressor.get_options`).
    """

    def __init__(self, compressor: str, message: str, valid_options=()):
        detail = f"compressor {compressor!r}: {message}"
        if valid_options:
            detail += f" (valid options: {sorted(valid_options)})"
        super().__init__(detail)
        self.compressor = compressor
        self.valid_options = tuple(sorted(valid_options))


@dataclass(frozen=True)
class CompressedField:
    """A compressed payload plus the bookkeeping FRaZ needs.

    ``nbytes`` is the serialised payload size (what compression ratio is
    measured against); ``original_nbytes`` the input size.
    """

    payload: bytes
    original_nbytes: int

    @property
    def nbytes(self) -> int:
        return len(self.payload)

    @property
    def ratio(self) -> float:
        """Compression ratio ``rho_r`` achieved by this payload."""
        if self.nbytes == 0:
            return float("inf")
        return self.original_nbytes / self.nbytes


class Compressor(ABC):
    """Error-controlled lossy compressor with value semantics.

    Subclasses are frozen dataclasses (or otherwise immutable); every
    configuration knob is a constructor argument.
    """

    #: registry name, e.g. ``"sz"``; set by subclasses.
    name: str = ""

    #: error-control mode: ``"abs"`` (absolute bound) or ``"rate"``
    #: (fixed bits per value — ZFP's fixed-rate mode has no bound).
    mode: str = "abs"

    #: dimensionalities this compressor supports (MGARD: 2D/3D only).
    supported_ndims: tuple[int, ...] = (1, 2, 3)

    # -- core operations -------------------------------------------------
    @abstractmethod
    def compress(self, data: np.ndarray) -> CompressedField:
        """Compress ``data`` under the current configuration."""

    @abstractmethod
    def decompress(self, field: CompressedField | bytes) -> np.ndarray:
        """Reconstruct the array from a payload produced by :meth:`compress`."""

    # -- error-bound configuration ---------------------------------------
    @property
    @abstractmethod
    def error_bound(self) -> float:
        """The current error-control parameter (bound, or rate in rate mode)."""

    @abstractmethod
    def with_error_bound(self, error_bound: float) -> "Compressor":
        """A copy of this compressor with a different error-control value."""

    # -- option introspection (libpressio-style) -------------------------
    def get_options(self) -> dict:
        """Current configuration as a plain ``{name: value}`` dict.

        Mirrors libpressio's ``get_options``: every constructor knob of a
        (frozen-dataclass) compressor is reported, so callers can discover
        what :meth:`set_options` accepts without reading the source.
        """
        if dataclasses.is_dataclass(self):
            return {
                f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)
                if f.init
            }
        return {"error_bound": self.error_bound}

    def set_options(self, **options) -> "Compressor":
        """A reconfigured copy of this compressor (value semantics).

        Unknown option names raise :class:`CompressorOptionError` listing
        the valid ones — configurations stay immutable, so this returns a
        *new* instance rather than mutating ``self``.
        """
        if not options:
            return self
        valid = self.get_options()
        unknown = sorted(set(options) - set(valid))
        if unknown:
            raise CompressorOptionError(
                self.name, f"unknown option(s) {unknown}", valid
            )
        if dataclasses.is_dataclass(self):
            return dataclasses.replace(self, **options)
        if set(options) == {"error_bound"}:
            return self.with_error_bound(options["error_bound"])
        raise CompressorOptionError(  # pragma: no cover - all built-ins are dataclasses
            self.name, "non-dataclass compressor only supports error_bound", valid
        )

    def capabilities(self) -> dict:
        """JSON-ready description of what this compressor supports.

        Covers the registry name, the error-control mode, the accepted
        dimensionalities, and the full option dict with current values.
        """
        return {
            "name": self.name,
            "mode": self.mode,
            "supported_ndims": list(self.supported_ndims),
            "options": self.get_options(),
        }

    # -- search-range defaults -------------------------------------------
    def default_bound_range(self, data: np.ndarray) -> tuple[float, float]:
        """Default error-bound search interval for FRaZ.

        The upper end is "the maximum allowed level of an error bound by the
        compressor" (Sec. V-B3) — for absolute bounds, the full value range
        (a bound that wide permits collapsing the field to a constant).  The
        lower end is a tiny positive fraction of the range, since a zero
        bound degenerates to lossless.
        """
        data = np.asarray(data)
        span = float(data.max() - data.min()) if data.size else 1.0
        if span <= 0.0:
            span = 1.0
        return (span * 1e-9, span)

    # -- capability checks -------------------------------------------------
    def supports(self, data: np.ndarray) -> bool:
        """Whether this compressor can handle the array's dimensionality."""
        return np.asarray(data).ndim in self.supported_ndims

    def check_supported(self, data: np.ndarray) -> None:
        ndim = np.asarray(data).ndim
        if ndim not in self.supported_ndims:
            raise ValueError(
                f"{self.name} supports {self.supported_ndims}-D data, got {ndim}-D"
            )

    # -- convenience -------------------------------------------------------
    def roundtrip(self, data: np.ndarray) -> tuple[CompressedField, np.ndarray]:
        """Compress then decompress; returns (payload, reconstruction)."""
        field = self.compress(data)
        return field, self.decompress(field)

    def describe(self) -> str:
        """``name:mode`` label used in the paper's plots (e.g. ``sz:abs``)."""
        return f"{self.name}:{self.mode}"
