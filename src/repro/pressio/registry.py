"""Name-based compressor construction.

Mirrors libpressio's plugin registry: benchmarks and user code say
``make_compressor("sz", error_bound=1e-3)`` and never import compressor
internals.  Compressor subpackages self-register on import.
"""

from __future__ import annotations

from typing import Callable

from repro.pressio.compressor import Compressor

__all__ = ["register_compressor", "make_compressor", "available_compressors"]

_FACTORIES: dict[str, Callable[..., Compressor]] = {}


def register_compressor(name: str, factory: Callable[..., Compressor]) -> None:
    """Register a compressor factory under ``name``."""
    if name in _FACTORIES:
        raise ValueError(f"compressor {name!r} already registered")
    _FACTORIES[name] = factory


def make_compressor(name: str, **options) -> Compressor:
    """Instantiate a registered compressor with keyword options."""
    _ensure_builtin_imports()
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown compressor {name!r}; available: {available_compressors()}"
        ) from None
    return factory(**options)


def available_compressors() -> list[str]:
    """Sorted names of registered compressors."""
    _ensure_builtin_imports()
    return sorted(_FACTORIES)


def _ensure_builtin_imports() -> None:
    """Import built-in compressor packages so they self-register."""
    import importlib

    for pkg in ("repro.sz", "repro.zfp", "repro.mgard"):
        try:
            importlib.import_module(pkg)
        except ModuleNotFoundError as exc:
            # Tolerate partially-built source trees (e.g. during bootstrap),
            # but only for the compressor packages themselves.
            if exc.name != pkg:
                raise
