"""Name-based compressor construction and option introspection.

Mirrors libpressio's plugin registry: benchmarks and user code say
``make_compressor("sz", error_bound=1e-3)`` and never import compressor
internals.  Compressor subpackages self-register on import.

The registry is also the introspection point for the unified request API
(:mod:`repro.api`): :func:`compressor_option_names` reports what keyword
options a compressor accepts (from its factory signature), and
:func:`describe_compressor` returns the full libpressio-style
capabilities dict of a default-configured instance.  A misspelled option
never surfaces as a raw ``TypeError`` from deep inside the factory —
:func:`make_compressor` raises :class:`CompressorOptionError` naming the
compressor and its valid options instead.
"""

from __future__ import annotations

import inspect
from typing import Callable

from repro.pressio.compressor import Compressor, CompressorOptionError

__all__ = [
    "register_compressor",
    "make_compressor",
    "available_compressors",
    "compressor_option_names",
    "describe_compressor",
    "CompressorOptionError",
]

_FACTORIES: dict[str, Callable[..., Compressor]] = {}
_OPTION_NAMES: dict[str, tuple[str, ...] | None] = {}


def register_compressor(name: str, factory: Callable[..., Compressor]) -> None:
    """Register a compressor factory under ``name``."""
    if name in _FACTORIES:
        raise ValueError(f"compressor {name!r} already registered")
    _FACTORIES[name] = factory
    _OPTION_NAMES.pop(name, None)


def _factory(name: str) -> Callable[..., Compressor]:
    _ensure_builtin_imports()
    try:
        return _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown compressor {name!r}; available: {available_compressors()}"
        ) from None


def compressor_option_names(name: str) -> tuple[str, ...] | None:
    """Keyword options ``make_compressor(name, ...)`` accepts.

    Read from the factory signature (for the built-in frozen-dataclass
    compressors that is exactly the constructor field list).  Returns
    ``None`` when the factory takes ``**kwargs`` and the names cannot be
    known statically.  Raises :class:`KeyError` for unknown compressors.
    """
    factory = _factory(name)
    if name not in _OPTION_NAMES:
        try:
            params = inspect.signature(factory).parameters.values()
        except (TypeError, ValueError):  # pragma: no cover - C callables only
            _OPTION_NAMES[name] = None
        else:
            if any(p.kind is p.VAR_KEYWORD for p in params):
                _OPTION_NAMES[name] = None
            else:
                _OPTION_NAMES[name] = tuple(
                    p.name
                    for p in params
                    if p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
                )
    return _OPTION_NAMES[name]


def make_compressor(name: str, **options) -> Compressor:
    """Instantiate a registered compressor with keyword options.

    Unknown option names raise :class:`CompressorOptionError` carrying
    the compressor name and its valid options, so a typo like
    ``make_compressor("sz", typo_option=1)`` is diagnosable without
    reading the factory source.
    """
    factory = _factory(name)
    valid = compressor_option_names(name)
    if valid is not None:
        unknown = sorted(set(options) - set(valid))
        if unknown:
            raise CompressorOptionError(name, f"unknown option(s) {unknown}", valid)
    try:
        return factory(**options)
    except TypeError as exc:
        # Signature-compatible call that the factory still rejected
        # (e.g. a positional-only quirk): keep the diagnosis attached.
        raise CompressorOptionError(name, str(exc), valid or ()) from exc


def describe_compressor(name: str) -> dict:
    """Capabilities dict of a default-configured instance (JSON-ready)."""
    return make_compressor(name).capabilities()


def available_compressors() -> list[str]:
    """Sorted names of registered compressors."""
    _ensure_builtin_imports()
    return sorted(_FACTORIES)


def _ensure_builtin_imports() -> None:
    """Import built-in compressor packages so they self-register."""
    import importlib

    for pkg in ("repro.sz", "repro.zfp", "repro.mgard"):
        try:
            importlib.import_module(pkg)
        except ModuleNotFoundError as exc:
            # Tolerate partially-built source trees (e.g. during bootstrap),
            # but only for the compressor packages themselves.
            if exc.name != pkg:
                raise
