"""The closure FRaZ optimises: ``e -> rho_r(D, e)``.

Sec. V-B2: "we created a closure for each compressor, rho_r(D_{f,t}, e),
that transformed its interface including a dataset D and parameters theta
into a function accepting only the error bound e."

:class:`RatioFunction` adds what a search loop needs on top of the bare
closure: memoisation (the optimizer may revisit bounds), an evaluation
counter (iteration budgets, Fig. 7's cost accounting), and a full history of
``(e, rho_r, nbytes)`` observations so the training algorithm can report the
*closest* observed ratio when the target is infeasible (Algorithm 2, lines
17-25).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.pressio.compressor import Compressor

__all__ = ["RatioFunction", "Observation"]


@dataclass(frozen=True)
class Observation:
    """One compressor evaluation during a search."""

    error_bound: float
    ratio: float
    nbytes: int
    seconds: float


@dataclass
class RatioFunction:
    """Memoised ``e -> rho_r`` closure over one (compressor, dataset) pair."""

    compressor: Compressor
    data: np.ndarray
    history: list[Observation] = field(default_factory=list)
    _cache: dict[float, float] = field(default_factory=dict)
    compress_seconds: float = 0.0

    def __call__(self, error_bound: float) -> float:
        e = float(error_bound)
        if e in self._cache:
            return self._cache[e]
        start = time.perf_counter()
        compressed = self.compressor.with_error_bound(e).compress(self.data)
        elapsed = time.perf_counter() - start
        ratio = compressed.ratio
        self.compress_seconds += elapsed
        self.history.append(Observation(e, ratio, compressed.nbytes, elapsed))
        self._cache[e] = ratio
        return ratio

    @property
    def evaluations(self) -> int:
        """Number of *distinct* compressor invocations so far."""
        return len(self.history)

    def best_observation(self, target_ratio: float) -> Observation | None:
        """The observation whose ratio is closest to ``target_ratio``.

        This is what FRaZ reports when no observation lands inside the
        acceptable band (Sec. V-B3: "FRaZ will return the closest point that
        it observes to the target").
        """
        if not self.history:
            return None
        return min(self.history, key=lambda obs: (obs.ratio - target_ratio) ** 2)
