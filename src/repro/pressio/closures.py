"""The closure FRaZ optimises: ``e -> rho_r(D, e)``.

Sec. V-B2: "we created a closure for each compressor, rho_r(D_{f,t}, e),
that transformed its interface including a dataset D and parameters theta
into a function accepting only the error bound e."

:class:`RatioFunction` adds what a search loop needs on top of the bare
closure: memoisation (the optimizer may revisit bounds), an evaluation
counter (iteration budgets, Fig. 7's cost accounting), and a full history of
``(e, rho_r, nbytes)`` observations so the training algorithm can report the
*closest* observed ratio when the target is infeasible (Algorithm 2, lines
17-25).

When a shared :class:`~repro.cache.EvalCache` is attached, it is consulted
before the compressor: probes another worker, time-step or baseline already
paid for come back free, and the hit/miss split is tracked per closure so
result records can report how much work the cache absorbed.  Bounds are
normalised (:func:`repro.cache.normalize_bound`) so the local memo, the
shared cache and the disk tier all agree on keys.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.cache.evalcache import CacheEntry, EvalCache
from repro.cache.keys import normalize_bound
from repro.obs.trace import span as _trace_span
from repro.pressio.compressor import Compressor

__all__ = ["RatioFunction"]


@dataclass(frozen=True)
class Observation:
    """One compressor evaluation during a search."""

    error_bound: float
    ratio: float
    nbytes: int
    seconds: float


@dataclass
class RatioFunction:
    """Memoised ``e -> rho_r`` closure over one (compressor, dataset) pair."""

    compressor: Compressor
    data: np.ndarray
    cache: EvalCache | None = None
    history: list[Observation] = field(default_factory=list)
    _cache: dict[float, float] = field(default_factory=dict)
    compress_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    def __call__(self, error_bound: float) -> float:
        e = normalize_bound(error_bound)
        if e in self._cache:
            # Memo hits are free re-reads of an observation already in
            # the history — no span, or traces of revisiting searches
            # would double-count iterations.
            return self._cache[e]
        # One span per genuine search iteration: this closure is the
        # single point every tuning algorithm funnels probes through, so
        # tagging it here makes any trace a convergence log.
        with _trace_span("search_iteration") as sp:
            iteration = len(self.history)
            if self.cache is not None:
                entry, was_hit = self.cache.evaluate(self.compressor, self.data, e)
                elapsed = 0.0 if was_hit else entry.seconds
                if was_hit:
                    self.cache_hits += 1
                else:
                    self.cache_misses += 1
                if sp.is_recording:
                    sp.set_attr("cache_hit", was_hit)
            else:
                start = time.perf_counter()
                compressed = self.compressor.with_error_bound(e).compress(self.data)
                elapsed = time.perf_counter() - start
                entry = CacheEntry(compressed.ratio, compressed.nbytes, elapsed)
                self.cache_misses += 1
            self.compress_seconds += elapsed
            self.history.append(Observation(e, entry.ratio, entry.nbytes, elapsed))
            self._cache[e] = entry.ratio
            if sp.is_recording:
                sp.set_attr("bound", e)
                sp.set_attr("ratio", entry.ratio)
                sp.set_attr("iteration", iteration)
            return entry.ratio

    @property
    def evaluations(self) -> int:
        """Number of *distinct* probes so far (cache hits included)."""
        return len(self.history)

    def best_observation(self, target_ratio: float) -> Observation | None:
        """The observation whose ratio is closest to ``target_ratio``.

        This is what FRaZ reports when no observation lands inside the
        acceptable band (Sec. V-B3: "FRaZ will return the closest point that
        it observes to the target").
        """
        if not self.history:
            return None
        return min(self.history, key=lambda obs: (obs.ratio - target_ratio) ** 2)
