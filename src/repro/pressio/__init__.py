"""Libpressio-analog abstraction layer (paper ref. [34]).

The paper built *libpressio* precisely so FRaZ could treat SZ, ZFP and MGARD
uniformly: "a generic interface for lossy compressors that abstracts between
their differences so that we could write one implementation of the framework"
(Sec. V-B2).  This package is that middle layer:

* :class:`repro.pressio.Compressor` — the abstract interface every lossy
  compressor implements (compress/decompress plus error-bound configuration).
* :mod:`repro.pressio.registry` — name-based construction
  (``make_compressor("sz", error_bound=1e-3)``).
* :class:`repro.pressio.RatioFunction` — the closure ``e -> rho_r(D, e)``
  FRaZ optimises, with call counting and memoisation.
* :func:`repro.pressio.evaluate` — one-stop compress/decompress quality
  report used by the benchmarks.
"""

from repro.pressio.arrayio import decode_array_header, encode_array_header
from repro.pressio.closures import RatioFunction
from repro.pressio.compressor import (
    CompressedField,
    Compressor,
    CompressorOptionError,
)
from repro.pressio.evaluation import CompressionRecord, evaluate
from repro.pressio.registry import (
    available_compressors,
    compressor_option_names,
    describe_compressor,
    make_compressor,
    register_compressor,
)

__all__ = [
    "CompressedField",
    "CompressionRecord",
    "Compressor",
    "CompressorOptionError",
    "RatioFunction",
    "available_compressors",
    "compressor_option_names",
    "decode_array_header",
    "describe_compressor",
    "encode_array_header",
    "evaluate",
    "make_compressor",
    "register_compressor",
]
