"""Consistent-hash ring: route coalesce keys to worker nodes.

Routing identical requests to the same shard is what keeps the service's
two big cost-savers effective once there is more than one node: the
per-shard coalescing registry only deduplicates requests it actually
sees, and the per-shard :class:`~repro.cache.EvalCache` only answers
probes it has already paid for.  A consistent-hash ring gives that
stickiness *and* bounds the damage of membership churn: when a node
joins or leaves, only the keys in the arc it owns move (expected
``1/N`` of the keyspace), instead of the near-total reshuffle a
``hash(key) % N`` table suffers.

Implementation is the classic virtual-node ring: each node is hashed
onto the ring at ``replicas`` points (``blake2b(node_id + "#" + i)``),
and a key routes to the first ring point clockwise from
``blake2b(key)``.  More replicas flatten the per-node share variance
(``tests/gateway/test_ring.py`` holds 64 replicas to a ±60% band around
fair share); the ring is a sorted list + ``bisect``, so a lookup is
O(log(N·replicas)).

Nodes can be *present but unroutable* (draining or dead): lookups take
an ``exclude`` set and keep walking clockwise past excluded owners, so
membership changes of state don't move keys between the remaining
routable nodes any more than a removal would.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from collections.abc import Iterable

__all__ = ["HashRing", "DEFAULT_REPLICAS"]

#: Virtual points per node; enough to hold per-node share within
#: tolerance (see tests/gateway/test_ring.py) while keeping the ring
#: small.
DEFAULT_REPLICAS = 64


def hash_key(key: str) -> int:
    """Position of ``key`` on the ring (stable across processes/runs)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Deterministic consistent-hash ring over string node ids.

    Not thread-safe by itself — the owning
    :class:`~repro.gateway.registry.NodeRegistry` serialises mutation
    and lookup under its own lock.
    """

    def __init__(self, replicas: int = DEFAULT_REPLICAS) -> None:
        if not isinstance(replicas, int) or replicas < 1:
            raise ValueError(f"replicas must be an int >= 1, got {replicas!r}")
        self.replicas = replicas
        self._points: list[tuple[int, str]] = []  # sorted (position, node_id)
        self._nodes: set[str] = set()

    # -- membership --------------------------------------------------------
    def add(self, node_id: str) -> None:
        """Add a node's virtual points (idempotent)."""
        if node_id in self._nodes:
            return
        self._nodes.add(node_id)
        for i in range(self.replicas):
            self._points.append((hash_key(f"{node_id}#{i}"), node_id))
        self._points.sort()

    def remove(self, node_id: str) -> None:
        """Remove a node's virtual points (idempotent)."""
        if node_id not in self._nodes:
            return
        self._nodes.discard(node_id)
        self._points = [p for p in self._points if p[1] != node_id]

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    # -- lookup ------------------------------------------------------------
    def lookup(self, key: str, exclude: Iterable[str] = ()) -> str | None:
        """The node owning ``key``, skipping ``exclude``; ``None`` if none.

        Walks clockwise from the key's position past points owned by
        excluded nodes, wrapping around the ring once.  With no routable
        node at all, returns ``None`` (the gateway maps that to a 503).
        """
        if not self._points:
            return None
        excluded = set(exclude)
        start = bisect_right(self._points, (hash_key(key), "￿"))
        n = len(self._points)
        for step in range(n):
            _, node_id = self._points[(start + step) % n]
            if node_id not in excluded:
                return node_id
        return None
