"""Stdlib HTTP front-end for the gateway tier.

Same dependency-free :class:`http.server.ThreadingHTTPServer` stack as
the node-side service — the gateway speaks the *same client protocol*
(``/submit``, ``/status``, ``/result``, ``/stats``, ``/metrics``,
``/health``), so a :class:`~repro.serve.client.ServiceClient` pointed at
a gateway works unchanged, plus the fleet-facing control plane.

Client-facing endpoints
-----------------------
``POST /submit``          validate, route by coalesce key, forward to the
                          owning shard → ``202 {"job_id", "state",
                          "node", "coalesced_into"}``; ``400`` invalid
                          spec; ``429`` + ``Retry-After`` when the owning
                          shard is backpressured; ``503`` when no node is
                          routable.
``GET /status/<id>``      gateway routing record (+ live node view).
``GET /result/<id>``      cached/proxied result; ``202`` while pending
                          (including mid-failover).
``GET /trace/<id>``       stitched span tree: gateway spans merged with
                          the owning shard's (``404`` when unknown,
                          unsampled, or evicted).
``GET /stats``            fleet membership, routing counters, metrics.
``GET /metrics``          Prometheus text (``repro_gateway_*``).
``GET /health``           liveness probe (includes the package version).

Submits may carry a W3C ``traceparent`` header; the extracted context
ties the whole routed journey into the caller's trace, and the 202
ticket reports the ``trace_id`` either way.

Fleet-facing endpoints (worker nodes + operators)
-------------------------------------------------
``POST /register``            body ``{"node_id", "url"}`` — join the fleet.
``POST /unregister/<node>``   clean departure (owed jobs requeue).
``POST /heartbeat/<node>``    body ``{"finished": [...], "stats": {...}}``
                              → ``{"acked", "state", ...}``; ``404`` for
                              unknown nodes (the agent re-registers).
``POST /admin/drain/<node>``  stop routing new work to the node.
``POST /admin/undrain/<node>`` resume routing to a draining node.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import __version__
from repro.gateway.router import NoCapacityError, Router
from repro.obs.trace import TRACEPARENT_HEADER, TraceContext
from repro.serve.client import BackpressureError

__all__ = ["GatewayServer", "DEFAULT_GATEWAY_PORT"]

DEFAULT_GATEWAY_PORT = 8076

#: Gateway bodies are control-plane JSON plus inline arrays on /submit.
MAX_BODY_BYTES = 256 * 2**20


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-gateway/1"
    protocol_version = "HTTP/1.1"

    router: Router = None  # type: ignore[assignment]
    verbose: bool = False

    # -- plumbing ----------------------------------------------------------
    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        if self.verbose:  # pragma: no cover - log formatting
            super().log_message(fmt, *args)

    def _send(self, code: int, payload: dict, headers: dict | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    # -- routes ------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            body = self._read_json()
        except ValueError as exc:
            self.close_connection = True
            self._send(400, {"error": str(exc)})
            return
        if self.path == "/submit":
            self._submit(body)
            return
        if self.path == "/register":
            try:
                payload = self.router.register_node(
                    str(body.get("node_id", "")), str(body.get("url", "")))
            except ValueError as exc:
                self._send(400, {"error": str(exc)})
                return
            self._send(200, payload)
            return
        for prefix, handler in (
            ("/heartbeat/", self._heartbeat),
            ("/unregister/", self._unregister),
            ("/admin/drain/", self._drain),
            ("/admin/undrain/", self._undrain),
        ):
            if self.path.startswith(prefix):
                handler(self.path[len(prefix):], body)
                return
        self.close_connection = True
        self._send(404, {"error": f"unknown endpoint {self.path!r}"})

    def _submit(self, body: dict) -> None:
        context = TraceContext.from_traceparent(
            self.headers.get(TRACEPARENT_HEADER))
        try:
            _, ticket = self.router.submit(body, trace_context=context)
        except ValueError as exc:
            self._send(400, {"error": str(exc)})
            return
        except BackpressureError as exc:
            retry_after = float(exc.body.get("retry_after", 1.0))
            self._send(429, {"error": str(exc), "retry_after": retry_after},
                       headers={"Retry-After": f"{retry_after:g}"})
            return
        except NoCapacityError as exc:
            self._send(503, {"error": str(exc), "retry_after": 1.0},
                       headers={"Retry-After": "1"})
            return
        self._send(202, ticket)

    def _heartbeat(self, node_id: str, body: dict) -> None:
        finished = body.get("finished") or []
        if not isinstance(finished, list):
            self._send(400, {"error": "finished must be a list of job ids"})
            return
        payload = self.router.node_heartbeat(
            node_id, finished=[str(j) for j in finished],
            reported=body.get("stats") if isinstance(body.get("stats"), dict) else None,
        )
        if payload is None:
            self._send(404, {"error": f"unknown node {node_id!r}; re-register"})
            return
        self._send(200, payload)

    def _unregister(self, node_id: str, body: dict) -> None:
        payload = self.router.unregister_node(node_id)
        if payload is None:
            self._send(404, {"error": f"unknown node {node_id!r}"})
            return
        self._send(200, payload)

    def _drain(self, node_id: str, body: dict) -> None:
        payload = self.router.drain(node_id)
        if payload is None:
            self._send(404, {"error": f"unknown node {node_id!r}"})
            return
        self._send(200, payload)

    def _undrain(self, node_id: str, body: dict) -> None:
        payload = self.router.undrain(node_id)
        if payload is None:
            self._send(404, {"error": f"unknown node {node_id!r}"})
            return
        self._send(200, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/stats":
            self._send(200, self.router.stats_payload())
            return
        if self.path == "/metrics":
            if self.router.metrics is None:
                self._send(404, {"error": "metrics are disabled on this gateway"})
                return
            from repro.obs.exposition import CONTENT_TYPE

            data = self.router.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", CONTENT_TYPE)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
            return
        if self.path == "/health":
            counts = self.router.registry.counts()
            self._send(200, {"status": "ok", "nodes_active": counts["active"],
                             "version": __version__})
            return
        if self.path.startswith("/trace/"):
            payload = self.router.trace_payload(self.path[len("/trace/"):])
            if payload is None:
                self._send(404, {"error": "unknown job/trace id "
                                          "(unsampled or evicted traces 404)"})
            else:
                self._send(200, payload)
            return
        if self.path.startswith("/status/"):
            payload = self.router.job_status(self.path[len("/status/"):])
            if payload is None:
                self._send(404, {"error": "unknown job id"})
                return
            self._send(200, payload)
            return
        if self.path.startswith("/result/"):
            answer = self.router.job_result(self.path[len("/result/"):])
            if answer is None:
                self._send(404, {"error": "unknown job id"})
                return
            code, payload = answer
            self._send(code, payload)
            return
        self._send(404, {"error": f"unknown endpoint {self.path!r}"})


class GatewayServer:
    """Owns one :class:`Router` plus the HTTP listener bound to it.

    ``port=0`` binds an ephemeral port (read it back from :attr:`url`).

    Usage::

        with GatewayServer(port=0, dead_after=2.0) as gw:
            # point `repro serve --register <gw.url>` nodes at it
            client = ServiceClient(gw.url)
            ...
    """

    def __init__(
        self,
        router: Router | None = None,
        host: str = "127.0.0.1",
        port: int = DEFAULT_GATEWAY_PORT,
        verbose: bool = False,
        **router_kwargs,
    ) -> None:
        if router is not None and router_kwargs:
            raise ValueError("pass router kwargs or an instance, not both")
        self.router = router or Router(**router_kwargs)
        handler = type("_BoundHandler", (_Handler,),
                       {"router": self.router, "verbose": verbose})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "GatewayServer":
        self.router.start()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, name="repro-gateway-http",
                daemon=True)
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant for the CLI (Ctrl-C to stop)."""
        self.router.start()
        try:
            self._httpd.serve_forever()
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        self.router.stop()

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()
