"""Gateway-side node registry: membership, heartbeats, drain, death.

One :class:`NodeRegistry` is the gateway's single source of truth about
the worker fleet.  Each node is a :class:`NodeRecord` moving through

::

    active ──> draining ──> left        (operator drain, then unregister)
      │  │         │
      │  └─────────┴──────> dead        (heartbeats stop for dead_after)
      └───────────────────> left        (clean unregister)

``active`` nodes are routable; ``draining`` nodes stay in the fleet and
keep heartbeating (their in-flight jobs finish normally) but receive no
new work; ``dead`` and ``left`` nodes are out of the ring entirely.  A
dead node that starts heartbeating again (a partition healed, a SIGSTOP
was continued) is *resurrected* to active — its requeued jobs are not
clawed back; at worst the work is recomputed, and results are pure
functions of the spec, so duplicates are identical.

Death detection is pull-based and cheap: :meth:`NodeRegistry.reap`
compares each node's last-heartbeat monotonic stamp against
``dead_after`` and returns the newly-dead records; the gateway's
monitor thread calls it on a short period and requeues whatever those
nodes still owed (see :mod:`repro.gateway.router`).  Monotonic time
only — a stepped wall clock must not mass-kill the fleet.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.errors import RequestError
from repro.gateway.ring import DEFAULT_REPLICAS, HashRing
from repro.util.concurrency import guarded_by

__all__ = ["NodeState", "NodeRecord", "NodeRegistry"]


class NodeState:
    """Wire strings for a node's lifecycle state."""

    ACTIVE = "active"
    DRAINING = "draining"
    DEAD = "dead"
    LEFT = "left"

    #: States that keep a node in the hash ring.
    ROUTABLE = frozenset({ACTIVE})
    #: States a heartbeat is still expected from.
    ALIVE = frozenset({ACTIVE, DRAINING})


@dataclass
class NodeRecord:
    """One worker node as the gateway sees it."""

    node_id: str
    url: str
    state: str = NodeState.ACTIVE
    registered_at: float = field(default_factory=time.time)
    #: Monotonic stamp of the last heartbeat (or registration).
    last_heartbeat_mono: float = field(default_factory=time.monotonic)
    heartbeats: int = 0
    #: Times this node was declared dead (resurrections reset state only).
    deaths: int = 0
    #: The node's last self-reported stats block (jobs/queue summary).
    reported: dict = field(default_factory=dict)

    def heartbeat_age(self) -> float:
        return max(0.0, time.monotonic() - self.last_heartbeat_mono)

    def status_dict(self) -> dict:
        return {
            "node_id": self.node_id,
            "url": self.url,
            "state": self.state,
            "registered_at": self.registered_at,
            "heartbeats": self.heartbeats,
            "heartbeat_age_seconds": round(self.heartbeat_age(), 3),
            "deaths": self.deaths,
            "reported": self.reported,
        }


@guarded_by("_lock", "_nodes", "_ring")
class NodeRegistry:
    """Thread-safe fleet membership + the ring that routes over it."""

    def __init__(
        self,
        dead_after: float = 3.0,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if dead_after <= 0:
            raise RequestError(f"dead_after must be positive, got {dead_after!r}")
        self.dead_after = float(dead_after)
        self._ring = HashRing(replicas)
        self._nodes: dict[str, NodeRecord] = {}
        self._lock = threading.RLock()

    # -- membership --------------------------------------------------------
    def register(self, node_id: str, url: str) -> NodeRecord:
        """Add (or re-add) a node; re-registration resurrects and re-homes.

        A node that restarts re-registers under the same id with a
        possibly different URL; it comes back ``active`` with a fresh
        heartbeat stamp.
        """
        if not node_id or "/" in node_id:
            raise RequestError(f"invalid node id {node_id!r}")
        url = url.rstrip("/")
        if not url.startswith(("http://", "https://")):
            raise RequestError(f"invalid node url {url!r}")
        with self._lock:
            record = self._nodes.get(node_id)
            if record is None:
                record = self._nodes[node_id] = NodeRecord(node_id=node_id, url=url)
            else:
                record.url = url
                record.state = NodeState.ACTIVE
                record.last_heartbeat_mono = time.monotonic()
            self._ring.add(node_id)
            return record

    def unregister(self, node_id: str) -> NodeRecord | None:
        """Clean departure: out of the ring, state ``left``."""
        with self._lock:
            record = self._nodes.get(node_id)
            if record is None:
                return None
            record.state = NodeState.LEFT
            self._ring.remove(node_id)
            return record

    def get(self, node_id: str) -> NodeRecord | None:
        with self._lock:
            return self._nodes.get(node_id)

    # -- heartbeat / liveness ----------------------------------------------
    def heartbeat(self, node_id: str, reported: dict | None = None) -> NodeRecord | None:
        """Record a heartbeat; resurrects a ``dead`` node to ``active``.

        Returns the record, or ``None`` for an unknown node (the caller
        answers "re-register please").
        """
        with self._lock:
            record = self._nodes.get(node_id)
            if record is None or record.state == NodeState.LEFT:
                return None
            record.last_heartbeat_mono = time.monotonic()
            record.heartbeats += 1
            if reported is not None:
                record.reported = reported
            if record.state == NodeState.DEAD:
                record.state = NodeState.ACTIVE
                self._ring.add(node_id)
            return record

    def reap(self) -> list[NodeRecord]:
        """Declare dead every alive node whose heartbeat lapsed; return them."""
        newly_dead: list[NodeRecord] = []
        with self._lock:
            for record in self._nodes.values():
                if record.state in NodeState.ALIVE and record.heartbeat_age() > self.dead_after:
                    record.state = NodeState.DEAD
                    record.deaths += 1
                    self._ring.remove(record.node_id)
                    newly_dead.append(record)
        return newly_dead

    # -- drain -------------------------------------------------------------
    def drain(self, node_id: str) -> NodeRecord | None:
        """Stop routing new work to a node; in-flight jobs finish."""
        with self._lock:
            record = self._nodes.get(node_id)
            if record is None:
                return None
            if record.state == NodeState.ACTIVE:
                record.state = NodeState.DRAINING
                self._ring.remove(node_id)
            return record

    def undrain(self, node_id: str) -> NodeRecord | None:
        """Return a draining node to active routing."""
        with self._lock:
            record = self._nodes.get(node_id)
            if record is None:
                return None
            if record.state == NodeState.DRAINING:
                record.state = NodeState.ACTIVE
                self._ring.add(node_id)
            return record

    # -- routing -----------------------------------------------------------
    def route(self, key: str) -> NodeRecord | None:
        """The routable node owning ``key`` (``None``: no capacity at all)."""
        with self._lock:
            node_id = self._ring.lookup(key)
            if node_id is None:
                return None
            return self._nodes[node_id]

    def route_avoiding(self, key: str, avoid: set[str]) -> NodeRecord | None:
        """Like :meth:`route` but skipping ``avoid`` (failover re-homing)."""
        with self._lock:
            node_id = self._ring.lookup(key, exclude=avoid)
            if node_id is None:
                return None
            return self._nodes[node_id]

    # -- introspection -----------------------------------------------------
    def nodes(self, states: frozenset[str] | None = None) -> list[NodeRecord]:
        with self._lock:
            records = list(self._nodes.values())
        if states is not None:
            records = [r for r in records if r.state in states]
        return records

    def counts(self) -> dict[str, int]:
        """``{state: node count}`` over every known node."""
        out = {NodeState.ACTIVE: 0, NodeState.DRAINING: 0,
               NodeState.DEAD: 0, NodeState.LEFT: 0}
        with self._lock:
            for record in self._nodes.values():
                out[record.state] = out.get(record.state, 0) + 1
        return out

    def stats_dict(self) -> dict:
        with self._lock:
            return {
                "dead_after_seconds": self.dead_after,
                "counts": self.counts(),
                "nodes": [r.status_dict() for r in self._nodes.values()],
            }
