"""Sharded multi-node service: a coalescing gateway over N worker nodes.

The gateway tier turns a fleet of independent ``repro serve`` nodes into
one service endpoint::

    repro gateway --port 8076 &
    repro serve --port 9001 --register http://127.0.0.1:8076 &
    repro serve --port 9002 --register http://127.0.0.1:8076 &
    repro submit tune data.npy --ratio 8 --url http://127.0.0.1:8076

Requests route to shards by consistent-hashing the same coalesce key the
node-side scheduler deduplicates on, so identical requests land on the
same shard (coalescing and the per-shard :class:`~repro.cache.EvalCache`
stay hot).  Nodes register and heartbeat; operators drain nodes
(``POST /admin/drain/<node>``) for zero-loss maintenance; nodes whose
heartbeats lapse are declared dead and their un-acked jobs are requeued
onto surviving shards through the specs' retry budgets — a killed
worker *host* now loses zero jobs, extending the process-backend crash
recovery one level up.  See ``docs/GATEWAY.md``.
"""

from repro.gateway.registry import NodeRecord, NodeRegistry, NodeState
from repro.gateway.ring import DEFAULT_REPLICAS, HashRing
from repro.gateway.router import NoCapacityError, RoutedJob, Router, RouterStats
from repro.gateway.server import DEFAULT_GATEWAY_PORT, GatewayServer

__all__ = [
    "HashRing",
    "DEFAULT_REPLICAS",
    "NodeState",
    "NodeRecord",
    "NodeRegistry",
    "Router",
    "RouterStats",
    "RoutedJob",
    "NoCapacityError",
    "GatewayServer",
    "DEFAULT_GATEWAY_PORT",
]
