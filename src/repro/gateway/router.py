"""Routing, job tracking, and failover for the gateway tier.

The :class:`Router` is to the gateway what the scheduler is to one node:
the resident brain.  It owns

* a :class:`~repro.gateway.registry.NodeRegistry` (fleet membership,
  heartbeats, the consistent-hash ring),
* a table of :class:`RoutedJob` records — every job the gateway has
  admitted, which node owns it, and the node-side job id it maps to,
* the **failover loop**: a monitor thread that reaps nodes whose
  heartbeats lapsed and requeues their un-acked jobs onto surviving
  nodes, spending the same per-spec retry budget
  (``max_retries``) the process backend spends on worker crashes, and
* the gateway's :class:`~repro.obs.metrics.MetricsRegistry`
  (``repro_gateway_*`` — routed counts per node, heartbeat-age gauges,
  failover counters).

**Job identity.**  The gateway assigns its own ids (``g000001``) and
maps each to the node-side id returned by the node's ``/submit``.  A
job is *acked* once the gateway has the finished result cached — either
proxied on a client ``GET /result`` or fetched when the node's
heartbeat lists the job as finished.  Failover only ever requeues
un-acked jobs, and requeues are safe to repeat: results are pure
functions of the spec, so a job that actually completed on a node that
died before acking is simply recomputed bit-identically elsewhere.

**Routing.**  The routing key is the spec's
:meth:`~repro.serve.jobs.JobSpec.coalesce_key` — the same identity the
node-side scheduler coalesces on — so identical requests always land on
the same shard and per-shard coalescing plus the shard's
:class:`~repro.cache.EvalCache` stay as effective as on a single node.
A node that refuses the TCP connection at submit time is routed
*around* (and the heartbeat reaper will declare it dead soon after); a
node that answers 429 propagates its backpressure to the gateway's
caller unchanged.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro import __version__
from repro.errors import (
    JobTimeoutError,
    StateError,
    UnknownJobError,
)
from repro.gateway.registry import NodeRecord, NodeRegistry, NodeState
from repro.gateway.ring import DEFAULT_REPLICAS
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanStore, TraceContext, Tracer
from repro.obs.tracelog import TraceLogger
from repro.serve.client import (
    BackpressureError,
    ServiceClient,
    ServiceError,
    ServiceUnavailableError,
)
from repro.serve.jobs import JobSpec
from repro.util.concurrency import guarded_by

__all__ = ["Router", "RoutedJob", "RouterStats", "NoCapacityError"]


class NoCapacityError(StateError):
    """No routable node exists (empty fleet, or everything drained/dead)."""


@dataclass
class RouterStats:
    """Gateway-level counters (the ``/stats`` ``jobs`` section)."""

    submitted: int = 0
    routed: int = 0
    completed: int = 0
    failed: int = 0
    requeued: int = 0
    reroutes: int = 0
    node_failures: int = 0
    acked: int = 0
    no_capacity: int = 0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "routed": self.routed,
            "completed": self.completed,
            "failed": self.failed,
            "requeued": self.requeued,
            "reroutes": self.reroutes,
            "node_failures": self.node_failures,
            "acked": self.acked,
            "no_capacity": self.no_capacity,
        }


@dataclass
class RoutedJob:
    """One admitted job: where it lives and what came back."""

    id: str
    body: dict                       # canonical spec wire dict (re-forwardable)
    key: str                         # coalesce key == routing key
    max_retries: int
    state: str = "routed"            # routed | pending | done | failed
    node_id: str | None = None
    node_job_id: str | None = None
    coalesced_into: str | None = None  # gateway-side id, when known
    #: Nodes that died (or refused) while owning this job — avoided on requeue.
    avoid: set[str] = field(default_factory=set)
    failovers: int = 0
    submitted_at: float = field(default_factory=time.time)
    submitted_mono: float = field(default_factory=time.monotonic, repr=False)
    finished_mono: float | None = field(default=None, repr=False)
    result: dict | None = None
    error: str | None = None
    #: Trace identity shared with the owning node (the traceparent the
    #: gateway injected at forward time carries the same trace id).
    trace_id: str | None = None
    trace_root: object = field(default=None, repr=False)
    _finished_event: threading.Event = field(default_factory=threading.Event,
                                             repr=False)

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    def wait(self, timeout: float | None = None) -> bool:
        return self._finished_event.wait(timeout)

    def status_dict(self) -> dict:
        return {
            "job_id": self.id,
            "state": self.state,
            "node": self.node_id,
            "node_job_id": self.node_job_id,
            "coalesced_into": self.coalesced_into,
            "failovers": self.failovers,
            "submitted_at": self.submitted_at,
            "trace_id": self.trace_id,
            "error": self.error,
        }


@guarded_by("_lock", "_jobs", "_node_index", "_owed", "_history",
            "_clients", "stats")
class Router:
    """Fleet routing + failover; the gateway server's engine.

    Parameters
    ----------
    heartbeat_interval:
        The cadence nodes are told to heartbeat at (returned in
        registration responses so the fleet converges on the gateway's
        setting without per-node flags).
    dead_after:
        Heartbeat silence beyond this many seconds declares a node dead
        and triggers requeue of its un-acked jobs.
    check_interval:
        Monitor-thread period: death detection latency adds up to one
        period on top of ``dead_after``.
    replicas:
        Virtual points per node on the consistent-hash ring.
    history:
        Finished jobs kept addressable for ``/status``/``/result``.
    metrics:
        ``True`` builds a private registry; an instance is used as-is;
        ``False`` disables gateway metrics.
    """

    def __init__(
        self,
        heartbeat_interval: float = 1.0,
        dead_after: float = 3.0,
        check_interval: float = 0.25,
        replicas: int = DEFAULT_REPLICAS,
        history: int = 4096,
        client_timeout: float = 30.0,
        metrics: MetricsRegistry | bool = True,
        trace_sample: float = 1.0,
        trace_exemplars: int = 5,
        logger: TraceLogger | None = None,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        self.heartbeat_interval = float(heartbeat_interval)
        self.check_interval = float(check_interval)
        self.client_timeout = float(client_timeout)
        self.registry = NodeRegistry(dead_after=dead_after, replicas=replicas)
        self.stats = RouterStats()
        self._jobs: dict[str, RoutedJob] = {}
        #: (node_id, node_job_id) -> gateway job id, for heartbeat acks.
        self._node_index: dict[tuple[str, str], str] = {}
        #: gateway ids currently owed by each node (un-acked).
        self._owed: dict[str, set[str]] = {}
        self._history: deque[str] = deque()
        self._history_limit = max(1, int(history))
        self._ids = itertools.count(1)
        self._clients: dict[str, ServiceClient] = {}
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        self._started_at = time.time()
        self._started_mono = time.monotonic()
        if isinstance(metrics, MetricsRegistry):
            self.metrics: MetricsRegistry | None = metrics
        else:
            self.metrics = MetricsRegistry() if metrics else None
        # Gateway spans carry node_id="gateway" so a stitched tree shows
        # at a glance which tier each span ran on.
        self.tracer = Tracer(store=SpanStore(exemplars=trace_exemplars),
                             sample_rate=trace_sample, node_id="gateway")
        self.logger = logger if logger is not None else TraceLogger(
            "gateway", enabled=False)
        self._routed_total = None
        self._heartbeat_age = None
        if self.metrics is not None:
            self._build_metrics(self.metrics)

    # -- observability -----------------------------------------------------
    def _build_metrics(self, reg: MetricsRegistry) -> None:
        # Callback counters take torn reads by design (registration
        # happens before the router is shared; monitoring tolerates
        # mid-update values).
        stats = self.stats  # repro: ignore[LOCK001]
        reg.gauge("build_info",
                  "Build metadata carried in labels (value is always 1)",
                  labels=("version",)).labels(version=__version__).set(1)
        self._routed_total = reg.counter(
            "gateway_routed_total", "Jobs forwarded to each node",
            labels=("node",))
        self._heartbeat_age = reg.gauge(
            "gateway_heartbeat_age_seconds",
            "Seconds since each node's last heartbeat (monitor-tick resolution)",
            labels=("node",))
        for attr, help_text in (
            ("submitted", "Jobs admitted by the gateway"),
            ("completed", "Jobs finished successfully across the fleet"),
            ("failed", "Jobs that exhausted every budget"),
            ("requeued", "Jobs re-homed off a dead node (failover requeues)"),
            ("reroutes", "Submits re-routed around an unreachable node"),
            ("node_failures", "Nodes declared dead after missed heartbeats"),
            ("acked", "Finished results fetched and acknowledged"),
            ("no_capacity", "Submits refused because no node was routable"),
        ):
            reg.counter(f"gateway_{attr}_total", help_text,
                        callback=lambda a=attr: getattr(stats, a))
        for state in (NodeState.ACTIVE, NodeState.DRAINING, NodeState.DEAD):
            reg.gauge(f"gateway_nodes_{state}", f"Nodes currently {state}",
                      callback=lambda s=state: self.registry.counts()[s])
        reg.gauge("gateway_inflight_jobs", "Admitted jobs not yet finished",
                  callback=self._inflight_count)
        reg.gauge("gateway_uptime_seconds", "Monotonic seconds since gateway start",
                  callback=lambda: time.monotonic() - self._started_mono)

    def _inflight_count(self) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values() if not j.finished)

    def metrics_text(self) -> str:
        if self.metrics is None:
            raise StateError("gateway was built with metrics disabled")
        return self.metrics.render()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "Router":
        if self._monitor is None:
            self._stop.clear()
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="repro-gateway-monitor", daemon=True)
            self._monitor.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout)
            self._monitor = None

    def __enter__(self) -> "Router":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- node-facing protocol ----------------------------------------------
    def register_node(self, node_id: str, url: str) -> dict:
        """Handle ``POST /register``; returns the node's marching orders."""
        record = self.registry.register(node_id, url)
        with self._lock:
            self._clients.pop(node_id, None)  # URL may have changed
            self._owed.setdefault(node_id, set())
        return {
            "node_id": record.node_id,
            "state": record.state,
            "heartbeat_interval": self.heartbeat_interval,
            "dead_after": self.registry.dead_after,
        }

    def unregister_node(self, node_id: str) -> dict | None:
        """Handle ``POST /unregister``; requeues whatever the node owed."""
        record = self.registry.unregister(node_id)
        if record is None:
            return None
        self._requeue_owed(node_id, reason=f"node {node_id} unregistered")
        return {"node_id": node_id, "state": record.state}

    def node_heartbeat(
        self, node_id: str, finished: list[str] | None = None,
        reported: dict | None = None,
    ) -> dict | None:
        """Handle ``POST /heartbeat``: liveness + the job-ack protocol.

        ``finished`` is the node's list of locally-finished job ids not
        yet acknowledged.  For each one the gateway fetches and caches
        the result, then includes the id in ``acked`` so the node stops
        reporting it.  Unknown ids (gateway restarted) are acked too.
        Returns ``None`` for unknown nodes — the agent re-registers.
        """
        record = self.registry.heartbeat(node_id, reported=reported)
        if record is None:
            return None
        acked: list[str] = []
        for node_job_id in finished or []:
            with self._lock:
                gid = self._node_index.get((node_id, node_job_id))
                job = self._jobs.get(gid) if gid is not None else None
            if job is None or job.finished or job.node_id != node_id:
                acked.append(node_job_id)  # nothing (left) to fetch
                continue
            if self._fetch_result(job, record):
                acked.append(node_job_id)
        return {
            "node_id": node_id,
            "state": record.state,
            "acked": acked,
            "heartbeat_interval": self.heartbeat_interval,
        }

    # -- client-facing protocol --------------------------------------------
    def submit(self, body: dict,
               trace_context: TraceContext | None = None) -> tuple[RoutedJob, dict]:
        """Admit one job: validate, route by coalesce key, forward.

        Returns ``(job, ticket)`` where ``ticket`` is the JSON body for
        the 202 response.  Raises ``ValueError`` (bad spec),
        :class:`NoCapacityError` (no routable node), or
        :class:`~repro.serve.client.BackpressureError` (the owning shard
        answered 429 — propagated so the caller sees honest overload).

        ``trace_context`` continues the caller's trace; otherwise the
        gateway roots a new one here — every downstream hop (route,
        node queue/run, stage and search-iteration spans) shares its id.
        """
        spec = JobSpec.from_dict(body)
        key = spec.coalesce_key()
        with self._lock:
            gid = f"g{next(self._ids):06d}"
            job = RoutedJob(id=gid, body=spec.to_dict(), key=key,
                            max_retries=spec.max_retries)
            self._jobs[gid] = job
            self.stats.submitted += 1
        root = self.tracer.start_trace(
            "gateway_job", context=trace_context,
            attrs={"job_id": gid, "kind": spec.kind})
        job.trace_root = root
        job.trace_id = root.trace_id
        self.logger.event("job_submitted", trace_id=job.trace_id, job_id=gid,
                          kind=spec.kind)
        try:
            self._forward(job)
        except (NoCapacityError, BackpressureError) as exc:
            with self._lock:
                del self._jobs[gid]
                self.stats.submitted -= 1
            if root.is_recording:
                root.record_error(exc)
                self.tracer.finish_span(root)
            raise
        ticket = {
            "job_id": job.id,
            "state": "queued",
            "node": job.node_id,
            "coalesced_into": job.coalesced_into,
            "trace_id": job.trace_id,
        }
        return job, ticket

    def get(self, gid: str) -> RoutedJob | None:
        with self._lock:
            return self._jobs.get(gid)

    def job_status(self, gid: str) -> dict | None:
        """``GET /status/<gid>``: gateway view + live node view if routed."""
        job = self.get(gid)
        if job is None:
            return None
        payload = job.status_dict()
        if not job.finished and job.node_id is not None and job.node_job_id is not None:
            record = self.registry.get(job.node_id)
            if record is not None and record.state in NodeState.ALIVE:
                try:
                    status, body = self._client(record).poll_status(job.node_job_id)
                    if status == 200:
                        payload["node_status"] = body
                except ServiceError:  # repro: ignore[EXC002] optional enrichment
                    pass  # the monitor will deal with the node
        return payload

    def job_result(self, gid: str) -> tuple[int, dict] | None:
        """``GET /result/<gid>`` semantics: (http status, body) or ``None``.

        Finished jobs answer from the gateway's cache; routed jobs are
        proxied to the owning node (and cached on completion); anything
        in between — including a node that just died — answers 202, the
        client keeps polling, and failover fills in the rest.
        """
        job = self.get(gid)
        if job is None:
            return None
        if not job.finished and job.state == "routed":
            record = self.registry.get(job.node_id) if job.node_id else None
            if record is not None and record.state in NodeState.ALIVE:
                self._fetch_result(job, record, only_if_done=True)
        if job.state == "done":
            return 200, {"job_id": job.id, "state": "done",
                         "coalesced_into": job.coalesced_into,
                         "result": job.result, "error": None}
        if job.state == "failed":
            return 200, {"job_id": job.id, "state": "failed",
                         "coalesced_into": job.coalesced_into,
                         "result": None, "error": job.error}
        return 202, {"job_id": job.id, "state": "queued",
                     "node": job.node_id, "failovers": job.failovers}

    def drain(self, node_id: str) -> dict | None:
        record = self.registry.drain(node_id)
        return None if record is None else record.status_dict()

    def undrain(self, node_id: str) -> dict | None:
        record = self.registry.undrain(node_id)
        return None if record is None else record.status_dict()

    def wait(self, gid: str, timeout: float | None = None) -> RoutedJob:
        job = self.get(gid)
        if job is None:
            raise UnknownJobError(f"unknown job {gid!r}")
        if not job.wait(timeout):
            raise JobTimeoutError(
                f"job {gid} still {job.state} after {timeout}s")
        return job

    # -- forwarding --------------------------------------------------------
    def _client(self, record: NodeRecord) -> ServiceClient:
        with self._lock:
            client = self._clients.get(record.node_id)
            if client is None or client.url != record.url:
                client = ServiceClient(record.url, timeout=self.client_timeout,
                                       backpressure_wait=0.0)
                self._clients[record.node_id] = client
            return client

    def _forward(self, job: RoutedJob) -> None:
        """Route ``job`` and submit it to the owning node.

        Walks the ring past nodes the job would rather avoid (previous
        owners that died) and around nodes that refuse the connection —
        counting each such hop as a reroute.  The avoid set is a *soft*
        preference: when it excludes every routable node (a one-node
        fleet whose node died and came back), the job falls back to the
        avoided nodes rather than starving — results are pure functions
        of the spec, so re-running where a previous attempt died is
        merely redundant, never wrong.  Nodes that refuse the TCP
        connection *during this call* stay hard-excluded (no retry
        loop).  Raises :class:`NoCapacityError` once no candidate
        remains, and lets a 429 (:class:`BackpressureError`) propagate:
        the shard's backpressure is the gateway's backpressure.

        The whole walk happens inside one ``route`` span (child of the
        job's gateway root), and the winning node's submit carries the
        route span's context as a ``traceparent`` header — which is what
        stitches the node's queue/run/stage spans into the same trace.
        The header travels even when the trace is unsampled (flag ``00``)
        so the node honours the gateway's head decision.
        """
        refused: set[str] = set()
        with self.tracer.span("route", parent=job.trace_root) as route_span:
            traceparent = route_span.context.to_traceparent()
            while True:
                record = self.registry.route_avoiding(job.key, job.avoid | refused)
                if record is None and job.avoid:
                    record = self.registry.route_avoiding(job.key, refused)
                if record is None:
                    with self._lock:
                        self.stats.no_capacity += 1
                    raise NoCapacityError(
                        "no routable worker node (register nodes, or undrain one)")
                try:
                    ticket = self._client(record).submit(
                        job.body, traceparent=traceparent)
                except ServiceUnavailableError:
                    # Connection-level failure: route around it now; the
                    # reaper declares it dead on heartbeat silence.
                    refused.add(record.node_id)
                    with self._lock:
                        self.stats.reroutes += 1
                    continue
                with self._lock:
                    job.state = "routed"
                    job.node_id = record.node_id
                    job.node_job_id = ticket["job_id"]
                    self._node_index[(record.node_id, ticket["job_id"])] = job.id
                    self._owed.setdefault(record.node_id, set()).add(job.id)
                    coalesced = ticket.get("coalesced_into")
                    if coalesced:
                        primary_gid = self._node_index.get(
                            (record.node_id, coalesced))
                        job.coalesced_into = primary_gid
                    self.stats.routed += 1
                if route_span.is_recording:
                    route_span.set_attr("node", record.node_id)
                    if refused:
                        route_span.set_attr("rerouted_around", sorted(refused))
                    if job.failovers:
                        route_span.set_attr("failover", job.failovers)
                if self._routed_total is not None:
                    self._routed_total.labels(node=record.node_id).inc()
                self.logger.event(
                    "job_routed", trace_id=job.trace_id, job_id=job.id,
                    node=record.node_id, node_job_id=job.node_job_id)
                return

    def _fetch_result(self, job: RoutedJob, record: NodeRecord,
                      only_if_done: bool = False) -> bool:
        """Pull ``job``'s outcome from its node; cache + finish if terminal.

        Returns ``True`` when the job is now finished at the gateway
        (fetched now, or already was).  Network errors return ``False``
        — the monitor/failover path owns that node's fate.
        """
        try:
            status, body = self._client(record).poll_result(job.node_job_id)
        except ServiceError:
            return False
        if status == 202:
            return False
        if status != 200:
            if only_if_done:
                return False
            self._finish(job, "failed",
                         error=body.get("error") or f"node answered HTTP {status}")
            return True
        if body.get("state") == "done":
            self._finish(job, "done", result=body.get("result"))
        else:
            self._finish(job, "failed",
                         error=body.get("error") or f"job {body.get('state')} on node")
        return True

    def _finish(self, job: RoutedJob, state: str, *, result: dict | None = None,
                error: str | None = None) -> None:
        with self._lock:
            if job.finished:
                return
            job.state = state
            job.result = result
            job.error = error
            job.finished_mono = time.monotonic()
            if job.node_id is not None:
                owed = self._owed.get(job.node_id)
                if owed is not None:
                    owed.discard(job.id)
            if state == "done":
                self.stats.completed += 1
                self.stats.acked += 1
            else:
                self.stats.failed += 1
            self._remember_locked(job)
        job._finished_event.set()
        self._finish_job_trace(job)

    def _finish_job_trace(self, job: RoutedJob) -> None:
        """Close the gateway root span and settle the trace's bookkeeping.

        Mirrors the scheduler's version: a failed-but-unsampled job still
        gets a minimal forced span (*always sample on error*), and every
        sampled trace enters the slow-trace exemplar contest with its
        full gateway-side latency.
        """
        root = job.trace_root
        if root is None:
            return
        elapsed = (job.finished_mono - job.submitted_mono
                   if job.finished_mono is not None else None)
        if root.is_recording:
            if job.state == "failed":
                root.record_error(job.error or "failed")
            if job.failovers:
                root.set_attr("failovers", job.failovers)
            self.tracer.finish_span(root)
        elif job.state == "failed" and job.trace_id is not None:
            self.tracer.record_span(
                "gateway_job", trace_id=job.trace_id,
                start=job.submitted_at, duration=elapsed,
                status="error", error=job.error,
                attrs={"job_id": job.id, "forced_sample": True})
        if job.trace_id is not None:
            self.tracer.store.finish_trace(job.trace_id, elapsed, job.id)
        if job.state == "failed":
            self.logger.error("job_failed", trace_id=job.trace_id,
                              job_id=job.id, node=job.node_id, error=job.error)
        else:
            self.logger.event("job_finished", trace_id=job.trace_id,
                              job_id=job.id, node=job.node_id,
                              seconds=round(elapsed, 6) if elapsed else None)

    def _remember_locked(self, job: RoutedJob) -> None:
        self._history.append(job.id)
        while len(self._history) > self._history_limit:
            old = self._history.popleft()
            stale = self._jobs.get(old)
            if stale is not None and stale.finished:
                if stale.node_id is not None and stale.node_job_id is not None:
                    self._node_index.pop((stale.node_id, stale.node_job_id), None)
                del self._jobs[old]

    # -- failover ----------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.check_interval):
            self.check_nodes()

    def check_nodes(self) -> list[str]:
        """One monitor tick: reap lapsed nodes, requeue, retry pending.

        Public (and called by the monitor thread) so tests can drive
        failover deterministically without sleeping for wall-clock
        margins.  Returns the ids of nodes newly declared dead.
        """
        dead = self.registry.reap()
        for record in dead:
            with self._lock:
                self.stats.node_failures += 1
            self._requeue_owed(record.node_id,
                               reason=f"node {record.node_id} missed heartbeats")
        self._retry_pending()
        if self._heartbeat_age is not None:
            for record in self.registry.nodes(NodeState.ALIVE):
                self._heartbeat_age.labels(node=record.node_id).set(
                    record.heartbeat_age())
        return [r.node_id for r in dead]

    def _requeue_owed(self, node_id: str, reason: str) -> None:
        """Spend retry budget to re-home every un-acked job of a node."""
        with self._lock:
            owed = sorted(self._owed.get(node_id, ()))
            jobs = [self._jobs[gid] for gid in owed if gid in self._jobs]
            self._owed[node_id] = set()
        for job in jobs:
            if job.finished or job.node_id != node_id:
                continue
            with self._lock:
                job.avoid.add(node_id)
                if job.node_job_id is not None:
                    self._node_index.pop((node_id, job.node_job_id), None)
                job.node_id = None
                job.node_job_id = None
                if job.failovers >= job.max_retries:
                    pass  # falls through to _finish below, outside the lock
                else:
                    job.failovers += 1
                    job.state = "pending"
                    self.stats.requeued += 1
            root = job.trace_root
            if (root is not None and root.is_recording
                    and root.trace_id is not None):
                # Retro span: the dead node's own spans died with it, so
                # the gateway records the failover evidence itself.
                self.tracer.record_span(
                    "failover_requeue", trace_id=root.trace_id,
                    parent_id=root.span_id,
                    attrs={"node": node_id, "reason": reason,
                           "requeued": job.state == "pending",
                           "failover": job.failovers})
            self.logger.event(
                "job_requeued" if job.state == "pending" else "job_abandoned",
                level="warning", trace_id=job.trace_id, job_id=job.id,
                node=node_id, reason=reason, failovers=job.failovers)
            if job.state != "pending":
                self._finish(job, "failed",
                             error=f"{reason}; retry budget exhausted "
                                   f"({job.failovers}/{job.max_retries} failovers)")
                continue
            self._try_requeue(job)

    def _try_requeue(self, job: RoutedJob) -> None:
        """Forward a pending job; stays pending on 429 for the next tick."""
        try:
            self._forward(job)
        except BackpressureError:  # repro: ignore[EXC002]
            pass  # every candidate shard is full: retry next monitor tick
        except NoCapacityError:  # repro: ignore[EXC002]
            # Nothing routable *right now*; a node may yet register or
            # resurrect before the budget question even arises, so the
            # job stays pending rather than failing on a transient.
            pass

    def _retry_pending(self) -> None:
        with self._lock:
            pending = [j for j in self._jobs.values() if j.state == "pending"]
        for job in pending:
            self._try_requeue(job)

    # -- introspection -----------------------------------------------------
    def trace_payload(self, ref: str) -> dict | None:
        """Stitched span tree for a gateway job id (or raw 32-hex trace id).

        The gateway's own spans (root, routing, failover evidence) are
        merged with the owning node's ``/trace`` answer — same trace id,
        deduplicated by span id — so one read shows the whole journey:
        gateway admission → route → node queue/run → executor dispatch →
        stage spans → per-search-iteration spans.  A dead or unreachable
        node degrades to the gateway-side spans alone (its routing spans
        still say which node the job died on).  ``None`` when the
        reference is unknown, unsampled, or evicted.
        """
        job = self.get(ref)
        if job is None and len(ref) == 32:
            with self._lock:
                job = next((j for j in self._jobs.values()
                            if j.trace_id == ref), None)
        trace_id = job.trace_id if job is not None else (
            ref if len(ref) == 32 else None)
        if trace_id is None:
            return None
        spans = self.tracer.store.get(trace_id)
        if spans is None:
            return None
        if job is not None and job.node_id is not None \
                and job.node_job_id is not None:
            record = self.registry.get(job.node_id)
            if record is not None and record.state in NodeState.ALIVE:
                try:
                    remote = self._client(record).trace(job.node_job_id)
                except ServiceError:
                    remote = None  # evicted/unknown there; gateway view stands
                if remote and remote.get("trace_id") == trace_id:
                    seen = {s.get("span_id") for s in spans}
                    spans.extend(s for s in remote.get("spans", [])
                                 if s.get("span_id") not in seen)
        return {
            "trace_id": trace_id,
            "job_id": job.id if job is not None else None,
            "complete": job.finished if job is not None else False,
            "spans": spans,
        }

    def stats_payload(self) -> dict:
        with self._lock:
            # Ledger reads under the lock: job states and counters move
            # together, so /stats never shows a torn snapshot.
            jobs = self.stats.as_dict()
            inflight = sum(1 for j in self._jobs.values() if not j.finished)
        payload = {
            "uptime_seconds": round(time.monotonic() - self._started_mono, 3),
            "heartbeat_interval": self.heartbeat_interval,
            "jobs": jobs,
            "inflight": inflight,
            # Fleet/trace/metrics snapshots are taken outside the router
            # lock: each has its own lock, and holding ours across them
            # would order Router._lock before theirs for no benefit.
            "fleet": self.registry.stats_dict(),
            "trace": self.tracer.stats_dict(),
            "metrics": None,
        }
        if self.metrics is not None:
            payload["metrics"] = self.metrics.snapshot()
        return payload
