"""Failure injection and determinism guarantees.

Corrupted payloads must fail *loudly* (raise), never silently return wrong
data; identical configurations must produce byte-identical payloads (the
optimizer's determinism contract, and what makes results reproducible
across the parallel backends).
"""

import numpy as np
import pytest

from repro.codecs.container import Container
from repro.core.training import train
from repro.mgard.compressor import MGARDCompressor
from repro.pressio import make_compressor
from repro.sz.compressor import SZCompressor
from repro.zfp.compressor import ZFPCompressor


@pytest.fixture(scope="module")
def field():
    r = np.random.default_rng(91)
    return r.standard_normal((20, 20)).cumsum(axis=0).astype(np.float32)


def _flip_byte(blob: bytes, index: int) -> bytes:
    out = bytearray(blob)
    out[index] ^= 0xFF
    return bytes(out)


class TestCorruptPayloads:
    @pytest.mark.parametrize("comp_name", ["sz", "zfp", "mgard"])
    def test_truncated_payload_raises(self, field, comp_name):
        comp = make_compressor(comp_name, error_bound=1e-2)
        payload = comp.compress(field).payload
        with pytest.raises(Exception):
            comp.decompress(payload[: len(payload) // 2])

    @pytest.mark.parametrize("comp_name", ["sz", "mgard"])
    def test_corrupt_magic_raises(self, field, comp_name):
        comp = make_compressor(comp_name, error_bound=1e-2)
        payload = comp.compress(field).payload
        with pytest.raises(Exception):
            comp.decompress(_flip_byte(payload, 0))

    def test_corrupt_zlib_body_raises(self, field):
        comp = SZCompressor(error_bound=1e-2)
        payload = comp.compress(field).payload
        # Flip a byte deep in the body (past header sections).
        with pytest.raises(Exception):
            comp.decompress(_flip_byte(payload, len(payload) - 10))

    def test_wrong_compressor_rejects_payload(self, field):
        """A ZFP payload fed to SZ must not silently decode."""
        zfp_payload = ZFPCompressor(error_bound=1e-2).compress(field)
        sz = SZCompressor()
        with pytest.raises(Exception):
            sz.decompress(zfp_payload)

    def test_trailing_garbage_rejected(self, field):
        comp = SZCompressor(error_bound=1e-2)
        payload = comp.compress(field).payload
        with pytest.raises(ValueError):
            comp.decompress(payload + b"extra")


class TestDeterminism:
    @pytest.mark.parametrize("comp_name", ["sz", "zfp", "mgard"])
    def test_identical_payload_across_runs(self, field, comp_name):
        a = make_compressor(comp_name, error_bound=1e-3).compress(field)
        b = make_compressor(comp_name, error_bound=1e-3).compress(field)
        assert a.payload == b.payload

    def test_training_deterministic_given_seed(self, field):
        r1 = train(SZCompressor(), field, 8.0, tolerance=0.1, regions=4, seed=7)
        r2 = train(SZCompressor(), field, 8.0, tolerance=0.1, regions=4, seed=7)
        assert r1.error_bound == r2.error_bound
        assert r1.ratio == r2.ratio
        assert r1.evaluations == r2.evaluations

    def test_container_sections_stable_order(self, field):
        payload = SZCompressor(error_bound=1e-2).compress(field).payload
        names = Container.frombytes(payload).names()
        assert names == ["header", "body"]

    def test_recompression_stays_bounded(self, field):
        """Re-compressing a reconstruction keeps every generation within
        the bound of its parent (exact idempotence is not guaranteed: the
        hybrid predictor may re-fit differently on the reconstruction)."""
        comp = SZCompressor(error_bound=1e-2)
        recon1 = comp.decompress(comp.compress(field))
        recon2 = comp.decompress(comp.compress(recon1))
        drift = np.abs(recon2.astype(np.float64) - recon1.astype(np.float64)).max()
        assert drift <= 1e-2


class TestEdgeShapes:
    @pytest.mark.parametrize("shape", [(1,), (2, 2), (1, 1, 1), (3, 1, 5), (4096,)])
    def test_sz_small_and_degenerate_shapes(self, shape):
        r = np.random.default_rng(5)
        data = r.standard_normal(shape).astype(np.float32)
        comp = SZCompressor(error_bound=1e-3)
        recon = comp.decompress(comp.compress(data))
        assert recon.shape == data.shape
        assert np.abs(recon.astype(np.float64) - data.astype(np.float64)).max() <= 1e-3

    @pytest.mark.parametrize("shape", [(1,), (2, 2), (1, 1, 1), (3, 1, 5)])
    def test_zfp_small_and_degenerate_shapes(self, shape):
        r = np.random.default_rng(6)
        data = r.standard_normal(shape).astype(np.float32)
        comp = ZFPCompressor(error_bound=1e-3)
        recon = comp.decompress(comp.compress(data))
        assert recon.shape == data.shape
        assert np.abs(recon.astype(np.float64) - data.astype(np.float64)).max() <= 1e-3

    @pytest.mark.parametrize("shape", [(2, 2), (3, 1), (1, 1)])
    def test_mgard_small_shapes(self, shape):
        r = np.random.default_rng(7)
        data = r.standard_normal(shape).astype(np.float32)
        comp = MGARDCompressor(error_bound=1e-3)
        recon = comp.decompress(comp.compress(data))
        assert recon.shape == data.shape
        assert np.abs(recon.astype(np.float64) - data.astype(np.float64)).max() <= 1e-3

    def test_mixed_extreme_magnitudes(self):
        data = np.array(
            [[1e-30, 1e30], [0.0, -1e30]], dtype=np.float32
        )
        comp = SZCompressor(error_bound=1.0)
        recon = comp.decompress(comp.compress(data))
        assert np.abs(recon.astype(np.float64) - data.astype(np.float64)).max() <= 1.0
