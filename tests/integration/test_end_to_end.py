"""Integration tests: FRaZ across compressors, datasets and executors."""

import numpy as np
import pytest

from repro import FRaZ, evaluate, make_compressor
from repro.datasets import load_dataset


@pytest.fixture(scope="module")
def hurricane():
    return load_dataset("Hurricane", "tiny")


@pytest.fixture(scope="module")
def nyx():
    return load_dataset("NYX", "tiny")


class TestFRaZAcrossCompressors:
    @pytest.mark.parametrize("name", ["sz", "zfp", "mgard"])
    def test_fixed_ratio_on_real_field(self, hurricane, name):
        data = hurricane.fields["TCf"].steps[0]
        fraz = FRaZ(compressor=name, target_ratio=8.0, tolerance=0.15)
        payload, result = fraz.compress(data)
        # Either converged in band, or reported the closest achievable.
        if result.feasible:
            assert 8.0 * 0.85 <= payload.ratio <= 8.0 * 1.15
        recon = fraz.decompress(payload)
        err = np.abs(recon.astype(np.float64) - data.astype(np.float64)).max()
        assert err <= result.error_bound + 1e-12

    def test_error_bound_constraint_respected(self, hurricane):
        """Eq. 2: error-control-based fixed-ratio compression never exceeds U."""
        data = hurricane.fields["TCf"].steps[0]
        cap = 0.05
        fraz = FRaZ(compressor="sz", target_ratio=200.0, tolerance=0.1,
                    max_error_bound=cap, regions=4, max_calls_per_region=6)
        payload, result = fraz.compress(data)
        assert result.error_bound <= cap
        recon = fraz.decompress(payload)
        assert np.abs(recon.astype(np.float64) - data.astype(np.float64)).max() <= cap


class TestFRaZOnDatasets:
    def test_hurricane_multifield(self, hurricane):
        fields = {
            name: hurricane.fields[name].steps[:2]
            for name in ("TCf", "CLOUDf")
        }
        fraz = FRaZ(compressor="sz", target_ratio=10.0, tolerance=0.15)
        res = fraz.tune_dataset(fields)
        assert set(res.fields) == {"TCf", "CLOUDf"}

    def test_timestep_reuse_on_nyx(self, nyx):
        series = nyx.fields["velocity_x"].steps
        fraz = FRaZ(compressor="sz", target_ratio=10.0, tolerance=0.15)
        res = fraz.tune_series(series, field_name="velocity_x")
        assert res.converged_fraction >= 0.75
        # Gradually evolving data: retraining should be rare after step 0.
        assert len(res.retrain_steps) <= max(2, len(series) // 2)

    def test_hacc_1d_sz_vs_zfp(self):
        ds = load_dataset("HACC", "tiny")
        data = ds.fields["x"].steps[0]
        for name in ("sz", "zfp"):
            fraz = FRaZ(compressor=name, target_ratio=4.0, tolerance=0.2)
            res = fraz.tune(data)
            assert res.ratio > 1.0


class TestExecutorsEndToEnd:
    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_executors_converge(self, hurricane, kind):
        data = hurricane.fields["TCf"].steps[0]
        fraz = FRaZ(compressor="sz", target_ratio=8.0, tolerance=0.15,
                    executor=kind, workers=2, regions=4)
        res = fraz.tune(data)
        assert res.feasible


class TestQualityAcrossCompressors:
    def test_fraz_beats_zfp_fixed_rate_quality(self, nyx):
        """Fig. 10's headline: at matched CR, error-bounded FRaZ-tuned
        compression has higher PSNR than ZFP's fixed-rate mode."""
        data = nyx.fields["temperature"].steps[0]
        target = 16.0
        rate_mode = make_compressor("zfp-rate", error_bound=32.0 / target)
        rate_rec = evaluate(rate_mode, data)

        fraz = FRaZ(compressor="zfp", target_ratio=target, tolerance=0.25)
        res = fraz.tune(data)
        tuned = make_compressor("zfp", error_bound=res.error_bound)
        fraz_rec = evaluate(tuned, data)

        if res.feasible:
            assert fraz_rec.psnr > rate_rec.psnr
