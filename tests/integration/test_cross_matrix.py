"""Cross matrix: every registered compressor x every dataset field family.

The genericity claim made concrete: any abs-mode backend must round-trip
any supported field within its bound, and FRaZ must drive any backend on
any dataset without special-casing.
"""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.pressio import available_compressors, evaluate, make_compressor

_ABS_BACKENDS = ["sz", "sz-interp", "zfp", "mgard"]

_FIELDS = [
    ("Hurricane", "TCf"),          # smooth 3D
    ("Hurricane", "QCLOUDf.log10"),  # sparse/log 3D
    ("CESM", "CLDHGH"),            # bounded 2D
    ("HACC", "x"),                 # rough 1D
    ("Exaalt", "z"),               # sawtooth 1D
    ("NYX", "baryon_density"),     # heavy-tailed 3D
]


@pytest.fixture(scope="module")
def field_bank():
    return {
        (ds, f): load_dataset(ds, "tiny").fields[f].steps[0] for ds, f in _FIELDS
    }


class TestRoundtripMatrix:
    @pytest.mark.parametrize("backend", _ABS_BACKENDS)
    @pytest.mark.parametrize("key", _FIELDS, ids=[f"{d}-{f}" for d, f in _FIELDS])
    def test_bound_holds(self, field_bank, backend, key):
        data = field_bank[key]
        comp = make_compressor(backend)
        if not comp.supports(data):
            pytest.skip(f"{backend} does not support {data.ndim}D")
        span = float(data.max() - data.min()) or 1.0
        eb = span * 1e-3
        configured = comp.with_error_bound(eb)
        recon = configured.decompress(configured.compress(data))
        err = np.abs(recon.astype(np.float64) - data.astype(np.float64)).max()
        assert err <= eb

    def test_registry_is_complete(self):
        names = available_compressors()
        for expected in ("sz", "sz-interp", "sz-pwrel", "zfp", "zfp-rate",
                         "zfp-prec", "mgard"):
            assert expected in names


class TestEvaluateMatrix:
    @pytest.mark.parametrize("backend", _ABS_BACKENDS)
    def test_quality_record_sane(self, field_bank, backend):
        data = field_bank[("Hurricane", "TCf")]
        span = float(data.max() - data.min())
        rec = evaluate(make_compressor(backend, error_bound=span * 1e-3), data)
        assert rec.ratio > 1.0
        assert rec.max_error <= span * 1e-3
        assert rec.psnr > 30
        assert 0 <= rec.ssim <= 1
        assert rec.bit_rate == pytest.approx(32.0 / rec.ratio, rel=1e-9)


class TestFRaZMatrix:
    @pytest.mark.parametrize("backend", _ABS_BACKENDS)
    def test_fraz_reaches_modest_target(self, field_bank, backend):
        from repro.core.training import train

        data = field_bank[("Hurricane", "TCf")]
        comp = make_compressor(backend)
        res = train(comp, data, 5.0, tolerance=0.2, regions=4,
                    max_calls_per_region=10, seed=0)
        # Modest target: every backend should land in or near the band.
        assert res.ratio == pytest.approx(5.0, rel=0.5)
