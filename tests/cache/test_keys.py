"""Cache key construction: fingerprints, config hashes, bound normalisation."""

import json

import numpy as np
import pytest

from repro.cache.keys import (
    bound_key,
    config_hash,
    fingerprint_array,
    make_key,
    normalize_bound,
)
from repro.sz.compressor import SZCompressor
from repro.zfp.compressor import ZFPCompressor


class TestFingerprint:
    def test_deterministic(self):
        a = np.arange(24, dtype=np.float32).reshape(4, 6)
        assert fingerprint_array(a) == fingerprint_array(a.copy())

    def test_different_values_differ(self):
        """Collision safety: same shape/dtype, different values."""
        a = np.zeros((8, 8), dtype=np.float32)
        b = np.zeros((8, 8), dtype=np.float32)
        b[3, 4] = 1e-30  # one ULP-ish of difference must change the key
        assert fingerprint_array(a) != fingerprint_array(b)

    def test_shape_is_part_of_key(self):
        """Same bytes, different shape: compressors treat these differently."""
        a = np.arange(24, dtype=np.float32).reshape(4, 6)
        b = a.reshape(6, 4)
        assert a.tobytes() == b.tobytes()
        assert fingerprint_array(a) != fingerprint_array(b)

    def test_dtype_is_part_of_key(self):
        """Same bytes reinterpreted as another dtype must not collide."""
        a = np.zeros(16, dtype=np.float32)
        b = a.view(np.int32)
        assert fingerprint_array(a) != fingerprint_array(b)

    def test_non_contiguous_view_equals_its_copy(self):
        a = np.arange(64, dtype=np.float64).reshape(8, 8)
        view = a[::2, ::2]
        assert fingerprint_array(view) == fingerprint_array(view.copy())


class TestConfigHash:
    def test_bound_excluded(self):
        """The bound is the search axis — it must not change the config hash."""
        assert config_hash(SZCompressor(error_bound=1e-3)) == config_hash(
            SZCompressor(error_bound=1e-6)
        )

    def test_other_knobs_included(self):
        base = SZCompressor()
        assert config_hash(base) != config_hash(SZCompressor(block_size=8))
        assert config_hash(base) != config_hash(SZCompressor(dict_codec="lz77"))
        assert config_hash(base) != config_hash(SZCompressor(use_regression=False))
        assert config_hash(base) != config_hash(SZCompressor(bound_mode="rel"))

    def test_different_compressors_differ(self):
        assert config_hash(SZCompressor()) != config_hash(ZFPCompressor())


class TestNormalizeBound:
    def test_near_identical_bounds_collapse(self):
        e = 1.234567890123e-3
        assert normalize_bound(e) == normalize_bound(e * (1 + 1e-14))

    def test_distinct_bounds_stay_distinct(self):
        assert normalize_bound(1.0e-3) != normalize_bound(1.001e-3)

    def test_idempotent(self):
        for e in (1e-300, 3.14159e-3, 7.0, 1e12):
            assert normalize_bound(normalize_bound(e)) == normalize_bound(e)

    def test_zero_and_nonfinite_pass_through(self):
        assert normalize_bound(0.0) == 0.0
        assert normalize_bound(float("inf")) == float("inf")

    def test_json_roundtrip_stable(self):
        """Disk-tier keys must survive JSON encode/decode bit-exactly."""
        for e in (1e-9, 2.718281828459045e-4, 0.1, 123456.789):
            key = bound_key(e)
            assert bound_key(json.loads(json.dumps(float(key)))) == key


class TestMakeKey:
    def test_composite_key_varies_with_each_axis(self):
        a = np.ones((4, 4), dtype=np.float32)
        b = np.full((4, 4), 2.0, dtype=np.float32)
        sz, zfp = SZCompressor(), ZFPCompressor()
        fp_a, fp_b = fingerprint_array(a), fingerprint_array(b)
        base = make_key(fp_a, config_hash(sz), 1e-3)
        assert make_key(fp_b, config_hash(sz), 1e-3) != base
        assert make_key(fp_a, config_hash(zfp), 1e-3) != base
        assert make_key(fp_a, config_hash(sz), 2e-3) != base
