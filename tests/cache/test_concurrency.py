"""EvalCache under concurrency: shared-instance hammering and disk races.

The service (``repro.serve``) shares one cache across all worker threads
and persists its disk tier from a long-lived process that may coexist
with CLI runs pointing at the same ``--cache-dir`` — so the cache must
tolerate threaded get/put/evaluate_many without losing entries, and
concurrent ``save()`` writers must never corrupt the JSON tier.
"""

import json
import multiprocessing
import os
import threading

import numpy as np
import pytest

from repro.cache import CacheEntry, EvalCache
from repro.parallel.executor import ThreadExecutor
from repro.sz.compressor import SZCompressor


@pytest.fixture(scope="module")
def field():
    r = np.random.default_rng(17)
    return r.standard_normal((16, 16, 4)).astype(np.float32)


class TestThreadedAccess:
    N_THREADS = 8
    N_OPS = 200

    def test_hammered_get_put_loses_nothing(self):
        cache = EvalCache(maxsize=None)
        keys = [f"k{i}" for i in range(32)]
        entries = {k: CacheEntry(ratio=float(i), nbytes=i, seconds=0.0)
                   for i, k in enumerate(keys)}
        errors: list[Exception] = []
        barrier = threading.Barrier(self.N_THREADS)

        def worker(seed: int) -> None:
            try:
                rng = np.random.default_rng(seed)
                barrier.wait(timeout=10)
                for _ in range(self.N_OPS):
                    k = keys[int(rng.integers(len(keys)))]
                    if rng.random() < 0.5:
                        cache.put(k, entries[k])
                    else:
                        got = cache.get(k)
                        if got is not None:
                            assert got.ratio == entries[k].ratio
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors, errors
        # Every key that was ever put is present with the right payload.
        for k in keys:
            got = cache.peek(k)
            if got is not None:
                assert got.ratio == entries[k].ratio
        stats = cache.stats
        assert stats.hits + stats.misses + stats.stores == self.N_THREADS * self.N_OPS

    def test_lru_bound_holds_under_threads(self):
        cache = EvalCache(maxsize=16)
        barrier = threading.Barrier(4)

        def worker(base: int) -> None:
            barrier.wait(timeout=10)
            for i in range(100):
                cache.put(f"k{base}-{i}", CacheEntry(1.0, 1, 0.0))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert len(cache) <= 16
        assert cache.stats.evictions >= 4 * 100 - 16

    def test_concurrent_evaluate_many_matches_serial(self, field):
        sz = SZCompressor()
        bounds = [10 ** (-3 + 0.2 * i) for i in range(8)]
        serial = EvalCache()
        expected = [e.ratio for e in serial.evaluate_many(sz, field, bounds)]

        cache = EvalCache()
        pool = ThreadExecutor(workers=4)
        results: dict[int, list[float]] = {}
        barrier = threading.Barrier(4)

        def worker(tid: int) -> None:
            barrier.wait(timeout=10)
            entries = cache.evaluate_many(sz, field, bounds, executor=pool)
            results[tid] = [e.ratio for e in entries]

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert len(results) == 4
        for ratios in results.values():
            assert ratios == expected

    def test_threaded_evaluate_counts_consistent(self, field):
        """hits + misses == probes issued, regardless of interleaving."""
        sz = SZCompressor()
        cache = EvalCache()
        bounds = [1e-3, 2e-3, 4e-3]
        barrier = threading.Barrier(6)

        def worker() -> None:
            barrier.wait(timeout=10)
            for e in bounds:
                cache.evaluate(sz, field, e)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert cache.stats.hits + cache.stats.misses == 6 * len(bounds)
        assert len(cache) == len(bounds)


def _save_worker(cache_dir: str, tag: int, n_entries: int, n_saves: int) -> None:
    """Child process: build a private cache and race save() on one dir."""
    cache = EvalCache(maxsize=None, cache_dir=cache_dir)
    for i in range(n_entries):
        cache.put(f"proc{tag}:{i}", CacheEntry(ratio=float(tag), nbytes=i, seconds=0.0))
    for _ in range(n_saves):
        cache.save()


class TestDiskTierRaces:
    N_ENTRIES = 40
    N_SAVES = 25

    def test_two_process_save_race_never_corrupts(self, tmp_path):
        cache_dir = str(tmp_path / "shared-cache")
        procs = [
            multiprocessing.Process(
                target=_save_worker,
                args=(cache_dir, tag, self.N_ENTRIES, self.N_SAVES),
            )
            for tag in (1, 2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(60)
            assert p.exitcode == 0

        # The tier must be complete, valid JSON — atomic tmp+rename means
        # the winner's file survives whole, never an interleaving.
        path = os.path.join(cache_dir, "evalcache.json")
        with open(path, encoding="utf-8") as fh:
            blob = json.load(fh)
        keys = set(blob["entries"])
        tags = {k.split(":")[0] for k in keys}
        # Last writer wins with its *full* entry set (each writer loaded
        # the other's entries only if they were on disk at construction,
        # so the floor is one complete set; no partial/torn set allowed).
        assert any(
            {f"proc{tag}:{i}" for i in range(self.N_ENTRIES)} <= keys
            for tag in (1, 2)
        ), sorted(keys)[:5]
        assert tags <= {"proc1", "proc2"}
        # No stray tmp files left behind.
        leftovers = [f for f in os.listdir(cache_dir) if ".tmp." in f]
        assert not leftovers

        # And the surviving tier round-trips through a fresh cache.
        reloaded = EvalCache(cache_dir=cache_dir)
        assert len(reloaded) == len(keys)
        assert reloaded.stats.disk_loads == len(keys)

    def test_threaded_put_during_save(self, tmp_path):
        """save() must snapshot consistently while writers keep storing."""
        cache = EvalCache(maxsize=None, cache_dir=str(tmp_path))
        stop = threading.Event()

        def writer() -> None:
            i = 0
            while not stop.is_set() and i < 5000:
                cache.put(f"w:{i}", CacheEntry(1.0, i, 0.0))
                i += 1

        t = threading.Thread(target=writer)
        t.start()
        try:
            for _ in range(20):
                cache.save()
        finally:
            stop.set()
            t.join(10)
        cache.save()
        with open(cache.disk_path, encoding="utf-8") as fh:
            blob = json.load(fh)
        assert len(blob["entries"]) == len(cache)
