"""EvalCache behaviour: accounting, LRU, persistence, snapshots, batching."""

import pickle
import threading

import numpy as np
import pytest

from repro.cache import CacheEntry, EvalCache
from repro.parallel.executor import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.sz.compressor import SZCompressor


@pytest.fixture(scope="module")
def field():
    r = np.random.default_rng(91)
    return (r.standard_normal((16, 16, 8))).astype(np.float32)


class TestAccounting:
    def test_miss_then_hit(self, field):
        cache = EvalCache()
        sz = SZCompressor()
        entry, was_hit = cache.evaluate(sz, field, 1e-3)
        assert not was_hit
        again, was_hit = cache.evaluate(sz, field, 1e-3)
        assert was_hit
        assert again.ratio == entry.ratio
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.seconds_saved > 0
        assert cache.stats.bytes_saved == field.nbytes  # one avoided re-compress

    def test_normalised_bounds_share_an_entry(self, field):
        cache = EvalCache()
        sz = SZCompressor()
        cache.evaluate(sz, field, 1e-3)
        _, was_hit = cache.evaluate(sz, field, 1e-3 * (1 + 1e-14))
        assert was_hit

    def test_different_data_misses(self, field):
        """Fingerprint collision safety via the full evaluate path."""
        cache = EvalCache()
        sz = SZCompressor()
        other = field.copy()
        other[0, 0, 0] += np.float32(1e-3)
        cache.evaluate(sz, field, 1e-3)
        _, was_hit = cache.evaluate(sz, other, 1e-3)
        assert not was_hit

    def test_different_config_misses(self, field):
        cache = EvalCache()
        cache.evaluate(SZCompressor(), field, 1e-3)
        _, was_hit = cache.evaluate(SZCompressor(use_regression=False), field, 1e-3)
        assert not was_hit

    def test_hit_rate(self, field):
        cache = EvalCache()
        sz = SZCompressor()
        assert cache.stats.hit_rate == 0.0
        cache.evaluate(sz, field, 1e-3)
        cache.evaluate(sz, field, 1e-3)
        cache.evaluate(sz, field, 2e-3)
        assert cache.stats.hit_rate == pytest.approx(1 / 3)


class TestLRU:
    def test_eviction_order(self):
        cache = EvalCache(maxsize=2)
        cache.put("a", CacheEntry(1.0, 10, 0.0))
        cache.put("b", CacheEntry(2.0, 10, 0.0))
        assert cache.get("a") is not None  # refresh "a": now "b" is LRU
        cache.put("c", CacheEntry(3.0, 10, 0.0))
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            EvalCache(maxsize=0)

    def test_unbounded(self):
        cache = EvalCache(maxsize=None)
        for i in range(500):
            cache.put(str(i), CacheEntry(float(i), 1, 0.0))
        assert len(cache) == 500 and cache.stats.evictions == 0


class TestAuxMetrics:
    def test_put_merges_aux(self):
        cache = EvalCache()
        cache.put("k", CacheEntry(2.0, 10, 0.1).with_aux("quality:ssim", 0.9))
        cache.put("k", CacheEntry(2.0, 10, 0.2).with_aux("quality:psnr", 55.0))
        entry = cache.peek("k")
        assert entry.aux_get("quality:ssim") == 0.9
        assert entry.aux_get("quality:psnr") == 55.0

    def test_get_aux_requires_metric(self):
        cache = EvalCache()
        cache.put("k", CacheEntry(2.0, 10, 0.1))
        assert cache.get_aux("k", "quality:ssim") is None  # ratio-only entry
        assert cache.stats.misses == 1
        cache.put("k", CacheEntry(2.0, 10, 0.1).with_aux("quality:ssim", 0.9))
        assert cache.get_aux("k", "quality:ssim") is not None
        assert cache.stats.hits == 1


class TestPersistence:
    def test_roundtrip(self, field, tmp_path):
        sz = SZCompressor()
        first = EvalCache(cache_dir=tmp_path)
        entry, _ = first.evaluate(sz, field, 1e-3)
        first.put(
            first.key_for(sz, field, 2e-3),
            CacheEntry(4.0, 25, 0.5).with_aux("quality:ssim", 0.97),
        )
        first.save()

        second = EvalCache(cache_dir=tmp_path)
        assert second.stats.disk_loads == len(first)
        hit, was_hit = second.evaluate(sz, field, 1e-3)
        assert was_hit and hit.ratio == entry.ratio
        aux = second.peek(second.key_for(sz, field, 2e-3))
        assert aux.aux_get("quality:ssim") == 0.97

    def test_context_manager_saves(self, field, tmp_path):
        sz = SZCompressor()
        with EvalCache(cache_dir=tmp_path) as cache:
            cache.evaluate(sz, field, 1e-3)
        reloaded = EvalCache(cache_dir=tmp_path)
        _, was_hit = reloaded.evaluate(sz, field, 1e-3)
        assert was_hit

    def test_corrupt_file_treated_as_empty(self, tmp_path):
        (tmp_path / "evalcache.json").write_text("{not json")
        cache = EvalCache(cache_dir=tmp_path)
        assert len(cache) == 0
        cache.put("k", CacheEntry(1.0, 1, 0.0))
        assert cache.save() is not None  # save still works afterwards

    def test_unknown_format_ignored(self, tmp_path):
        (tmp_path / "evalcache.json").write_text('{"format": 99, "entries": {"x": {}}}')
        assert len(EvalCache(cache_dir=tmp_path)) == 0

    def test_no_dir_means_no_disk(self):
        cache = EvalCache()
        assert cache.disk_path is None and cache.save() is None

    def test_tilde_cache_dir_expands(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        cache = EvalCache(cache_dir="~/frz-cache")
        assert cache.cache_dir == str(tmp_path / "frz-cache")
        cache.put("k", CacheEntry(1.0, 1, 0.0))
        cache.save()
        assert (tmp_path / "frz-cache" / "evalcache.json").exists()


class TestSnapshotMerge:
    def test_pickle_drops_disk_tier_and_stats(self, field, tmp_path):
        sz = SZCompressor()
        cache = EvalCache(cache_dir=tmp_path)
        cache.evaluate(sz, field, 1e-3)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.cache_dir is None
        assert clone.stats.misses == 0
        _, was_hit = clone.evaluate(sz, field, 1e-3)
        assert was_hit  # entries travelled

    def test_new_entries_tracks_only_local_stores(self, field):
        sz = SZCompressor()
        cache = EvalCache()
        cache.evaluate(sz, field, 1e-3)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.new_entries() == {}
        clone.evaluate(sz, field, 2e-3)
        assert len(clone.new_entries()) == 1

    def test_merge_is_idempotent_and_deterministic(self, field):
        sz = SZCompressor()
        parent = EvalCache()
        parent.evaluate(sz, field, 1e-3)
        worker_a = pickle.loads(pickle.dumps(parent))
        worker_b = pickle.loads(pickle.dumps(parent))
        worker_a.evaluate(sz, field, 2e-3)
        worker_b.evaluate(sz, field, 2e-3)  # same probe, both pay (no sharing)
        worker_b.evaluate(sz, field, 4e-3)

        merged_ab = EvalCache()
        merged_ab.merge_entries(parent.new_entries())
        merged_ab.merge_entries(worker_a.new_entries())
        merged_ab.merge_entries(worker_b.new_entries())

        merged_ba = EvalCache()
        merged_ba.merge_entries(parent.new_entries())
        merged_ba.merge_entries(worker_b.new_entries())
        merged_ba.merge_entries(worker_a.new_entries())
        merged_ba.merge_entries(worker_a.new_entries())  # replay: idempotent

        keys_ab = sorted(merged_ab.new_entries())
        keys_ba = sorted(merged_ba.new_entries())
        assert keys_ab == keys_ba
        for k in keys_ab:
            assert merged_ab.peek(k).ratio == merged_ba.peek(k).ratio

    def test_executors_declare_memory_sharing(self):
        """Orchestrators skip the delta round-trip for in-process executors."""
        assert SerialExecutor.shares_memory
        assert ThreadExecutor.shares_memory
        assert not ProcessExecutor.shares_memory

    def test_merge_counts_unseen(self):
        cache = EvalCache()
        cache.put("a", CacheEntry(1.0, 1, 0.0))
        added = cache.merge_entries({"a": CacheEntry(1.0, 1, 0.0), "b": CacheEntry(2.0, 1, 0.0)})
        assert added == 1
        assert cache.merge_entries(None) == 0


class TestEvaluateMany:
    def test_batch_partition(self, field):
        sz = SZCompressor()
        cache = EvalCache()
        cache.evaluate(sz, field, 1e-3)
        bounds = [1e-3, 2e-3, 4e-3, 2e-3]  # one hit, two cold, one duplicate
        entries = cache.evaluate_many(sz, field, bounds)
        assert len(entries) == 4
        assert entries[1].ratio == entries[3].ratio  # duplicate answered once
        assert cache.stats.misses == 1 + 2  # initial miss + two cold probes

    def test_batch_matches_serial(self, field):
        sz = SZCompressor()
        bounds = [1e-4, 1e-3, 1e-2]
        expected = [sz.with_error_bound(e).compress(field).ratio for e in bounds]
        for executor in (None, SerialExecutor(), ThreadExecutor(2), ProcessExecutor(2)):
            cache = EvalCache()
            entries = cache.evaluate_many(sz, field, bounds, executor=executor)
            assert [e.ratio for e in entries] == expected

    def test_warm_batch_issues_no_probes(self, field):
        sz = SZCompressor()
        cache = EvalCache()
        bounds = [1e-4, 1e-3, 1e-2]
        cache.evaluate_many(sz, field, bounds)
        before = cache.stats.misses
        cache.evaluate_many(sz, field, bounds)
        assert cache.stats.misses == before


class TestThreadSafety:
    def test_concurrent_puts_and_gets(self):
        cache = EvalCache(maxsize=64)
        errors = []

        def work(tid):
            try:
                for i in range(200):
                    key = f"{tid}:{i % 10}"
                    cache.put(key, CacheEntry(float(i), 1, 0.0))
                    cache.get(key)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 64
