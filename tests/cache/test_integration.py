"""Cache integration across the search stack (closures -> training -> CLI)."""

import json

import numpy as np
import pytest

from repro import FRaZ
from repro.analysis.sweeps import ratio_curve
from repro.cache import EvalCache
from repro.core.baselines import binary_search_ratio, grid_search_ratio
from repro.core.fields import tune_fields, tune_time_series
from repro.core.quality import tune_quality
from repro.core.training import train
from repro.core.worker import worker_task
from repro.parallel.executor import ProcessExecutor, ThreadExecutor
from repro.pressio.closures import RatioFunction
from repro.sz.compressor import SZCompressor


@pytest.fixture(scope="module")
def field():
    r = np.random.default_rng(17)
    x, y = np.meshgrid(np.linspace(0, 4, 32), np.linspace(0, 4, 32), indexing="ij")
    return (np.sin(x) * np.cos(y) + 0.02 * r.standard_normal(x.shape)).astype(np.float32)


@pytest.fixture(scope="module")
def series(field):
    return [field, field + np.float32(0.01), field, field + np.float32(0.02)]


class TestRatioFunction:
    def test_counts_hits_and_misses(self, field):
        cache = EvalCache()
        fn = RatioFunction(SZCompressor(), field, cache=cache)
        fn(1e-3)
        fn(2e-3)
        assert (fn.cache_hits, fn.cache_misses) == (0, 2)
        other = RatioFunction(SZCompressor(), field, cache=cache)
        other(1e-3)
        assert (other.cache_hits, other.cache_misses) == (1, 0)
        assert other.compress_seconds == 0.0  # hits cost no compress time

    def test_history_includes_hits(self, field):
        """best_observation must see cached probes too (Algorithm 2 fallback)."""
        cache = EvalCache()
        RatioFunction(SZCompressor(), field, cache=cache)(1e-3)
        fn = RatioFunction(SZCompressor(), field, cache=cache)
        fn(1e-3)
        assert fn.evaluations == 1
        assert fn.best_observation(target_ratio=1.0) is not None

    def test_without_cache_counts_misses(self, field):
        fn = RatioFunction(SZCompressor(), field)
        fn(1e-3)
        fn(1e-3)  # local memo
        assert (fn.cache_hits, fn.cache_misses) == (0, 1)


class TestTrainingIntegration:
    def test_results_unchanged_by_cache(self, field):
        plain = train(SZCompressor(), field, 8.0, regions=4, seed=0)
        cached = train(SZCompressor(), field, 8.0, regions=4, seed=0, cache=EvalCache())
        assert cached.error_bound == plain.error_bound
        assert cached.ratio == plain.ratio
        assert cached.evaluations == plain.evaluations

    def test_rerun_fully_cached(self, field):
        cache = EvalCache()
        train(SZCompressor(), field, 8.0, regions=4, seed=0, cache=cache)
        again = train(SZCompressor(), field, 8.0, regions=4, seed=0, cache=cache)
        assert again.cache_hits == again.evaluations
        assert again.compressor_calls == 0

    def test_worker_result_accounting(self, field):
        cache = EvalCache()
        res = worker_task(SZCompressor(), field, 8.0, 0.1, (1e-6, 1.0), max_calls=6,
                          cache=cache)
        assert res.cache_hits + res.cache_misses == res.evaluations

    @pytest.mark.parametrize("executor_cls", [ThreadExecutor, ProcessExecutor])
    def test_pool_executors_merge_into_parent_cache(self, field, executor_cls):
        cache = EvalCache()
        res = train(SZCompressor(), field, 8.0, regions=4, seed=0,
                    executor=executor_cls(2), cache=cache)
        # Every probe any worker paid for is now in the parent cache...
        assert len(cache) > 0
        # ...so an identical serial rerun is free.
        again = train(SZCompressor(), field, 8.0, regions=4, seed=0, cache=cache)
        assert again.compressor_calls == 0
        assert again.error_bound == res.error_bound

    def test_process_pool_merge_deterministic(self, field):
        """Same workload, process pool vs serial: identical merged entries.

        The target is infeasible so no worker triggers early cancellation
        (cancellation timing is executor-dependent by design); with all
        regions running to completion, the merged cache must be identical
        whatever the completion order.
        """
        target = 1e6
        serial_cache = EvalCache()
        train(SZCompressor(), field, target, regions=4, max_calls_per_region=5,
              seed=0, cache=serial_cache)
        pool_cache = EvalCache()
        train(SZCompressor(), field, target, regions=4, max_calls_per_region=5,
              seed=0, executor=ProcessExecutor(2), cache=pool_cache)
        serial_keys = sorted(serial_cache.new_entries())
        pool_keys = sorted(pool_cache.new_entries())
        assert serial_keys == pool_keys
        for k in serial_keys:
            assert serial_cache.peek(k).ratio == pool_cache.peek(k).ratio


class TestTimeSeriesAndFields:
    def test_repeated_steps_are_free(self, series):
        """Steps 0 and 2 are identical data: the cache collapses them."""
        cache = EvalCache()
        res = tune_time_series(SZCompressor(), series, 8.0, regions=4, seed=0,
                               cache=cache, reuse_prediction=False)
        assert res.steps[2].compressor_calls < res.steps[0].compressor_calls

    def test_tune_fields_shares_cache_across_fields(self, field, series):
        fields = {"a": series, "b": series}  # same data registered twice
        cache = EvalCache()
        res = tune_fields(SZCompressor(), fields, 8.0, regions=4, seed=0, cache=cache)
        # Field b repeats field a's probes (same data, same seeds offset
        # changes the optimizer path, but seed probes coincide).
        assert res.total_cache_hits > 0

    def test_tune_fields_process_pool_merges(self, series):
        fields = {"a": series[:2], "b": series[:2]}
        cache = EvalCache()
        tune_fields(SZCompressor(), fields, 8.0, regions=4, seed=0,
                    executor=ProcessExecutor(2), cache=cache)
        assert len(cache) > 0
        rerun = tune_fields(SZCompressor(), fields, 8.0, regions=4, seed=0, cache=cache)
        assert rerun.total_compressor_calls == 0


class TestBaselinesAndSweeps:
    def test_baselines_share_the_cache(self, field):
        cache = EvalCache()
        grid_search_ratio(SZCompressor(), field, 8.0, points=12, cache=cache)
        before = cache.stats.misses
        res = grid_search_ratio(SZCompressor(), field, 8.0, points=12, cache=cache)
        assert cache.stats.misses == before  # rerun entirely from cache
        assert res.cache_hits == res.evaluations

    def test_binary_search_accounting(self, field):
        cache = EvalCache()
        res = binary_search_ratio(SZCompressor(), field, 8.0, max_calls=8, cache=cache)
        assert res.cache_hits + res.cache_misses == res.evaluations

    def test_ratio_curve_cached_and_batched(self, field):
        sz = SZCompressor()
        bounds = np.geomspace(1e-5, 1e-1, 8)
        plain_bounds, plain_ratios = ratio_curve(sz, field, bounds)
        cache = EvalCache()
        for executor in (None, ThreadExecutor(2)):
            got_bounds, got_ratios = ratio_curve(sz, field, bounds, cache=cache,
                                                 executor=executor)
            np.testing.assert_array_equal(got_bounds, plain_bounds)
            np.testing.assert_array_equal(got_ratios, plain_ratios)
        assert cache.stats.misses == len(bounds)  # second pass was all hits


class TestQualityCache:
    def test_normalized_keys_regression(self, field):
        """Raw-float keys let near-identical bounds re-probe (stale-cache
        hazard): two bounds equal to 12 significant digits must share one
        closure entry."""
        from repro.core.quality import _QualityClosure

        closure = _QualityClosure(SZCompressor(), field, "ssim")
        q1 = closure(1.234567890123e-3)
        q2 = closure(1.234567890123e-3 * (1 + 1e-14))
        assert q1 == q2
        assert closure.evaluations == 1

    def test_quality_rides_on_shared_cache(self, field):
        cache = EvalCache()
        first = tune_quality(SZCompressor(), field, target=0.95, tolerance=0.02,
                             max_calls=10, seed=0, cache=cache)
        second = tune_quality(SZCompressor(), field, target=0.95, tolerance=0.02,
                              max_calls=10, seed=0, cache=cache)
        assert second.error_bound == first.error_bound
        assert second.cache_misses == 0 and second.cache_hits > 0

    def test_ratio_entry_alone_is_not_a_quality_hit(self, field):
        cache = EvalCache()
        e = 1e-3
        cache.evaluate(SZCompressor(), field, e)  # ratio-only entry
        res = tune_quality(SZCompressor(), field, target=0.9, max_calls=4,
                           lower=e, upper=e * 10, seed=0, cache=cache)
        assert res.cache_misses >= 1  # quality still had to decompress


class TestFRaZFacade:
    def test_default_cache_shared_across_calls(self, field):
        fraz = FRaZ(compressor="sz", target_ratio=8.0, regions=4)
        assert fraz.evaluation_cache is not None
        fraz.tune(field)
        second = fraz.tune(field)
        assert second.compressor_calls == 0

    def test_cache_disabled(self, field):
        fraz = FRaZ(compressor="sz", target_ratio=8.0, regions=4, cache=False)
        assert fraz.evaluation_cache is None
        res = fraz.tune(field)
        assert res.cache_hits == 0

    def test_injected_cache_instance(self, field):
        shared = EvalCache()
        a = FRaZ(compressor="sz", target_ratio=8.0, regions=4, cache=shared)
        b = FRaZ(compressor="sz", target_ratio=8.0, regions=4, cache=shared)
        a.tune(field)
        res = b.tune(field)
        assert res.compressor_calls == 0


class TestCLI:
    def _write_field(self, tmp_path, field):
        path = tmp_path / "data.npy"
        np.save(path, field)
        return path

    def test_tune_reports_cache_counts(self, tmp_path, field, capsys):
        from repro.cli import main

        path = self._write_field(tmp_path, field)
        rc = main(["tune", str(path), "--ratio", "5", "--tolerance", "0.5"])
        out = json.loads(capsys.readouterr().out)
        assert rc in (0, 2)
        assert out["cache_hits"] + out["cache_misses"] == out["evaluations"]

    def test_cache_dir_persists_and_warms(self, tmp_path, field, capsys):
        from repro.cli import main

        path = self._write_field(tmp_path, field)
        cache_dir = tmp_path / "cache"
        args = ["tune", str(path), "--ratio", "5", "--tolerance", "0.5",
                "--cache-dir", str(cache_dir)]
        main(args)
        cold = json.loads(capsys.readouterr().out)
        assert (cache_dir / "evalcache.json").exists()
        main(args)
        warm = json.loads(capsys.readouterr().out)
        assert warm["error_bound"] == cold["error_bound"]
        assert warm["cache_hits"] == warm["evaluations"]

    def test_unwritable_cache_dir_warns_but_reports(self, tmp_path, field, capsys):
        """--cache-dir pointing at a file must not eat the tuning result."""
        from repro.cli import main

        path = self._write_field(tmp_path, field)
        blocker = tmp_path / "notadir"
        blocker.write_text("")
        rc = main(["tune", str(path), "--ratio", "5", "--tolerance", "0.5",
                   "--cache-dir", str(blocker)])
        captured = capsys.readouterr()
        assert rc in (0, 2)
        assert "error_bound" in captured.out  # result still printed
        assert "could not persist" in captured.err

    def test_no_cache_flag(self, tmp_path, field, capsys):
        from repro.cli import main

        path = self._write_field(tmp_path, field)
        main(["tune", str(path), "--ratio", "5", "--tolerance", "0.5", "--no-cache"])
        out = json.loads(capsys.readouterr().out)
        assert out["cache_hits"] == 0
