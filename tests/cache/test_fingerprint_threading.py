"""The fingerprint memo is safe under concurrent access.

Regression test for the LOCK001 finding the static checker surfaced:
``EvalCache.data_fingerprint`` read and wrote ``_fp_cache`` without the
cache lock, so two threads fingerprinting at once could race the
size-triggered ``clear()`` against an insert mid-iteration.  The memo is
now guarded; the expensive buffer hash still happens outside the lock.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.cache.evalcache import EvalCache, fingerprint_array


def test_concurrent_fingerprints_are_stable_and_correct():
    cache = EvalCache()
    rng = np.random.default_rng(0)
    # More than 256 distinct arrays forces the memo's clear() path to
    # fire repeatedly while other threads are mid-lookup.
    arrays = [rng.normal(size=64) for _ in range(300)]
    expected = [fingerprint_array(a) for a in arrays]
    errors: list[BaseException] = []

    def worker() -> None:
        try:
            for _ in range(5):
                for arr, want in zip(arrays, expected):
                    assert cache.data_fingerprint(arr) == want
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []


def test_memo_hit_returns_same_fingerprint_as_miss():
    cache = EvalCache()
    arr = np.arange(128, dtype=np.float64)
    first = cache.data_fingerprint(arr)   # miss: hashes the buffer
    second = cache.data_fingerprint(arr)  # hit: served from the memo
    assert first == second == fingerprint_array(arr)
