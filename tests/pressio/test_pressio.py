"""Tests for the libpressio-analog layer."""

import numpy as np
import pytest

from repro.pressio import (
    CompressedField,
    RatioFunction,
    available_compressors,
    decode_array_header,
    encode_array_header,
    evaluate,
    make_compressor,
)
from repro.sz.compressor import SZCompressor


class TestArrayHeader:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("shape", [(5,), (3, 4), (2, 3, 4)])
    def test_roundtrip(self, dtype, shape):
        data = np.zeros(shape, dtype)
        blob = encode_array_header(data)
        parsed_dtype, parsed_shape, off = decode_array_header(blob)
        assert parsed_dtype == np.dtype(dtype)
        assert parsed_shape == shape
        assert off == len(blob)

    def test_unsupported_dtype(self):
        with pytest.raises(TypeError):
            encode_array_header(np.zeros(3, np.int32))


class TestCompressedField:
    def test_ratio(self):
        f = CompressedField(payload=b"1234", original_nbytes=40)
        assert f.ratio == 10.0
        assert f.nbytes == 4

    def test_empty_payload_infinite_ratio(self):
        f = CompressedField(payload=b"", original_nbytes=10)
        assert f.ratio == float("inf")


class TestRegistry:
    def test_builtins_available(self):
        names = available_compressors()
        assert {"sz", "zfp", "zfp-rate", "mgard"} <= set(names)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_compressor("definitely-not-real")

    def test_options_forwarded(self):
        c = make_compressor("sz", error_bound=0.25, block_size=4)
        assert c.error_bound == 0.25 and c.block_size == 4


class TestRatioFunction:
    def test_memoisation(self, smooth2d):
        rf = RatioFunction(SZCompressor(), smooth2d)
        a = rf(1e-3)
        b = rf(1e-3)
        assert a == b
        assert rf.evaluations == 1  # second call served from cache

    def test_history_records_each_distinct_bound(self, smooth2d):
        rf = RatioFunction(SZCompressor(), smooth2d)
        for e in (1e-4, 1e-3, 1e-2):
            rf(e)
        assert rf.evaluations == 3
        assert [obs.error_bound for obs in rf.history] == [1e-4, 1e-3, 1e-2]

    def test_best_observation(self, smooth2d):
        rf = RatioFunction(SZCompressor(), smooth2d)
        ratios = {e: rf(e) for e in (1e-4, 1e-2, 1e-1)}
        target = 10.0
        best = rf.best_observation(target)
        expected = min(ratios.items(), key=lambda kv: (kv[1] - target) ** 2)
        assert best.error_bound == expected[0]

    def test_best_observation_empty(self, smooth2d):
        rf = RatioFunction(SZCompressor(), smooth2d)
        assert rf.best_observation(10.0) is None

    def test_compress_seconds_accumulates(self, smooth2d):
        rf = RatioFunction(SZCompressor(), smooth2d)
        rf(1e-3)
        assert rf.compress_seconds > 0


class TestEvaluate:
    def test_record_fields(self, smooth2d):
        rec = evaluate(SZCompressor(error_bound=1e-3), smooth2d)
        assert rec.compressor == "sz:abs"
        assert rec.max_error <= 1e-3
        assert rec.ratio > 1
        assert rec.bit_rate == pytest.approx(32.0 / rec.ratio, rel=1e-6)
        assert 0 < rec.ssim <= 1
        assert rec.psnr > 20
        assert rec.compress_seconds > 0

    def test_row_renders(self, smooth2d):
        rec = evaluate(SZCompressor(error_bound=1e-2), smooth2d)
        row = rec.row()
        assert "sz:abs" in row and "PSNR" in row

    def test_skip_ssim(self, smooth2d):
        rec = evaluate(SZCompressor(error_bound=1e-2), smooth2d, compute_ssim=False)
        assert np.isnan(rec.ssim)


class TestCompressorDefaults:
    def test_default_bound_range_spans_value_range(self, smooth2d):
        lo, hi = SZCompressor().default_bound_range(smooth2d)
        span = float(smooth2d.max() - smooth2d.min())
        assert hi == pytest.approx(span)
        assert lo == pytest.approx(span * 1e-9)

    def test_constant_data_fallback(self):
        lo, hi = SZCompressor().default_bound_range(np.zeros((4, 4), np.float32))
        assert hi == 1.0

    def test_supports(self, smooth2d):
        assert SZCompressor().supports(smooth2d)
        assert not make_compressor("mgard").supports(np.zeros(5, np.float32))
