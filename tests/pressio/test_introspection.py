"""libpressio-style option introspection on the Compressor protocol."""

import pytest

from repro.pressio import (
    CompressorOptionError,
    available_compressors,
    compressor_option_names,
    describe_compressor,
    make_compressor,
)


class TestGetSetOptions:
    def test_get_options_lists_constructor_knobs(self):
        opts = make_compressor("sz").get_options()
        assert {"error_bound", "block_size", "radius", "dict_codec"} <= set(opts)
        assert opts["block_size"] == 6

    def test_set_options_returns_reconfigured_copy(self):
        sz = make_compressor("sz")
        sz4 = sz.set_options(block_size=4, error_bound=1e-4)
        assert sz4.block_size == 4 and sz4.error_bound == 1e-4
        assert sz.block_size == 6  # value semantics: original untouched
        assert sz.set_options() is sz

    def test_set_options_rejects_unknown_names(self):
        with pytest.raises(CompressorOptionError, match="block_size"):
            make_compressor("sz").set_options(typo_option=1)

    @pytest.mark.parametrize("name", ["sz", "zfp", "zfp-rate", "mgard"])
    def test_capabilities_are_json_ready(self, name):
        import json

        caps = make_compressor(name).capabilities()
        json.dumps(caps)
        assert caps["name"]
        assert caps["mode"] in ("abs", "rel", "rate", "prec", "mse")
        assert set(caps["options"]) == set(compressor_option_names(name))


class TestRegistryIntrospection:
    def test_option_names_for_every_registered_compressor(self):
        for name in available_compressors():
            names = compressor_option_names(name)
            assert names is not None and "error_bound" in names

    def test_unknown_compressor_raises_key_error(self):
        with pytest.raises(KeyError, match="available"):
            compressor_option_names("gzip9000")

    def test_describe_compressor(self):
        assert describe_compressor("zfp")["name"] == "zfp"


class TestFriendlyFactoryErrors:
    def test_typo_option_names_compressor_and_valid_options(self):
        with pytest.raises(CompressorOptionError) as excinfo:
            make_compressor("sz", typo_option=1)
        message = str(excinfo.value)
        assert "'sz'" in message
        assert "typo_option" in message
        assert "block_size" in message  # the valid options are listed
        assert excinfo.value.compressor == "sz"
        assert "error_bound" in excinfo.value.valid_options

    def test_error_is_still_a_type_error(self):
        # Callers catching the old raw TypeError keep working.
        with pytest.raises(TypeError):
            make_compressor("zfp", frobnicate=True)

    def test_valid_options_still_construct(self):
        assert make_compressor("sz", block_size=4).block_size == 4
