"""Streamed round-trips must match the in-memory path bit for bit.

Chunked lossy compression is *defined* as the in-memory compressor applied
per chunk: for every chunk shape — including ragged tails — the streamed
pipeline's reconstruction must equal compressing and decompressing each
block in memory at the same bound, bit for bit.  With a single chunk the
streamed path must degenerate to exactly the whole-array in-memory
round-trip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pressio.registry import make_compressor
from repro.stream import ChunkReader, stream_compress, stream_decompress

BOUND = 1e-3


def _field(shape, seed=3):
    rng = np.random.default_rng(seed)
    axes = np.meshgrid(
        *(np.linspace(0, 4, s) for s in shape), indexing="ij"
    )
    smooth = sum(np.sin(a + i) for i, a in enumerate(axes))
    return (smooth + 0.05 * rng.standard_normal(shape)).astype(np.float32)


def _in_memory_per_chunk(data, chunk_shape, compressor="sz"):
    comp = make_compressor(compressor, error_bound=BOUND)
    out = np.empty_like(data)
    for spec, block in ChunkReader(data, chunk_shape=chunk_shape):
        out[spec.slices] = comp.decompress(comp.compress(block).payload)
    return out


@pytest.mark.parametrize(
    "shape,chunk_shape",
    [
        ((1000,), (256,)),          # 1D with ragged tail
        ((48, 40), (16, 17)),       # 2D, ragged on both axes
        ((24, 20, 12), (10, 20, 12)),  # 3D, ragged leading axis
    ],
)
def test_streamed_equals_in_memory_per_chunk(tmp_path, shape, chunk_shape):
    data = _field(shape)
    src = tmp_path / "f.npy"
    np.save(src, data)
    out = tmp_path / "f.frzs"
    res = stream_compress(src, out, error_bound=BOUND, chunk_shape=chunk_shape)
    assert res.shape == shape
    recon = stream_decompress(out)
    assert recon.dtype == data.dtype
    assert np.array_equal(recon, _in_memory_per_chunk(data, chunk_shape))
    assert float(np.abs(recon - data).max()) <= BOUND * 1.0000001


def test_single_chunk_equals_whole_array_roundtrip(tmp_path):
    data = _field((32, 24))
    src = tmp_path / "f.npy"
    np.save(src, data)
    out = tmp_path / "f.frzs"
    stream_compress(src, out, error_bound=BOUND)  # default: one chunk
    comp = make_compressor("sz", error_bound=BOUND)
    expected = comp.decompress(comp.compress(data).payload)
    assert np.array_equal(stream_decompress(out), expected)


def test_float64_roundtrip_preserves_dtype(tmp_path):
    data = _field((30, 22)).astype(np.float64)
    src = tmp_path / "f.npy"
    np.save(src, data)
    out = tmp_path / "f.frzs"
    stream_compress(src, out, error_bound=BOUND, chunk_shape=(16, 16))
    recon = stream_decompress(out)
    assert recon.dtype == np.float64
    assert np.array_equal(recon, _in_memory_per_chunk(data, (16, 16)))


def test_decompress_into_memmap_and_preallocated(tmp_path):
    data = _field((20, 18))
    src = tmp_path / "f.npy"
    np.save(src, data)
    out = tmp_path / "f.frzs"
    stream_compress(src, out, error_bound=BOUND, chunk_shape=(8, 18))

    in_memory = stream_decompress(out)
    npy_out = tmp_path / "recon.npy"
    stream_decompress(out, out=npy_out)
    assert np.array_equal(np.load(npy_out), in_memory)

    target = np.empty_like(data)
    returned = stream_decompress(out, out=target)
    assert returned is target
    assert np.array_equal(target, in_memory)

    with pytest.raises(ValueError, match="shape"):
        stream_decompress(out, out=np.empty((3, 3), dtype=data.dtype))


def test_raw_binary_source(tmp_path):
    data = _field((25, 16))
    src = tmp_path / "f.bin"
    data.tofile(src)
    out = tmp_path / "f.frzs"
    stream_compress(src, out, error_bound=BOUND, chunk_shape=(10, 16),
                    shape=(25, 16), dtype="float32")
    assert np.array_equal(
        stream_decompress(out), _in_memory_per_chunk(data, (10, 16))
    )
