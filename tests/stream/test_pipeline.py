"""Pipeline behaviour: tuning, drift retrains, memory cap, CLI."""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.cache import EvalCache
from repro.cli import main, parse_chunk_shape, parse_memory_size
from repro.pressio.registry import make_compressor
from repro.stream import ChunkTuner, stream_compress, stream_decompress
from repro.stream.pipeline import COMPRESS_OVERHEAD_FACTOR


def _smooth(shape, seed=9, dtype=np.float32):
    axes = np.meshgrid(*(np.linspace(0, 9, s) for s in shape), indexing="ij")
    out = sum(np.sin(a + i) for i, a in enumerate(axes))
    return (out * np.float64(1.0)).astype(dtype)


class TestChunkTuner:
    def test_fit_locks_an_in_band_bound(self):
        chunks = [_smooth((40, 32), seed=s) for s in range(3)]
        tuner = ChunkTuner(
            compressor=make_compressor("sz"), target_ratio=8.0,
            regions=4, cache=EvalCache(),
        )
        bound = tuner.fit(iter(chunks))
        assert bound > 0
        assert tuner.current_bound == bound
        assert tuner.retrain_count >= 1
        ratio = make_compressor("sz", error_bound=bound).compress(chunks[-1]).ratio
        assert tuner.in_band(ratio)

    def test_fit_requires_chunks(self):
        tuner = ChunkTuner(compressor=make_compressor("sz"), target_ratio=8.0)
        with pytest.raises(ValueError):
            tuner.fit(iter([]))

    def test_verification_uses_shared_cache(self):
        chunk = _smooth((40, 32))
        cache = EvalCache()
        tuner = ChunkTuner(
            compressor=make_compressor("sz"), target_ratio=8.0,
            regions=4, cache=cache,
        )
        # Same chunk twice: the second pass verifies against cached probes.
        tuner.fit([chunk, chunk])
        assert tuner.cache_hits >= 1

    def test_should_retrain_on_band_miss_and_drift(self):
        tuner = ChunkTuner(
            compressor=make_compressor("sz"), target_ratio=10.0,
            tolerance=0.1, drift_margin=0.5, drift_window=2,
        )
        assert tuner.should_retrain(20.0)       # hard miss
        assert not tuner.should_retrain(10.0)   # centred, no history
        # Ratios hugging the band edge trip the drift monitor once the
        # window fills, even though each is technically still in band.
        tuner.observe(10.9)
        tuner.observe(10.9)
        assert tuner.should_retrain(10.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChunkTuner(compressor=make_compressor("sz"), target_ratio=0.0)
        with pytest.raises(ValueError):
            ChunkTuner(compressor=make_compressor("sz"), target_ratio=5.0,
                       tolerance=2.0)


class TestStreamCompressTuned:
    def test_tuned_stream_hits_band_on_most_chunks(self, tmp_path):
        data = _smooth((64, 48))
        src = tmp_path / "f.npy"
        np.save(src, data)
        out = tmp_path / "f.frzs"
        res = stream_compress(
            src, out, target_ratio=8.0, chunk_shape=(16, 48),
            train_chunks=2, regions=4,
        )
        assert res.error_bound > 0
        assert res.evaluations >= 1
        assert res.in_band_chunks >= res.n_chunks // 2
        recon = stream_decompress(out)
        assert float(np.abs(recon - data).max()) <= res.error_bound * 1.0000001

    def test_requires_exactly_one_mode(self, tmp_path):
        np.save(tmp_path / "f.npy", _smooth((8, 8)))
        with pytest.raises(ValueError):
            stream_compress(tmp_path / "f.npy", tmp_path / "o.frzs")
        with pytest.raises(ValueError):
            stream_compress(tmp_path / "f.npy", tmp_path / "o.frzs",
                            target_ratio=8.0, error_bound=1e-3)

    def test_shared_cache_absorbs_repeat_run_probes(self, tmp_path):
        data = _smooth((48, 32))
        src = tmp_path / "f.npy"
        np.save(src, data)
        cache = EvalCache()
        stream_compress(src, tmp_path / "a.frzs", target_ratio=8.0,
                        chunk_shape=(24, 32), train_chunks=2, regions=4,
                        cache=cache)
        misses_first = cache.stats.misses
        res = stream_compress(src, tmp_path / "b.frzs", target_ratio=8.0,
                              chunk_shape=(24, 32), train_chunks=2, regions=4,
                              cache=cache)
        # The rerun's tuning probes are answered from the shared cache.
        assert res.cache_hits > 0
        assert cache.stats.misses - misses_first < misses_first

    def test_thread_executor_matches_serial(self, tmp_path):
        data = _smooth((40, 36))
        src = tmp_path / "f.npy"
        np.save(src, data)
        serial = tmp_path / "s.frzs"
        threaded = tmp_path / "t.frzs"
        stream_compress(src, serial, error_bound=1e-3, chunk_shape=(12, 36))
        stream_compress(src, threaded, error_bound=1e-3, chunk_shape=(12, 36),
                        workers=3, executor="thread")
        assert np.array_equal(stream_decompress(serial), stream_decompress(threaded))


class TestMemoryCap:
    def test_dataset_4x_larger_than_cap_stays_under_cap(self, tmp_path):
        """The tentpole acceptance: 4 MiB dataset, 1 MiB cap.

        Peak is measured as tracemalloc's traced-allocation high-water mark
        (RSS itself is dominated by the interpreter + NumPy, which no
        streaming layer can shrink).  A warm-up run hoists one-time costs
        (imports, cached wavefront plans) out of the measurement, as a
        long-running service would.
        """
        cap = 1 << 20
        data = _smooth((128, 64, 64), dtype=np.float64)  # 4 MiB = 4x cap
        assert data.nbytes == 4 * cap
        src = tmp_path / "big.npy"
        np.save(src, data)

        stream_compress(src, tmp_path / "warm.frzs", error_bound=1e-4,
                        max_memory=cap)  # warm-up
        tracemalloc.start()
        res = stream_compress(src, tmp_path / "big.frzs", error_bound=1e-4,
                              max_memory=cap)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        chunk_nbytes = int(np.prod(res.chunk_shape)) * data.itemsize
        assert chunk_nbytes * COMPRESS_OVERHEAD_FACTOR <= cap
        assert res.n_chunks >= 4 * COMPRESS_OVERHEAD_FACTOR  # genuinely chunked
        assert peak < cap, f"peak {peak} exceeded cap {cap}"

        # Round-trips bit-identically against the per-chunk in-memory path.
        recon = stream_decompress(tmp_path / "big.frzs")
        comp = make_compressor("sz", error_bound=1e-4)
        from repro.stream import ChunkReader

        expected = np.empty_like(data)
        for spec, block in ChunkReader(data, chunk_shape=res.chunk_shape):
            expected[spec.slices] = comp.decompress(comp.compress(block).payload)
        assert np.array_equal(recon, expected)


class TestCLI:
    def test_stream_decompress_info_roundtrip(self, tmp_path, capsys):
        data = _smooth((32, 24))
        src = tmp_path / "f.npy"
        np.save(src, data)
        out = tmp_path / "f.frzs"
        rc = main(["stream", str(src), str(out), "--error-bound", "1e-3",
                   "--chunk-shape", "16,24"])
        assert rc == 0
        assert "2 chunks" in capsys.readouterr().out

        recon_path = tmp_path / "recon.npy"
        rc = main(["decompress", str(out), str(recon_path)])
        assert rc == 0
        assert "streamed container" in capsys.readouterr().out
        assert float(np.abs(np.load(recon_path) - data).max()) <= 1e-3 * 1.0000001

        rc = main(["info", str(out)])
        assert rc == 0
        info_out = capsys.readouterr().out
        assert '"kind": "streamed-field"' in info_out
        assert '"n_chunks": 2' in info_out

    def test_stream_tuned_with_max_memory(self, tmp_path, capsys):
        data = _smooth((48, 32))
        src = tmp_path / "f.npy"
        np.save(src, data)
        out = tmp_path / "f.frzs"
        rc = main(["stream", str(src), str(out), "--ratio", "8",
                   "--max-memory", "1MB", "--train-chunks", "2"])
        assert rc == 0
        assert "retrains" in capsys.readouterr().out

    def test_parse_memory_size(self):
        assert parse_memory_size("1048576") == 1 << 20
        assert parse_memory_size("64MB") == 64 * 10**6
        assert parse_memory_size("2GiB") == 2 << 30
        assert parse_memory_size("512k") == 512 << 10
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_memory_size("lots")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_memory_size("-5MB")

    def test_parse_chunk_shape(self):
        assert parse_chunk_shape("64,64,32") == (64, 64, 32)
        assert parse_chunk_shape("128") == (128,)
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_chunk_shape("a,b")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_chunk_shape("0,4")
