"""Streamed (version-2) container layer and the .frzs shard format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs.container import (
    Container,
    ContainerReader,
    ContainerWriter,
    is_streamed_container,
)
from repro.stream.chunks import plan_chunks
from repro.stream.container import ShardWriter, StreamedField


class TestContainerWriterReader:
    def test_roundtrip_random_access(self, tmp_path):
        path = tmp_path / "c.bin"
        with ContainerWriter(path) as w:
            w.add("a", b"alpha")
            w.add("b", b"" )
            w.add("c", b"x" * 1000)
        with ContainerReader(path) as r:
            assert r.names() == ["a", "b", "c"]
            assert r.get("c") == b"x" * 1000
            assert r.get("a") == b"alpha"  # out of order: random access
            assert r.get("b") == b""
            assert r.length("c") == 1000
            assert "a" in r and "zzz" not in r

    def test_duplicate_and_reserved_names_rejected(self, tmp_path):
        w = ContainerWriter(tmp_path / "c.bin")
        w.add("a", b"1")
        with pytest.raises(KeyError):
            w.add("a", b"2")
        with pytest.raises(ValueError):
            w.add("\x00index", b"evil")
        w.close()

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "c.bin"
        with ContainerWriter(path) as w:
            w.add("a", b"payload")
        blob = path.read_bytes()
        path.write_bytes(blob[:-4])  # chop the footer magic
        with pytest.raises(ValueError, match="footer"):
            ContainerReader(path)

    def test_version_detection(self, tmp_path):
        v2 = tmp_path / "v2.bin"
        with ContainerWriter(v2) as w:
            w.add("a", b"1")
        v1 = tmp_path / "v1.bin"
        c = Container()
        c.add("a", b"1")
        v1.write_bytes(c.tobytes())
        assert is_streamed_container(v2)
        assert not is_streamed_container(v1)
        assert not is_streamed_container(tmp_path / "missing.bin")
        with pytest.raises(ValueError, match="version 1"):
            ContainerReader(v1)

    def test_writer_is_incremental(self, tmp_path):
        # Bytes hit the file as sections are added, not at close.
        path = tmp_path / "c.bin"
        w = ContainerWriter(path)
        w.add("a", b"x" * 512)
        assert path.stat().st_size >= 512
        w.close()


class TestShardFormat:
    def test_metadata_and_chunk_access(self, tmp_path):
        path = tmp_path / "f.frzs"
        specs = plan_chunks((6, 4), (4, 4))
        with ShardWriter(path, (6, 4), np.float32, (4, 4), "sz",
                         metadata={"run": 7}) as w:
            for spec, blob in zip(specs, (b"AA", b"BBB")):
                w.write_chunk(spec, blob, error_bound=1e-3, ratio=2.0)
        with StreamedField(path) as field:
            assert field.shape == (6, 4)
            assert field.dtype == np.float32
            assert field.n_chunks == 2
            assert field.meta["user"] == {"run": 7}
            assert field.chunk_spec(1).shape == (2, 4)
            assert field.chunk_meta(0)["nbytes"] == 2
            assert field.chunk_meta(1)["error_bound"] == 1e-3
            assert field.original_nbytes == 6 * 4 * 4

    def test_rejects_non_shard_container(self, tmp_path):
        path = tmp_path / "other.bin"
        with ContainerWriter(path) as w:
            w.add("meta", b'{"kind": "something-else"}')
        with pytest.raises(ValueError, match="streamed field"):
            StreamedField(path)
