"""Chunk planning and the memory-mapped block reader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream.chunks import (
    ChunkReader,
    ChunkSpec,
    chunk_shape_for_budget,
    plan_chunks,
)


class TestChunkShapeForBudget:
    def test_whole_array_fits(self):
        assert chunk_shape_for_budget((8, 8), 4, 1 << 20) == (8, 8)

    def test_splits_outermost_axis_first(self):
        # 16 rows of 32 floats; budget for 4 rows.
        assert chunk_shape_for_budget((16, 32), 4, 4 * 32 * 4) == (4, 32)

    def test_degrades_to_thin_slabs(self):
        # Budget below one row: outer axes collapse to 1, inner splits.
        shape = chunk_shape_for_budget((4, 4, 1024), 4, 512)
        assert shape == (1, 1, 128)

    def test_always_at_least_one_element(self):
        assert chunk_shape_for_budget((64, 64), 8, 1) == (1, 1)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            chunk_shape_for_budget((4, 4), 4, 0)


class TestPlanChunks:
    def test_exact_tiling(self):
        specs = plan_chunks((8, 8), (4, 4))
        assert len(specs) == 4
        assert [s.index for s in specs] == [0, 1, 2, 3]
        assert specs[0].start == (0, 0) and specs[0].stop == (4, 4)
        assert specs[-1].start == (4, 4) and specs[-1].stop == (8, 8)

    def test_ragged_tail(self):
        specs = plan_chunks((10,), (4,))
        assert [s.shape for s in specs] == [(4,), (4,), (2,)]

    def test_covers_every_element_once(self):
        shape = (7, 5, 3)
        seen = np.zeros(shape, dtype=int)
        for spec in plan_chunks(shape, (3, 2, 2)):
            seen[spec.slices] += 1
        assert np.array_equal(seen, np.ones(shape, dtype=int))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            plan_chunks((8, 8), (4,))

    def test_spec_json_roundtrip(self):
        spec = plan_chunks((10, 6), (4, 4))[3]
        assert ChunkSpec.from_json(spec.as_json()) == spec


class TestChunkReader:
    def test_in_memory_array(self):
        data = np.arange(24, dtype=np.float32).reshape(4, 6)
        reader = ChunkReader(data, chunk_shape=(2, 6))
        blocks = list(reader)
        assert len(blocks) == 2
        spec, block = blocks[1]
        assert np.array_equal(block, data[2:4])
        assert block.base is None  # a materialised copy, not a view

    def test_npy_file_is_memory_mapped(self, tmp_path):
        data = np.arange(60, dtype=np.float64).reshape(10, 6)
        path = tmp_path / "d.npy"
        np.save(path, data)
        reader = ChunkReader(path, chunk_shape=(4, 6))
        assert isinstance(reader._data, np.memmap)
        assembled = np.empty_like(data)
        for spec, block in reader:
            assembled[spec.slices] = block
        assert np.array_equal(assembled, data)

    def test_raw_binary_needs_geometry(self, tmp_path):
        data = np.arange(32, dtype=np.float32)
        path = tmp_path / "d.bin"
        data.tofile(path)
        with pytest.raises(ValueError):
            ChunkReader(path)
        reader = ChunkReader(path, shape=(8, 4), dtype="float32", chunk_shape=(3, 4))
        assert reader.shape == (8, 4)
        assert [s.shape for s in reader.specs] == [(3, 4), (3, 4), (2, 4)]

    def test_budget_mode(self):
        data = np.zeros((16, 8), dtype=np.float32)
        reader = ChunkReader(data, max_chunk_bytes=4 * 8 * 4)
        assert reader.chunk_shape == (4, 8)
        assert reader.n_chunks == 4

    def test_default_is_single_chunk(self):
        reader = ChunkReader(np.zeros((5, 5)))
        assert reader.n_chunks == 1
        assert reader.specs[0].shape == (5, 5)

    def test_chunk_shape_and_budget_exclusive(self):
        with pytest.raises(ValueError):
            ChunkReader(np.zeros(8), chunk_shape=(2,), max_chunk_bytes=64)
