"""Tests for the synthetic SDRBench-analog datasets."""

import numpy as np
import pytest

from repro.datasets import DATASET_NAMES, dataset_summaries, fourier_field, load_dataset
from repro.datasets.registry import PAPER_TABLE3


class TestFourierField:
    def test_shapes_and_dtype(self):
        steps = fourier_field((8, 9), 3, np.random.default_rng(0))
        assert len(steps) == 3
        assert all(s.shape == (8, 9) and s.dtype == np.float32 for s in steps)

    def test_deterministic(self):
        a = fourier_field((16,), 2, np.random.default_rng(5))
        b = fourier_field((16,), 2, np.random.default_rng(5))
        assert all((x == y).all() for x, y in zip(a, b))

    def test_steps_evolve_gradually(self):
        steps = fourier_field((32, 32), 4, np.random.default_rng(1), drift=0.02)
        d01 = np.abs(steps[1] - steps[0]).mean()
        span = steps[0].max() - steps[0].min()
        assert 0 < d01 < 0.2 * span  # changed, but not wholesale

    def test_spatially_smooth(self):
        step = fourier_field((64, 64), 1, np.random.default_rng(2))[0]
        grad = np.abs(np.diff(step, axis=0)).mean()
        span = step.max() - step.min()
        assert grad < 0.15 * span


class TestRegistry:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_tiny_builds(self, name):
        ds = load_dataset(name, "tiny")
        assert ds.n_fields == PAPER_TABLE3[name]["fields"]
        assert ds.ndim == PAPER_TABLE3[name]["dim"]
        assert ds.nbytes > 0

    def test_paper_scale_metadata(self):
        # Paper-size builds carry the paper's step counts.
        ds = load_dataset("NYX", "paper")
        assert ds.n_steps == PAPER_TABLE3["NYX"]["steps"]

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("LHC")

    def test_unknown_size(self):
        with pytest.raises(ValueError):
            load_dataset("NYX", size="huge")

    def test_deterministic_by_seed(self):
        a = load_dataset("CESM", "tiny", seed=3)
        b = load_dataset("CESM", "tiny", seed=3)
        fa = a.fields["CLOUD"].steps[0]
        fb = b.fields["CLOUD"].steps[0]
        assert (fa == fb).all()

    def test_summaries_table(self):
        table = dataset_summaries("tiny")
        for name in DATASET_NAMES:
            assert name in table


class TestDatasetCharacter:
    def test_hurricane_has_sparse_log_cloud_field(self):
        ds = load_dataset("Hurricane", "tiny")
        q = ds.fields["QCLOUDf.log10"].steps[0]
        # Majority of points at the log floor (sparse), some structure above.
        floor_frac = float((q == q.min()).mean())
        assert 0.3 < floor_frac < 0.99

    def test_hurricane_field_inventory(self):
        ds = load_dataset("Hurricane", "tiny")
        assert "TCf" in ds.fields and "CLOUDf" in ds.fields

    def test_hacc_positions_high_entropy(self):
        ds = load_dataset("HACC", "tiny")
        x = ds.fields["x"].steps[0]
        # Shuffled particle order: neighbouring entries nearly uncorrelated.
        c = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert abs(c) < 0.2

    def test_hacc_all_float32_1d(self):
        ds = load_dataset("HACC", "tiny")
        for f in ds.fields.values():
            assert f.steps[0].ndim == 1 and f.steps[0].dtype == np.float32

    def test_cesm_cloud_fraction_bounded(self):
        ds = load_dataset("CESM", "tiny")
        c = ds.fields["CLDHGH"].steps[0]
        assert c.min() >= 0.0 and c.max() <= 1.0

    def test_cesm_phis_static(self):
        ds = load_dataset("CESM", "tiny")
        phis = ds.fields["PHIS"]
        assert (phis.steps[0] == phis.steps[-1]).all()

    def test_exaalt_locally_smooth(self):
        ds = load_dataset("Exaalt", "tiny")
        z = ds.fields["z"].steps[0]
        # Lattice in id-order: typical |diff| much smaller than range.
        assert np.median(np.abs(np.diff(z))) < 0.1 * (z.max() - z.min())

    def test_nyx_density_positive_heavy_tail(self):
        ds = load_dataset("NYX", "tiny")
        rho = ds.fields["baryon_density"].steps[0]
        assert rho.min() > 0
        assert rho.max() / np.median(rho) > 5  # lognormal tail

    def test_field_arrays_view(self):
        ds = load_dataset("NYX", "tiny")
        arrays = ds.field_arrays()
        assert set(arrays) == set(ds.fields)
        assert arrays["temperature"][0] is ds.fields["temperature"].steps[0]

    def test_duplicate_field_rejected(self):
        ds = load_dataset("NYX", "tiny")
        with pytest.raises(KeyError):
            ds.add(ds.fields["temperature"])
