"""Tests for the quality-metric suite."""

import numpy as np
import pytest

from repro.metrics import (
    bit_rate,
    compression_ratio,
    error_acf,
    max_abs_error,
    mse,
    psnr,
    rmse,
    ssim,
    value_range,
)
from repro.metrics.acf import acf


class TestErrorMetrics:
    def test_identical_arrays(self, smooth2d):
        assert max_abs_error(smooth2d, smooth2d) == 0.0
        assert mse(smooth2d, smooth2d) == 0.0
        assert rmse(smooth2d, smooth2d) == 0.0
        assert psnr(smooth2d, smooth2d) == float("inf")

    def test_known_values(self):
        a = np.array([0.0, 1.0, 2.0, 3.0])
        b = np.array([0.0, 1.0, 2.0, 4.0])
        assert max_abs_error(a, b) == 1.0
        assert mse(a, b) == pytest.approx(0.25)
        assert rmse(a, b) == pytest.approx(0.5)
        assert psnr(a, b) == pytest.approx(20 * np.log10(3.0 / 0.5))

    def test_value_range(self):
        assert value_range(np.array([-2.0, 5.0])) == 7.0
        assert value_range(np.array([])) == 0.0
        assert value_range(np.array([3.0, 3.0])) == 0.0

    def test_psnr_constant_original_mismatch(self):
        assert psnr(np.zeros(5), np.ones(5)) == float("-inf")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            max_abs_error(np.zeros(3), np.zeros(4))

    def test_psnr_decreases_with_noise(self, smooth2d):
        r = np.random.default_rng(0)
        small = smooth2d + 1e-4 * r.standard_normal(smooth2d.shape)
        large = smooth2d + 1e-2 * r.standard_normal(smooth2d.shape)
        assert psnr(smooth2d, small) > psnr(smooth2d, large)


class TestRatioMetrics:
    def test_compression_ratio(self):
        assert compression_ratio(100, 10) == 10.0
        assert compression_ratio(100, 0) == float("inf")
        with pytest.raises(ValueError):
            compression_ratio(-1, 5)

    def test_bit_rate(self):
        data = np.zeros(100, np.float32)
        assert bit_rate(data, 100) == 8.0  # 800 bits over 100 points
        with pytest.raises(ValueError):
            bit_rate(np.zeros(0), 10)

    def test_bitrate_ratio_relation(self):
        data = np.zeros(64, np.float32)  # 32 bits per value originally
        nbytes = 64
        assert bit_rate(data, nbytes) == pytest.approx(32.0 / compression_ratio(data.nbytes, nbytes))


class TestACF:
    def test_white_noise_near_zero(self):
        r = np.random.default_rng(1)
        noise = r.standard_normal(100_000)
        assert abs(acf(noise)) < 0.02

    def test_smooth_signal_near_one(self):
        t = np.linspace(0, 4 * np.pi, 10_000)
        assert acf(np.sin(t)) > 0.99

    def test_alternating_signal_negative(self):
        sig = np.tile([1.0, -1.0], 500)
        assert acf(sig) < -0.9

    def test_degenerate_inputs(self):
        assert acf(np.array([1.0])) == 0.0
        assert acf(np.ones(100)) == 0.0

    def test_lag_validation(self):
        with pytest.raises(ValueError):
            acf(np.arange(10.0), lag=0)

    def test_error_acf_shape_mismatch(self):
        with pytest.raises(ValueError):
            error_acf(np.zeros(3), np.zeros(4))

    def test_error_acf_structured_vs_white(self, smooth2d):
        r = np.random.default_rng(2)
        white = smooth2d + 1e-3 * r.standard_normal(smooth2d.shape).astype(np.float32)
        # Structured error: a smooth offset field.
        i = np.linspace(0, 2 * np.pi, smooth2d.shape[0])[:, None]
        structured = smooth2d + 1e-3 * np.sin(i).astype(np.float32)
        assert error_acf(smooth2d, structured) > error_acf(smooth2d, white)


class TestSSIM:
    def test_identity(self, smooth2d):
        assert ssim(smooth2d, smooth2d) == pytest.approx(1.0)

    def test_constant_image_identity(self):
        img = np.full((32, 32), 5.0)
        assert ssim(img, img) == pytest.approx(1.0)

    def test_decreases_with_distortion(self, smooth2d):
        r = np.random.default_rng(3)
        mild = smooth2d + 0.01 * r.standard_normal(smooth2d.shape).astype(np.float32)
        heavy = smooth2d + 0.5 * r.standard_normal(smooth2d.shape).astype(np.float32)
        assert ssim(smooth2d, mild) > ssim(smooth2d, heavy)

    def test_bounded(self, smooth2d):
        r = np.random.default_rng(4)
        noisy = r.standard_normal(smooth2d.shape).astype(np.float32)
        s = ssim(smooth2d, noisy)
        assert -1.0 <= s <= 1.0

    def test_3d_averages_slices(self, smooth3d):
        assert ssim(smooth3d, smooth3d) == pytest.approx(1.0)

    def test_1d_supported(self, smooth1d):
        assert ssim(smooth1d, smooth1d) == pytest.approx(1.0)

    def test_window_validation(self, smooth2d):
        with pytest.raises(ValueError):
            ssim(smooth2d, smooth2d, window=4)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((4, 4)), np.zeros((5, 5)))

    def test_4d_rejected(self):
        with pytest.raises(ValueError):
            ssim(np.zeros((2, 2, 2, 2)), np.zeros((2, 2, 2, 2)))
