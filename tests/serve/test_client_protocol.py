"""Typed protocol errors for malformed server bodies.

Regression tests for the satellite fix that replaced bare ``KeyError``
with :class:`~repro.serve.client.ProtocolError`: a server answering with
syntactically-valid JSON that is missing (or mistypes) an agreed field
now raises a typed, catchable error at the client — and the node agent
absorbs it with a counted fallback instead of crashing its loop.
"""

from __future__ import annotations

import pytest

from repro.serve.agent import DEFAULT_HEARTBEAT_INTERVAL, NodeAgent
from repro.serve.client import ProtocolError, ServiceClient, ServiceError
from repro.serve.scheduler import Scheduler


def _scripted_client(monkeypatch, responses):
    """A client whose transport replays ``(status, payload)`` pairs."""
    client = ServiceClient("http://127.0.0.1:1")
    script = list(responses)

    def fake(method, path, body=None, headers=None):
        status, payload = script.pop(0)
        return status, payload, {}

    monkeypatch.setattr(client, "_request_full", fake)
    return client


# -- ServiceClient ----------------------------------------------------------
def test_submit_ticket_missing_job_id(monkeypatch):
    client = _scripted_client(monkeypatch, [(202, {"state": "queued"})])
    with pytest.raises(ProtocolError) as exc:
        client.submit(kind="tune", input="/tmp/x.npy", target_ratio=8.0)
    assert "job_id" in str(exc.value)
    assert exc.value.status == 202


def test_submit_ticket_mistyped_job_id(monkeypatch):
    client = _scripted_client(
        monkeypatch, [(202, {"job_id": 7, "state": "queued"})])
    with pytest.raises(ProtocolError) as exc:
        client.submit(kind="tune", input="/tmp/x.npy", target_ratio=8.0)
    assert "job_id" in str(exc.value)
    assert "int" in str(exc.value)


def test_result_payload_missing_state(monkeypatch):
    client = _scripted_client(monkeypatch, [(200, {"result": {}})])
    with pytest.raises(ProtocolError) as exc:
        client.result("j-1")
    assert "state" in str(exc.value)


def test_result_done_without_result_dict(monkeypatch):
    client = _scripted_client(monkeypatch, [(200, {"state": "done"})])
    with pytest.raises(ProtocolError) as exc:
        client.result("j-1")
    assert "result" in str(exc.value)


def test_result_with_mistyped_result_field(monkeypatch):
    client = _scripted_client(
        monkeypatch, [(200, {"state": "done", "result": "oops"})])
    with pytest.raises(ProtocolError):
        client.result("j-1")


def test_well_formed_bodies_still_pass(monkeypatch):
    client = _scripted_client(monkeypatch, [
        (202, {"job_id": "j-1", "state": "queued"}),
        (200, {"state": "done", "result": {"ratio": 8.0}}),
    ])
    ticket = client.submit(kind="tune", input="/tmp/x.npy", target_ratio=8.0)
    assert ticket["job_id"] == "j-1"
    assert client.result("j-1") == {"ratio": 8.0}


def test_protocol_error_is_a_service_error():
    # Existing callers catching ServiceError keep working.
    assert issubclass(ProtocolError, ServiceError)


# -- NodeAgent parsing ------------------------------------------------------
@pytest.mark.parametrize("value", [True, False, "fast", -1, 0, None, {}])
def test_parse_interval_rejects_garbage(value):
    with pytest.raises(ProtocolError) as exc:
        NodeAgent._parse_interval({"heartbeat_interval": value})
    assert "heartbeat_interval" in str(exc.value)


def test_parse_interval_accepts_numbers_and_defaults():
    assert NodeAgent._parse_interval({"heartbeat_interval": 2}) == 2.0
    assert NodeAgent._parse_interval({"heartbeat_interval": 0.25}) == 0.25
    assert NodeAgent._parse_interval({}) == DEFAULT_HEARTBEAT_INTERVAL


@pytest.mark.parametrize("value", ["j-1", {"j-1": 1}, [1, 2], ["j-1", None]])
def test_parse_acked_rejects_non_string_lists(value):
    with pytest.raises(ProtocolError):
        NodeAgent._parse_acked({"acked": value})


def test_parse_acked_accepts_lists_and_absence():
    assert NodeAgent._parse_acked({"acked": ["a", "b"]}) == ["a", "b"]
    assert NodeAgent._parse_acked({}) == []
    assert NodeAgent._parse_acked({"acked": None}) == []


def test_agent_register_falls_back_on_protocol_error(monkeypatch):
    """A gateway that mangles the interval still registers the agent:
    the loop keeps running at the default rate and the error is counted."""
    sched = Scheduler(workers=1, cache=False, metrics=False)
    agent = NodeAgent(sched, gateway_url="http://127.0.0.1:1",
                      node_id="n0", advertise_url="http://127.0.0.1:2")
    monkeypatch.setattr(
        agent, "_post",
        lambda path, body: (200, {"heartbeat_interval": "soonish"}))
    agent._try_register()
    assert agent.registered
    assert agent.protocol_errors == 1
    assert agent.heartbeat_interval == DEFAULT_HEARTBEAT_INTERVAL
    assert agent.status_dict()["protocol_errors"] == 1


def test_agent_heartbeat_ignores_mistyped_acks(monkeypatch):
    sched = Scheduler(workers=1, cache=False, metrics=False)
    agent = NodeAgent(sched, gateway_url="http://127.0.0.1:1",
                      node_id="n0", advertise_url="http://127.0.0.1:2")
    agent.registered = True
    agent._pending.append("j-1")
    agent._pending_set.add("j-1")
    monkeypatch.setattr(
        agent, "_post", lambda path, body: (200, {"acked": "j-1"}))
    agent._try_heartbeat()
    assert agent.protocol_errors == 1
    assert "j-1" in agent._pending_set  # nothing silently dropped
